"""``repro lint`` / ``python -m repro.lint`` — the simlint front end.

The argument definitions live in :func:`add_lint_arguments` so the main
``repro`` CLI (:mod:`repro.cli`) and the standalone module entry point
share one flag set with one set of ``--help`` strings — the PR-5
convention: every flag documents itself.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import repro
from repro.lint import surface
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import render, run_lint
from repro.lint.rules import ALL_RULE_DESCRIPTIONS


def default_root() -> Path:
    """The installed ``repro`` package tree (works from any cwd)."""
    return Path(repro.__file__).resolve().parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``lint`` flags to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: the repro "
             "package tree itself); the behaviour-surface guard "
             "only runs on full-tree scans")
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="finding output format: human-readable lines, or a JSON "
             "object with per-finding records for CI (default: text)")
    parser.add_argument(
        "--select", default=None, metavar="RULE[,RULE]",
        help="comma-separated rule ids to run, e.g. "
             "no-wallclock,slots-required (default: every rule; see "
             "--list-rules)")
    parser.add_argument(
        "--config", default=None, metavar="PATH",
        help="simlint JSON config overriding the built-in sim-core / "
             "allowlist / slots-manifest / surface defaults (default: "
             "simlint.json next to the scanned tree if present, else "
             "built-ins)")
    parser.add_argument(
        "--accept-behaviour-surface", action="store_true",
        help="regenerate the committed behaviour-surface manifest from "
             "the current tree and exit; run this after bumping "
             "SIM_BEHAVIOUR_VERSION (behaviour changed) or confirming "
             "an edit is behaviour-preserving, and commit the result")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with its one-line description and "
             "exit")


def _surface_manifest(root: Path) -> Path:
    """The behaviour-surface manifest governing ``root``.

    The manifest lives *inside* the tree it describes
    (``<root>/lint/behaviour_surface.json``), so scanning a scratch
    copy of the package never compares it against the installed repo's
    committed hashes. For the installed tree itself this resolves to
    :data:`repro.lint.surface.DEFAULT_MANIFEST_PATH` (looked up at call
    time so tests can repoint it).
    """
    if root.resolve() == default_root():
        return surface.DEFAULT_MANIFEST_PATH
    return root / "lint" / "behaviour_surface.json"


def _resolve_config(args: argparse.Namespace,
                    roots: List[Path]) -> LintConfig:
    if args.config is not None:
        return load_config(args.config)
    # Convention: a simlint.json sitting next to the scanned package
    # tree (i.e. in the src/ directory or the repo root above it)
    # overrides the defaults without needing --config.
    for root in roots:
        for candidate in (root.parent / "simlint.json",
                          root.parent.parent / "simlint.json"):
            if candidate.is_file():
                return load_config(candidate)
    return LintConfig()


def run(args: argparse.Namespace, prog: str = "repro lint") -> int:
    if args.list_rules:
        width = max(len(rule_id) for rule_id in ALL_RULE_DESCRIPTIONS)
        for rule_id, description in ALL_RULE_DESCRIPTIONS.items():
            print(f"{rule_id:<{width}}  {description}")
        return 0
    roots = [Path(p) for p in (args.paths or [default_root()])]
    for root in roots:
        if not root.exists():
            print(f"{prog}: error: no such path: {root}",
                  file=sys.stderr)
            return 2
    try:
        config = _resolve_config(args, roots)
    except (ValueError, OSError) as error:
        print(f"{prog}: error: {error}", file=sys.stderr)
        return 2
    # The behaviour surface is anchored at the package tree; find the
    # scanned root that contains it (full-tree scans), else skip the
    # surface guard — hashing a partial tree would report every
    # unscanned file as removed.
    surface_root = next(
        (root for root in roots
         if root.is_dir() and (root / "netem").is_dir()), None)
    if args.accept_behaviour_surface:
        if surface_root is None:
            print(f"{prog}: error: --accept-behaviour-surface needs a "
                  f"full package tree (a directory containing the "
                  f"sim-core packages) among the scanned paths",
                  file=sys.stderr)
            return 2
        manifest = _surface_manifest(surface_root)
        path = surface.write_manifest(surface_root, config, manifest)
        files = len(surface.compute_surface(surface_root, config))
        print(f"accepted behaviour surface: {files} files hashed into "
              f"{path}")
        return 0
    select = None
    if args.select is not None:
        select = {rule.strip() for rule in args.select.split(",")
                  if rule.strip()}
        unknown = select - set(ALL_RULE_DESCRIPTIONS)
        if unknown:
            print(f"{prog}: error: unknown rule(s) "
                  f"{', '.join(sorted(unknown))}; known rules: "
                  f"{', '.join(ALL_RULE_DESCRIPTIONS)}",
                  file=sys.stderr)
            return 2
    extra = []
    if surface_root is not None and \
            (select is None or surface.RULE_ID in select):
        manifest = _surface_manifest(surface_root)
        # A tree that never accepted a surface (a scratch copy, another
        # project's package) is not governed by the guard; the repro
        # tree itself always is — there a missing manifest is a loud
        # finding, not a skip.
        if manifest.exists() or \
                surface_root.resolve() == default_root():
            extra = surface.check_surface(surface_root, config, manifest)
    result = run_lint(roots, config, select=select, extra_findings=extra)
    print(render(result, args.format))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: determinism & hot-path static analysis "
                    "for the repro simulator (see 'repro lint' for the "
                    "same flags on the main CLI)",
    )
    add_lint_arguments(parser)
    return run(parser.parse_args(argv), prog="python -m repro.lint")
