"""Rule ``no-global-mutable-state``: sim-core owns no process history.

The PR-4 flow-id drift bug was a class-level counter
(``TcpConnection._next_flow_id``) advanced from instance methods: any
page load's bytes then depended on how many connections the *process*
had ever opened, so forked campaign workers, joined workers and inline
runs disagreed.  This rule flags that exact shape — and its relatives —
in sim-core modules:

* rebinding a module-level name from inside a function (``global X``
  with an assignment);
* assigning or augmenting a **class-level** attribute from an instance
  or class method (``Cls.counter += 1``, ``type(self).cache[...] = v``,
  ``cls.seen.add(...)`` mutator calls);
* calling a mutating method on, or storing into, a module-level mutable
  container (``_CACHE.append(...)``, ``_TABLE[key] = v``).

Per-instance state is fine — an instance lives inside one page-load
context.  Module-level *constants* are fine — only containers observed
being mutated from function bodies are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, ModuleSource

RULE_ID = "no-global-mutable-state"
DESCRIPTION = ("process-global mutable state (global rebinding, "
               "class-level counters/containers written from methods, "
               "mutated module-level containers) is forbidden in "
               "sim-core")

#: Method names that mutate their receiver.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "update", "setdefault", "pop", "popleft", "popitem", "remove",
    "discard", "clear", "sort", "reverse", "rotate",
})

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "collections.deque", "collections.Counter",
    "collections.defaultdict", "collections.OrderedDict",
})


def _is_mutable_literal(node: ast.AST, module: ModuleSource) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        origin = module.resolve(node.func)
        return origin in _MUTABLE_CALLS
    return False


def _module_mutables(module: ModuleSource) -> Set[str]:
    """Module-level names bound to mutable containers."""
    names: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.Assign) \
                and _is_mutable_literal(node.value, module):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name) \
                and _is_mutable_literal(node.value, module):
            names.add(node.target.id)
    return names


def _refers_to_class(node: ast.AST, cls_name: str, receiver: str) -> bool:
    """Does ``node`` denote the class object itself?

    Matches ``ClsName``, ``cls`` (a classmethod receiver), ``type(self)``
    and ``self.__class__``.
    """
    if isinstance(node, ast.Name):
        return node.id in (cls_name, receiver) and node.id != "self" \
            or node.id == "cls"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "type" and len(node.args) == 1 \
            and isinstance(node.args[0], ast.Name) \
            and node.args[0].id == receiver:
        return True
    if isinstance(node, ast.Attribute) and node.attr == "__class__" \
            and isinstance(node.value, ast.Name) \
            and node.value.id == receiver:
        return True
    return False


def _walk_functions(tree: ast.Module):
    """Yield every function/method body node with its enclosing class."""
    class Visitor(ast.NodeVisitor):
        def __init__(self):
            self.found = []
            self._class_stack: List[ast.ClassDef] = []

        def visit_ClassDef(self, node: ast.ClassDef):
            self._class_stack.append(node)
            self.generic_visit(node)
            self._class_stack.pop()

        def _visit_func(self, node):
            cls = self._class_stack[-1] if self._class_stack else None
            self.found.append((node, cls))
            self.generic_visit(node)

        visit_FunctionDef = _visit_func
        visit_AsyncFunctionDef = _visit_func

    visitor = Visitor()
    visitor.visit(tree)
    return visitor.found


def check(module: ModuleSource, config: LintConfig) -> Iterator[Finding]:
    if not module.is_sim_core:
        return
    mutables = _module_mutables(module)
    for func, cls in _walk_functions(module.tree):
        receiver = func.args.args[0].arg if (cls is not None
                                             and func.args.args) else None
        # (a) global rebinding from a function body.
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                yield module.finding(
                    RULE_ID, node,
                    f"'global {', '.join(node.names)}' rebinds "
                    f"module-level state from {func.name}(); sim state "
                    f"must live on per-load objects")
        for node in ast.walk(func):
            # (b) class-attribute writes from methods: Cls.x = / += ...
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                base = target
                while isinstance(base, ast.Subscript):
                    base = base.value
                if isinstance(base, ast.Attribute) and cls is not None \
                        and receiver is not None \
                        and _refers_to_class(base.value, cls.name,
                                             receiver):
                    yield module.finding(
                        RULE_ID, node,
                        f"method {func.name}() writes class-level "
                        f"attribute {cls.name}.{base.attr}; this is "
                        f"process-global state (the retired flow-id "
                        f"wart) — move it onto the instance or a "
                        f"per-load allocator")
                elif isinstance(base, ast.Name) and base.id in mutables \
                        and isinstance(target, ast.Subscript):
                    yield module.finding(
                        RULE_ID, node,
                        f"function {func.name}() stores into "
                        f"module-level container {base.id!r}; "
                        f"module-level mutables accumulate process "
                        f"history")
            # (c) mutator calls on module-level containers / class attrs.
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS:
                owner = node.func.value
                if isinstance(owner, ast.Name) and owner.id in mutables:
                    yield module.finding(
                        RULE_ID, node,
                        f"function {func.name}() calls "
                        f"{owner.id}.{node.func.attr}() on a "
                        f"module-level container; module-level mutables "
                        f"accumulate process history")
                elif isinstance(owner, ast.Attribute) and cls is not None \
                        and receiver is not None \
                        and _refers_to_class(owner.value, cls.name,
                                             receiver):
                    yield module.finding(
                        RULE_ID, node,
                        f"method {func.name}() mutates class-level "
                        f"container {cls.name}.{owner.attr} via "
                        f".{node.func.attr}(); this is process-global "
                        f"state — move it onto the instance")
