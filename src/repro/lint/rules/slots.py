"""Rule ``slots-required``: hot-path record classes must stay slotted.

PR 2's memory win (176/352 -> 80 bytes per hot record) relies on
``__slots__`` / ``@dataclass(slots=True)`` on the per-packet and
per-range record classes.  Nothing at runtime notices if a refactor
drops the declaration — instances silently grow a ``__dict__`` and the
regression only shows up in a benchmark nobody re-ran.  The manifest of
protected class names lives in the lint config
(``LintConfig.slots_required``); every definition of a manifest class
must declare slots, and a manifest name that no longer exists anywhere
is itself a finding so the manifest cannot rot.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Set

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, ModuleSource

RULE_ID = "slots-required"
DESCRIPTION = ("hot-path record classes named in the config manifest "
               "must declare __slots__ (or @dataclass(slots=True))")

def _declares_slots(cls: ast.ClassDef) -> bool:
    for item in cls.body:
        if isinstance(item, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in item.targets):
                return True
        elif isinstance(item, ast.AnnAssign) \
                and isinstance(item.target, ast.Name) \
                and item.target.id == "__slots__":
            return True
    for decorator in cls.decorator_list:
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "slots" \
                        and isinstance(keyword.value, ast.Constant) \
                        and keyword.value.value is True:
                    return True
    return False


def check(module: ModuleSource, config: LintConfig) -> Iterator[Finding]:
    manifest = set(config.slots_required)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in manifest:
            continue
        if not _declares_slots(node):
            yield module.finding(
                RULE_ID, node,
                f"hot-path record class {node.name} must declare "
                f"__slots__ (or @dataclass(slots=True)); dropping it "
                f"silently regresses per-instance memory")


def finalize(modules: List[ModuleSource],
             config: LintConfig) -> Iterable[Finding]:
    # Completeness only makes sense on a full-tree scan: every sim-core
    # package must appear among the scanned modules, else a
    # single-file lint would wrongly report the rest of the manifest
    # as missing.
    covered = {prefix for prefix in config.sim_core
               if any(m.name == prefix or m.name.startswith(prefix + ".")
                      for m in modules)}
    if covered != set(config.sim_core):
        return
    seen: Set[str] = set()
    manifest = set(config.slots_required)
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in manifest:
                seen.add(node.name)
    # Renamed/deleted manifest classes fail loudly so the manifest is
    # updated alongside the refactor, not forgotten.
    for name in sorted(manifest - seen):
        yield Finding(
            rule=RULE_ID, path="<slots manifest>", line=0,
            message=f"manifest class {name!r} was not found in the "
                    f"scanned tree; update the slots_required manifest "
                    f"(simlint config) to track the rename or removal")
