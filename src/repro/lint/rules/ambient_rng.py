"""Rule ``no-ambient-rng``: randomness must be threaded, never ambient.

Every stochastic draw in a simulation must trace back to the
condition's RNG tree (:mod:`repro.util.rng`), or identical
re-simulation — the basis of campaign caches and distributed lease
sharing — breaks.  Two tiers:

* **Everywhere**: ambient entropy sources are flagged — ``random.*``
  module-level functions (they share one hidden global state),
  ``np.random.default_rng()`` *without* a seed argument,
  ``np.random.<fn>()`` legacy global-state functions, ``os.urandom``,
  ``uuid.uuid4`` and ``secrets.*``.
* **Sim-core only**: *any* ``np.random.default_rng(...)`` call is
  flagged, seeded or not.  Sim-core modules receive Generators from the
  condition's RNG tree (``util/rng.py`` is the sanctioned constructor);
  a locally-constructed generator — even a seeded one — hides a second
  seeding root that the condition fingerprint knows nothing about
  (the ``EmulatedLink`` silent ``default_rng(0)`` fallback was exactly
  this shape).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, ModuleSource

RULE_ID = "no-ambient-rng"
DESCRIPTION = ("ambient randomness (random.*, unseeded default_rng, "
               "os.urandom, uuid4, secrets) is forbidden; thread "
               "Generators from the condition's RNG tree (util/rng.py)")

#: random-module instance constructors that take their own seed are not
#: ambient by themselves (though sim-core still must not construct RNGs).
_RANDOM_NON_AMBIENT = frozenset({"random.Random"})

_AMBIENT_EXACT = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})


def _ambient_origin(origin: str) -> Optional[str]:
    """Why ``origin`` is ambient entropy, or None if it is not."""
    if origin in _AMBIENT_EXACT:
        return f"{origin}() draws OS entropy"
    if origin.startswith("secrets."):
        return f"{origin}() draws OS entropy"
    if origin.startswith("random.") and origin not in _RANDOM_NON_AMBIENT \
            and origin.count(".") == 1:
        return f"{origin}() uses the hidden process-global random state"
    if origin.startswith("numpy.random.") and origin.count(".") == 2 \
            and origin != "numpy.random.default_rng":
        # Legacy global-state numpy API (np.random.random, .randint, ...).
        name = origin.rsplit(".", 1)[1]
        if name[:1].islower():
            return f"{origin}() uses the global numpy random state"
    return None


def _default_rng_seeded(node: ast.Call) -> bool:
    """True when a ``default_rng`` call passes an explicit seed."""
    if node.args:
        # A literal None positional is still ambient.
        first = node.args[0]
        if isinstance(first, ast.Constant) and first.value is None:
            return False
        return True
    for keyword in node.keywords:
        if keyword.arg == "seed":
            value = keyword.value
            return not (isinstance(value, ast.Constant)
                        and value.value is None)
        if keyword.arg is None:  # **kwargs: assume the caller knows
            return True
    return False


def check(module: ModuleSource, config: LintConfig) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        origin = module.resolve(node.func)
        if origin is None:
            continue
        reason = _ambient_origin(origin)
        if reason is not None:
            yield module.finding(
                RULE_ID, node,
                f"{reason}; derive randomness from the condition's "
                f"RNG tree (repro.util.rng) instead")
            continue
        if origin == "numpy.random.default_rng":
            if module.is_sim_core:
                yield module.finding(
                    RULE_ID, node,
                    f"sim-core module {module.name} constructs its own "
                    f"Generator; accept one threaded from the "
                    f"condition's RNG tree (repro.util.rng.spawn_rng) "
                    f"instead — a local seed root is invisible to the "
                    f"condition fingerprint")
            elif not _default_rng_seeded(node):
                yield module.finding(
                    RULE_ID, node,
                    "np.random.default_rng() without an explicit seed "
                    "draws OS entropy; pass a seed or a SeedSequence "
                    "from the condition's RNG tree")
