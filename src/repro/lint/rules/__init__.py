"""simlint rule registry.

Each rule module exposes ``RULE_ID``, ``DESCRIPTION`` and
``check(module, config)`` (plus an optional tree-wide
``finalize(modules, config)``).  The behaviour-surface guard is not an
AST rule — it hashes files, driven from the CLI — but it registers its
id and description here so ``--list-rules`` and ``--select`` know the
complete rule set.
"""

from __future__ import annotations

from typing import Dict

from repro.lint import surface
from repro.lint.rules import (
    ambient_rng,
    global_state,
    slots,
    unordered,
    wallclock,
)

#: AST rules, keyed by rule id, in documentation order.
RULES: Dict[str, object] = {
    wallclock.RULE_ID: wallclock,
    ambient_rng.RULE_ID: ambient_rng,
    global_state.RULE_ID: global_state,
    unordered.RULE_ID: unordered,
    slots.RULE_ID: slots,
}

#: Every rule id (AST rules + the behaviour-surface guard) with its
#: one-line description, for --list-rules and --select validation.
ALL_RULE_DESCRIPTIONS: Dict[str, str] = {
    **{rule_id: module.DESCRIPTION for rule_id, module in RULES.items()},
    surface.RULE_ID: surface.DESCRIPTION,
}
