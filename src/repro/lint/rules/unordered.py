"""Rule ``no-unordered-iteration``: set iteration order is not contract.

CPython iterates a ``set`` in hash-table order — stable only for a
fixed ``PYTHONHASHSEED`` and interning history.  If that order feeds
event scheduling or RNG draws, two "identical" simulations diverge.
In sim-core modules, iterating a set (a ``for`` loop or comprehension
over a set literal, a ``set()``/``frozenset()`` call, a set
comprehension, or a local name bound to one) is flagged; iterate
``sorted(...)`` or keep the data in a list/dict (insertion-ordered)
instead.  Membership tests (``x in my_set``) are fine — only iteration
leaks the order.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, ModuleSource

RULE_ID = "no-unordered-iteration"
DESCRIPTION = ("iterating a set in sim-core leaks hash order into "
               "event/RNG order; iterate sorted(...) or an "
               "insertion-ordered container instead")

_SET_CALLS = frozenset({"set", "frozenset"})


def _is_set_expr(node: ast.AST, module: ModuleSource,
                 local_sets: Set[str]) -> Optional[str]:
    """Describe why ``node`` evaluates to a set, or None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        origin = module.resolve(node.func)
        if origin in _SET_CALLS:
            return f"a {origin}(...) call"
    if isinstance(node, ast.Name) and node.id in local_sets:
        return f"the set-valued local {node.id!r}"
    if isinstance(node, ast.BinOp) \
            and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                     ast.BitXor)):
        left = _is_set_expr(node.left, module, local_sets)
        right = _is_set_expr(node.right, module, local_sets)
        if left or right:
            return "a set expression"
    return None


def _local_set_names(func: ast.AST, module: ModuleSource) -> Set[str]:
    """Names bound to an obvious set value within ``func``'s body."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) \
                and _is_set_expr(node.value, module, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name) \
                and _is_set_expr(node.value, module, names):
            names.add(node.target.id)
    return names


def check(module: ModuleSource, config: LintConfig) -> Iterator[Finding]:
    if not module.is_sim_core:
        return
    # Innermost enclosing function of every node (module tree = None),
    # so set-valued locals are looked up in the right scope exactly once.
    enclosing = {}
    stack = [(module.tree, None)]
    while stack:
        node, scope = stack.pop()
        enclosing[node] = scope
        for child in ast.iter_child_nodes(node):
            child_scope = node if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)) else scope
            stack.append((child, child_scope))
    local_cache = {}

    def sets_in_scope(scope) -> Set[str]:
        key = id(scope)
        if key not in local_cache:
            local_cache[key] = _local_set_names(
                scope if scope is not None else module.tree, module)
        return local_cache[key]

    for node in ast.walk(module.tree):
        iters = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            why = _is_set_expr(it, module,
                               sets_in_scope(enclosing.get(node)))
            if why is not None:
                yield module.finding(
                    RULE_ID, it,
                    f"iterating {why} in sim-core module "
                    f"{module.name}; hash order can feed event "
                    f"scheduling or RNG draws — iterate sorted(...) "
                    f"or an insertion-ordered container")
