"""Rule ``no-wallclock``: no real-time clock reads.

A condition's bytes must be a pure function of (spec, seed,
``SIM_BEHAVIOUR_VERSION``); simulated time comes from the
:class:`~repro.netem.engine.EventLoop`, never the host clock.  Any call
that reads wall-clock or CPU time is flagged — everywhere, not just in
sim-core, because orchestration timestamps are rare, deliberate acts
that should each carry a written ``# simlint: allow[no-wallclock]``
justification (lease stamps, duration reporting) or live in an
allowlisted module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, ModuleSource

RULE_ID = "no-wallclock"
DESCRIPTION = ("wall-clock / CPU-clock reads (time.time, monotonic, "
               "perf_counter, datetime.now, ...) are forbidden; "
               "simulated time comes from the EventLoop")

#: Fully-resolved call origins that read a real clock.
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


def check(module: ModuleSource, config: LintConfig) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        origin = module.resolve(node.func)
        if origin in WALLCLOCK_CALLS:
            where = "sim-core" if module.is_sim_core else "orchestration"
            yield module.finding(
                RULE_ID, node,
                f"{origin}() reads the host clock in {where} module "
                f"{module.name}; simulation time must come from the "
                f"EventLoop (suppress deliberate orchestration "
                f"timestamps with a justified allow comment)")
