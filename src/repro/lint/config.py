"""simlint configuration: what counts as sim-core, and what is exempt.

The determinism contract (see ``docs/architecture.md``) says a
condition's bytes are a pure function of (spec, seed,
``SIM_BEHAVIOUR_VERSION``).  The lint rules enforce the *patterns* that
protect that contract, and this module decides **where** they apply:

* ``sim_core`` — dotted package prefixes whose modules produce
  simulation bytes.  Wall-clock reads, ambient RNGs, process-global
  mutable state and unordered iteration are forbidden there outright.
* ``allow_modules`` — a per-rule module allowlist for orchestration
  layers with a legitimate need (e.g. lease stamping reads wall-clock).
  Entries are ``fnmatch`` patterns over dotted module names.  Prefer an
  inline ``# simlint: allow[<rule>] -- <reason>`` suppression for a
  single call site; use the allowlist only when a whole module's purpose
  is exempt.
* ``slots_required`` — hot-path record classes that must declare
  ``__slots__`` (or ``@dataclass(slots=True)``) so PR 2's memory win
  cannot silently regress.
* ``behaviour_surface`` — path prefixes (relative to the scanned
  package root) hashed into the committed behaviour-surface manifest;
  editing any of them requires a ``SIM_BEHAVIOUR_VERSION`` bump or an
  explicit ``repro lint --accept-behaviour-surface`` regeneration.

Defaults are baked in below; a ``simlint.json`` file (repo root, or
``--config PATH``) may override any field — the config is data, not
code, so a scenario PR can widen the surface without touching the
linter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

#: Packages whose modules produce simulation bytes. ``repro.util`` is
#: deliberately absent: ``util/rng.py`` is the sanctioned RNG
#: constructor the sim-core threads generators from.
DEFAULT_SIM_CORE: Tuple[str, ...] = (
    "repro.netem",
    "repro.transport",
    "repro.http",
    "repro.browser",
    "repro.web",
    "repro.study",
)

#: Hot-path record classes that must stay slotted (PR 2).
DEFAULT_SLOTS_REQUIRED: Tuple[str, ...] = (
    "Packet",
    "TcpSegment",
    "_SentRange",
    "StreamChunk",
    "QuicPacketPayload",
    "_SentPacket",
    "_SendStream",
    "_RecvStream",
    "ScheduledEvent",
    "LossDraws",
    "RangeSet",
    "FlowIdAllocator",
    # Study block engine (PR 8): per-block draw/result records sized
    # participants × trials.
    "ConditionStats",
    "TraitBlock",
    "EventDraws",
    "AbDraws",
    "AbBlock",
    "RatingDraws",
    "RatingBlock",
    "RatingContextTable",
    # Multi-segment paths + split-connection proxies (PR 9): one
    # forwarder per segment boundary, one relay per proxied
    # connection/stream — all on the per-packet delivery path.
    "ForwardingNode",
    "ByteRelay",
    "StreamRelay",
    # In-path middlebox chains (PR 10): every runtime box sits on the
    # per-packet delivery path of an impaired condition.
    "Middlebox",
    "MiddleboxChain",
    "TokenBucketPolicer",
    "TrafficShaper",
    "JitterInjector",
    "ReorderInjector",
    "DuplicateInjector",
    "MtuClamp",
    "AckDecimator",
    "FragmentPayload",
)

#: Paths (relative to the package root, e.g. ``src/repro``) hashed into
#: the behaviour-surface manifest: the six sim-core packages plus the
#: RNG/units helpers every one of them leans on.
DEFAULT_BEHAVIOUR_SURFACE: Tuple[str, ...] = (
    "netem",
    "transport",
    "http",
    "browser",
    "web",
    "study",
    "util/rng.py",
    "util/units.py",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved simlint configuration (defaults + optional JSON)."""

    sim_core: Tuple[str, ...] = DEFAULT_SIM_CORE
    #: rule id -> fnmatch patterns over dotted module names.
    allow_modules: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    slots_required: Tuple[str, ...] = DEFAULT_SLOTS_REQUIRED
    behaviour_surface: Tuple[str, ...] = DEFAULT_BEHAVIOUR_SURFACE

    def is_sim_core(self, module: str) -> bool:
        """True when ``module`` (dotted) produces simulation bytes."""
        return any(module == prefix or module.startswith(prefix + ".")
                   for prefix in self.sim_core)

    def module_allowed(self, rule: str, module: str) -> bool:
        """True when ``module`` is allowlisted for ``rule``."""
        patterns = self.allow_modules.get(rule, ())
        patterns += self.allow_modules.get("*", ())
        return any(fnmatchcase(module, pattern) for pattern in patterns)


def load_config(path: Optional[Union[str, Path]] = None) -> LintConfig:
    """Build a config from defaults, overridden by a JSON file.

    ``path`` of ``None`` returns pure defaults.  The JSON object may
    set any subset of the :class:`LintConfig` fields; unknown keys are
    rejected so a typoed override cannot silently widen the contract.
    """
    if path is None:
        return LintConfig()
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: simlint config must be a JSON object")
    known = {f.name for f in fields(LintConfig)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"{path}: unknown simlint config keys: {', '.join(unknown)} "
            f"(expected a subset of {', '.join(sorted(known))})")
    kwargs: Dict[str, object] = {}
    for key, value in data.items():
        if key == "allow_modules":
            if not isinstance(value, dict):
                raise ValueError(
                    f"{path}: allow_modules must map rule ids to "
                    f"lists of module patterns")
            kwargs[key] = {rule: tuple(patterns)
                           for rule, patterns in value.items()}
        else:
            kwargs[key] = tuple(value)
    return LintConfig(**kwargs)
