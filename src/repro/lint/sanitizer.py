"""Runtime nondeterminism sanitizer: the lint rules, enforced live.

Static analysis catches the patterns it knows; this module catches the
rest at runtime.  While active, the ambient entropy and wall-clock
entry points (``time.time``/``monotonic``/``perf_counter`` families,
``random`` module functions, ``os.urandom``, ``uuid.uuid4``,
``np.random.default_rng`` without a seed) are monkeypatched with
wrappers that inspect the *calling stack*: a call with any sim-core
frame on it (``repro.netem``, ``repro.transport``, ... — the same
``LintConfig.sim_core`` list the static rules use) raises
:exc:`NondeterminismError`; calls from orchestration frames (campaign
timing, lease heartbeats — including daemon threads) pass straight
through to the real functions.

Three entry points:

* ``with sanitized(): ...`` — context manager, used directly by tests;
* the ``nondeterminism_sanitizer`` pytest fixture
  (:mod:`repro.lint.pytest_plugin`, registered in ``tests/conftest.py``);
* ``REPRO_SANITIZE=1`` — the harness wraps every
  :func:`~repro.testbed.harness.produce_summary` simulation in the
  sanitizer, so any sweep, campaign or distributed worker can run its
  whole grid as a live nondeterminism smoke test.

The patched functions are process-wide while the context is active;
nesting is supported via reference counting, and a seeded
``default_rng(seed)`` (the sanctioned ``util/rng.py`` path) is always
allowed — the goal is to catch *ambient* draws, not the RNG tree.
"""

from __future__ import annotations

import os
import random
import sys
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.lint.config import LintConfig

#: Environment variable the harness consults; "1" activates the
#: sanitizer around every simulated recording.
ENV_FLAG = "REPRO_SANITIZE"


class NondeterminismError(RuntimeError):
    """An ambient entropy/clock source was reached from sim-core code."""


_lock = threading.Lock()
_depth = 0
_config = LintConfig()
_originals: List[Tuple[object, str, object]] = []


def _sim_core_frame(skip: int = 2) -> Optional[str]:
    """Dotted name of the nearest sim-core frame on the stack, if any."""
    frame = sys._getframe(skip)
    while frame is not None:
        name = frame.f_globals.get("__name__", "")
        if _config.is_sim_core(name):
            return f"{name}:{frame.f_lineno}"
        frame = frame.f_back
    return None


def _guard(label: str, real, hint: str):
    def wrapper(*args, **kwargs):
        caller = _sim_core_frame()
        if caller is not None:
            raise NondeterminismError(
                f"{label} called from sim-core frame {caller} during a "
                f"sanitized simulation; {hint}")
        return real(*args, **kwargs)

    wrapper.__name__ = getattr(real, "__name__", label)
    wrapper.__qualname__ = wrapper.__name__
    return wrapper


def _guard_default_rng(real):
    def wrapper(seed=None, *args, **kwargs):
        if seed is None:
            caller = _sim_core_frame()
            if caller is not None:
                raise NondeterminismError(
                    f"np.random.default_rng() without a seed called "
                    f"from sim-core frame {caller} during a sanitized "
                    f"simulation; thread a Generator from the "
                    f"condition's RNG tree (repro.util.rng)")
        return real(seed, *args, **kwargs)

    wrapper.__name__ = "default_rng"
    wrapper.__qualname__ = "default_rng"
    return wrapper


_CLOCK_HINT = ("simulated time comes from the EventLoop, never the "
               "host clock")
_RNG_HINT = ("thread randomness from the condition's RNG tree "
             "(repro.util.rng)")

#: (module object, attribute, wrapper factory) for every patched entry
#: point.  random-module functions are looked up at patch time so a
#: prior test's monkeypatching cannot leak stale references in.
_RANDOM_FUNCTIONS = (
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "getrandbits", "randbytes", "seed",
)
_TIME_FUNCTIONS = (
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
)


def _patch_all() -> None:
    for name in _TIME_FUNCTIONS:
        real = getattr(time, name)
        _originals.append((time, name, real))
        setattr(time, name, _guard(f"time.{name}", real, _CLOCK_HINT))
    for name in _RANDOM_FUNCTIONS:
        real = getattr(random, name, None)
        if real is None:  # randbytes is 3.9+; stay version-tolerant
            continue
        _originals.append((random, name, real))
        setattr(random, name, _guard(f"random.{name}", real, _RNG_HINT))
    _originals.append((os, "urandom", os.urandom))
    setattr(os, "urandom", _guard("os.urandom", os.urandom, _RNG_HINT))
    _originals.append((uuid, "uuid4", uuid.uuid4))
    setattr(uuid, "uuid4", _guard("uuid.uuid4", uuid.uuid4, _RNG_HINT))
    _originals.append((np.random, "default_rng", np.random.default_rng))
    setattr(np.random, "default_rng",
            _guard_default_rng(np.random.default_rng))


def _unpatch_all() -> None:
    while _originals:
        module, name, real = _originals.pop()
        setattr(module, name, real)


@contextmanager
def sanitized(config: Optional[LintConfig] = None) -> Iterator[None]:
    """Activate the nondeterminism sanitizer for the enclosed block."""
    global _depth, _config
    with _lock:
        if config is not None:
            _config = config
        if _depth == 0:
            _patch_all()
        _depth += 1
    try:
        yield
    finally:
        with _lock:
            _depth -= 1
            if _depth == 0:
                _unpatch_all()
                _config = LintConfig()


def active() -> bool:
    """True while at least one ``sanitized()`` context is live."""
    return _depth > 0


def env_requested() -> bool:
    """True when ``REPRO_SANITIZE=1`` asks the harness to sanitize."""
    return os.environ.get(ENV_FLAG) == "1"


@contextmanager
def maybe_sanitized() -> Iterator[None]:
    """``sanitized()`` when ``REPRO_SANITIZE=1``, else a no-op.

    The harness wraps each simulation in this, so the env flag turns
    any existing entry point (sweep, campaign, distributed worker)
    into a nondeterminism smoke test without code changes.
    """
    if env_requested():
        with sanitized():
            yield
    else:
        yield
