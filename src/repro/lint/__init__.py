"""simlint: determinism & hot-path static analysis for the simulator.

The determinism contract — a condition's bytes are a pure function of
(spec, seed, ``SIM_BEHAVIOUR_VERSION``) — is enforced in three layers:

1. **Static rules** (``repro lint``): AST checks for the patterns that
   historically broke the contract — wall-clock reads, ambient RNGs,
   process-global mutable state, unordered set iteration — plus the
   ``__slots__`` manifest protecting PR 2's hot-path memory win.
2. **The behaviour-surface guard**: a committed content-hash manifest
   of every sim-behaviour-affecting file; edits fail the lint until
   they carry a version bump and an explicit
   ``--accept-behaviour-surface`` regeneration.
3. **The runtime sanitizer** (:mod:`repro.lint.sanitizer`): the same
   forbidden entry points monkeypatched to raise when reached from
   sim-core frames during a real simulation (``REPRO_SANITIZE=1`` or
   the ``nondeterminism_sanitizer`` pytest fixture).

See the "Determinism contract enforcement" section of
``docs/architecture.md`` for the rule-by-rule policy.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import Finding, LintResult, run_lint
from repro.lint.sanitizer import (
    NondeterminismError,
    maybe_sanitized,
    sanitized,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "NondeterminismError",
    "load_config",
    "maybe_sanitized",
    "run_lint",
    "sanitized",
]
