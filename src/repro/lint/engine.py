"""simlint engine: file walking, AST parsing, suppressions, reporting.

A *rule* is a callable ``check(module, config) -> Iterable[Finding]``
registered in :mod:`repro.lint.rules`.  The engine owns everything
around the rules: discovering files, parsing them once into a
:class:`ModuleSource`, applying inline suppressions and the config
allowlist, and rendering findings as text or JSON.

Suppression syntax
------------------
A finding is suppressed by a comment on the same line (or the line
directly above, for expressions that do not fit one line)::

    started = time.time()  # simlint: allow[no-wallclock] -- lease stamp

The written reason after ``--`` is mandatory: a suppression without one
is itself reported (rule ``bad-suppression``), so every exemption in the
tree carries its justification.  Multiple rules may be listed
comma-separated inside the brackets.  Comments are found with
:mod:`tokenize`, never by substring search, so the marker text inside a
string literal does not suppress anything.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig

#: Matches the whole suppression comment; group 1 = rule list, group 2 =
#: the justification (may be empty -> bad-suppression).
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*allow\[([^\]]*)\]\s*(?:--\s*(.*\S)?\s*)?$")
#: Any comment that mentions simlint but is not a valid suppression.
_SUPPRESS_HINT_RE = re.compile(r"#\s*simlint\b")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str
    module: str = ""

    def to_json(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "module": self.module, "message": self.message}

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    """A parsed ``# simlint: allow[...] -- reason`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class ModuleSource:
    """One parsed python file, shared by every rule."""

    path: Path
    name: str                    # dotted module name, e.g. repro.netem.link
    source: str
    tree: ast.Module
    is_sim_core: bool
    suppressions: List[Suppression] = field(default_factory=list)
    bad_suppressions: List[Finding] = field(default_factory=list)
    #: local name -> dotted origin, from every import statement in the
    #: module (scope-insensitive on purpose: an approximation that is
    #: exact for this codebase's flat import style).
    imports: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, name: str,
              config: LintConfig) -> "ModuleSource":
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        module = cls(path=path, name=name, source=source, tree=tree,
                     is_sim_core=config.is_sim_core(name))
        module._collect_suppressions()
        module._collect_imports()
        return module

    # -- suppressions --------------------------------------------------------

    def _collect_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline)
            comments = [(tok.start[0], tok.string) for tok in tokens
                        if tok.type == tokenize.COMMENT]
        except tokenize.TokenError:
            comments = []
        for line, text in comments:
            match = _SUPPRESS_RE.search(text)
            if match is None:
                if _SUPPRESS_HINT_RE.search(text):
                    self.bad_suppressions.append(Finding(
                        rule="bad-suppression", path=str(self.path),
                        line=line, module=self.name,
                        message=f"unparseable simlint comment {text!r}; "
                                f"expected '# simlint: allow[<rule>] "
                                f"-- <reason>'"))
                continue
            rules = tuple(r.strip() for r in match.group(1).split(",")
                          if r.strip())
            reason = (match.group(2) or "").strip()
            if not rules or not reason:
                what = "a rule name" if not rules else \
                    "a written justification after '--'"
                self.bad_suppressions.append(Finding(
                    rule="bad-suppression", path=str(self.path),
                    line=line, module=self.name,
                    message=f"suppression is missing {what}: {text!r}"))
                continue
            self.suppressions.append(
                Suppression(line=line, rules=rules, reason=reason))

    def suppressed(self, finding: Finding) -> bool:
        """Consume a suppression covering ``finding``, if one exists."""
        for supp in self.suppressions:
            if supp.line in (finding.line, finding.line - 1) \
                    and finding.rule in supp.rules:
                supp.used = True
                return True
        return False

    # -- imports -------------------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    origin = alias.name if alias.asname else \
                        alias.name.split(".", 1)[0]
                    self.imports[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of an expression, through the import map.

        ``np.random.default_rng`` with ``import numpy as np`` resolves
        to ``numpy.random.default_rng``; ``perf_counter`` after
        ``from time import perf_counter`` resolves to
        ``time.perf_counter``.  Returns None for non-name expressions.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.imports.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(rule=rule, path=str(self.path),
                       line=getattr(node, "lineno", 0),
                       module=self.name, message=message)


def iter_python_files(root: Path) -> Iterable[Path]:
    """Every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    yield from sorted(p for p in root.rglob("*.py") if p.is_file())


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` anchored at the package root.

    ``root`` may be the package directory itself (``src/repro``) or any
    subpackage or file within it; enclosing package directories are
    discovered through their ``__init__.py``, so a partial scan
    (``repro lint src/repro/netem``) names modules exactly like a
    full-tree scan (``repro.netem.link``) and sim-core rules apply
    either way.
    """
    base = (root if root.is_dir() else root.parent).resolve()
    top = base
    while (top.parent / "__init__.py").is_file():
        top = top.parent
    rel = path.resolve().relative_to(top.parent)
    parts = rel.parts
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + (parts[-1][:-3],)
    return ".".join(parts)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    checked_files: int
    suppressed_count: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "checked_files": self.checked_files,
            "suppressed": self.suppressed_count,
            "findings": [f.to_json() for f in self.findings],
        }

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"simlint: {len(self.findings)} finding"
            f"{'s' if len(self.findings) != 1 else ''} in "
            f"{self.checked_files} files "
            f"({self.suppressed_count} suppressed)")
        return "\n".join(lines)


def run_lint(
    roots: Sequence[Path],
    config: LintConfig,
    select: Optional[Set[str]] = None,
    extra_findings: Sequence[Finding] = (),
) -> LintResult:
    """Run the registered AST rules over ``roots``.

    ``select`` restricts to a subset of rule ids; ``extra_findings``
    lets non-AST checks (the behaviour-surface guard) merge into the
    same report.  Findings are sorted by (path, line, rule) so output
    is stable across filesystems.
    """
    from repro.lint.rules import RULES

    active = {rule_id: rule for rule_id, rule in RULES.items()
              if select is None or rule_id in select}
    modules: List[ModuleSource] = []
    findings: List[Finding] = []
    suppressed = 0
    seen: Set[Path] = set()
    for root in roots:
        for path in iter_python_files(root):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            module = ModuleSource.parse(path, module_name_for(path, root),
                                        config)
            modules.append(module)
            for rule_id, rule in active.items():
                if config.module_allowed(rule_id, module.name):
                    continue
                for finding in rule.check(module, config):
                    if module.suppressed(finding):
                        suppressed += 1
                    else:
                        findings.append(finding)
            findings.extend(module.bad_suppressions)
    for rule_id, rule in active.items():
        finalize = getattr(rule, "finalize", None)
        if finalize is not None:
            findings.extend(finalize(modules, config))
    findings.extend(extra_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintResult(findings=findings, checked_files=len(modules),
                      suppressed_count=suppressed)


def render(result: LintResult, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(result.to_json(), indent=2)
    return result.render_text()
