"""Rule ``behaviour-surface``: sim-behaviour code changes must be owned.

PR 4's fixture guard catches "the simulator's *bytes* changed without a
``SIM_BEHAVIOUR_VERSION`` bump" — but only for the conditions in the
fixture grid.  This guard extends it to "the *code that produces the
bytes* changed": a committed manifest
(``src/repro/lint/behaviour_surface.json``) records a SHA-256 per file
in the behaviour surface (the sim-core packages plus ``util/rng.py`` /
``util/units.py``; see ``LintConfig.behaviour_surface``) alongside the
``SIM_BEHAVIOUR_VERSION`` it was taken at.

``repro lint`` fails when the hashes or the version disagree with the
manifest.  The resolution is always deliberate and always the same
command: after either bumping ``SIM_BEHAVIOUR_VERSION`` (behaviour
changed) or convincing review the edit is behaviour-preserving, run::

    python -m repro.lint --accept-behaviour-surface

to regenerate the manifest, and commit it with the edit.  An edit can
therefore never slip in silently: it either carries a version bump or
an explicit, diff-visible acceptance.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.lint.config import LintConfig
from repro.lint.engine import Finding

RULE_ID = "behaviour-surface"
DESCRIPTION = ("sim-behaviour-affecting files are content-hashed into a "
               "committed manifest; editing one requires a "
               "SIM_BEHAVIOUR_VERSION bump and/or an explicit "
               "--accept-behaviour-surface regeneration")

#: The committed manifest travels inside the package.
DEFAULT_MANIFEST_PATH = Path(__file__).parent / "behaviour_surface.json"

_ACCEPT_HINT = ("run 'python -m repro.lint --accept-behaviour-surface' "
                "after bumping SIM_BEHAVIOUR_VERSION (behaviour "
                "changed) or confirming the edit is "
                "behaviour-preserving, then commit the regenerated "
                "manifest")


def _current_version() -> int:
    from repro.testbed.harness import SIM_BEHAVIOUR_VERSION
    return SIM_BEHAVIOUR_VERSION


def surface_files(root: Path, config: LintConfig) -> List[Path]:
    """Files hashed into the manifest, sorted by repo-relative path."""
    out: List[Path] = []
    for entry in config.behaviour_surface:
        path = root / entry
        if path.is_dir():
            out.extend(p for p in path.rglob("*.py") if p.is_file())
        elif path.is_file():
            out.append(path)
    return sorted(set(out))


def compute_surface(root: Path, config: LintConfig) -> Dict[str, str]:
    """``relative-path -> sha256`` over the current tree."""
    hashes: Dict[str, str] = {}
    for path in surface_files(root, config):
        rel = path.relative_to(root).as_posix()
        hashes[rel] = hashlib.sha256(path.read_bytes()).hexdigest()
    return hashes


def write_manifest(
    root: Path,
    config: LintConfig,
    manifest_path: Optional[Union[str, Path]] = None,
    version: Optional[int] = None,
) -> Path:
    """Regenerate the manifest from the current tree (the accept path).

    The default manifest location is resolved at call time so tests can
    point :data:`DEFAULT_MANIFEST_PATH` at a scratch file.
    """
    manifest_path = Path(manifest_path if manifest_path is not None
                         else DEFAULT_MANIFEST_PATH)
    payload = {
        "sim_behaviour": version if version is not None
        else _current_version(),
        "files": compute_surface(root, config),
    }
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    manifest_path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                             + "\n")
    return manifest_path


def check_surface(
    root: Path,
    config: LintConfig,
    manifest_path: Optional[Union[str, Path]] = None,
    version: Optional[int] = None,
) -> List[Finding]:
    """Compare the tree against the committed manifest.

    ``version`` defaults to the running simulator's
    ``SIM_BEHAVIOUR_VERSION``; tests inject values to simulate bumped
    and unbumped edits.  The default manifest location is resolved at
    call time so tests can point :data:`DEFAULT_MANIFEST_PATH` at a
    scratch file.
    """
    manifest_path = Path(manifest_path if manifest_path is not None
                         else DEFAULT_MANIFEST_PATH)
    current = version if version is not None else _current_version()
    if not manifest_path.exists():
        return [Finding(
            rule=RULE_ID, path=str(manifest_path), line=0,
            message=f"behaviour-surface manifest is missing; "
                    f"{_ACCEPT_HINT}")]
    try:
        recorded = json.loads(manifest_path.read_text())
        recorded_version = int(recorded["sim_behaviour"])
        recorded_files = dict(recorded["files"])
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        return [Finding(
            rule=RULE_ID, path=str(manifest_path), line=0,
            message=f"behaviour-surface manifest is unreadable; "
                    f"{_ACCEPT_HINT}")]
    findings: List[Finding] = []
    actual = compute_surface(root, config)
    bumped = recorded_version != current
    if bumped:
        findings.append(Finding(
            rule=RULE_ID, path=str(manifest_path), line=0,
            message=f"SIM_BEHAVIOUR_VERSION is {current} but the "
                    f"manifest was accepted at {recorded_version}; "
                    f"{_ACCEPT_HINT}"))
    for rel in sorted(set(recorded_files) | set(actual)):
        if rel not in actual:
            what = f"{rel} was removed from the behaviour surface"
        elif rel not in recorded_files:
            what = f"{rel} is new in the behaviour surface"
        elif recorded_files[rel] != actual[rel]:
            what = f"{rel} changed"
        else:
            continue
        detail = "" if bumped else \
            " without a SIM_BEHAVIOUR_VERSION bump or an explicit " \
            "acceptance — campaign caches and fixtures may silently " \
            "disagree with the new code"
        findings.append(Finding(
            rule=RULE_ID, path=str(root / rel), line=0,
            message=f"{what}{detail}; {_ACCEPT_HINT}"))
    return findings
