"""Pytest integration for the runtime nondeterminism sanitizer.

Registered from ``tests/conftest.py`` via
``pytest_plugins = ("repro.lint.pytest_plugin",)``; external users of
the library can opt in with ``-p repro.lint.pytest_plugin``.
"""

from __future__ import annotations

import pytest

from repro.lint.sanitizer import NondeterminismError, sanitized  # noqa: F401


@pytest.fixture
def nondeterminism_sanitizer():
    """Run the test under the runtime nondeterminism sanitizer.

    Any wall-clock read or ambient RNG draw reached from a sim-core
    frame inside the test raises :exc:`NondeterminismError`.
    """
    with sanitized():
        yield
