"""Trace-driven variable-rate links (Mahimahi ``mm-link`` traces).

Mahimahi's signature capability is replaying packet-delivery traces: a
text file with one millisecond timestamp per line, each granting one
1500-byte delivery opportunity; the file loops forever. This module
implements the same abstraction so users can emulate recorded cellular
channels instead of the paper's constant-rate links.

The paper itself uses constant rates (Table 2), so none of the bundled
profiles depend on this — it exists for the library's broader use and is
exercised by its own tests and example.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Callable, Deque, List, Optional, Sequence, Union

import numpy as np

from repro.netem.engine import EventLoop
from repro.netem.link import LossDraws
from repro.netem.packet import Packet

#: Bytes granted per delivery opportunity (Mahimahi uses the MTU).
OPPORTUNITY_BYTES = 1500


def parse_trace(text: str) -> List[int]:
    """Parse a Mahimahi trace: one integer millisecond per line.

    Timestamps must be non-decreasing; blank lines and ``#`` comments are
    ignored.
    """
    stamps: List[int] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            value = int(line)
        except ValueError:
            raise ValueError(f"line {lineno}: not an integer: {line!r}") \
                from None
        if value < 0:
            raise ValueError(f"line {lineno}: negative timestamp")
        if stamps and value < stamps[-1]:
            raise ValueError(f"line {lineno}: timestamps must not decrease")
        stamps.append(value)
    if not stamps:
        raise ValueError("trace contains no delivery opportunities")
    if stamps[-1] == 0:
        raise ValueError("trace duration is zero")
    return stamps


def load_trace(path: Union[str, Path]) -> List[int]:
    """Read and parse a trace file."""
    return parse_trace(Path(path).read_text())


def constant_rate_trace(mbps: float, duration_ms: int = 1000) -> List[int]:
    """Synthesise a constant-rate trace (for tests and comparisons)."""
    if mbps <= 0:
        raise ValueError("rate must be positive")
    bytes_per_ms = mbps * 1e6 / 8.0 / 1000.0
    opportunities = max(1, int(round(bytes_per_ms * duration_ms
                                     / OPPORTUNITY_BYTES)))
    step = duration_ms / opportunities
    return [int(round(step * (i + 1))) for i in range(opportunities)]


def cellular_like_trace(
    mean_mbps: float,
    duration_ms: int = 4000,
    burstiness: float = 0.6,
    seed: int = 0,
) -> List[int]:
    """Synthesise a bursty, cellular-looking trace.

    Rate varies slowly (Gauss-Markov on the log rate) around the mean;
    ``burstiness`` in [0, 1) scales the variability.
    """
    if not 0 <= burstiness < 1:
        raise ValueError("burstiness must be in [0, 1)")
    # Trace *synthesis* enters a condition as data (the trace hashes
    # into the fingerprint), not as a simulation-time draw, so a
    # generator seeded by the explicit argument is sound here.
    # simlint: allow[no-ambient-rng] -- seeded by the explicit argument; output is fingerprinted data, not a sim draw
    rng = np.random.default_rng(seed)
    stamps: List[int] = []
    log_rate = 0.0
    t = 0.0
    mean_gap = OPPORTUNITY_BYTES / (mean_mbps * 1e6 / 8.0) * 1e3  # ms
    while t < duration_ms:
        log_rate = 0.95 * log_rate + float(rng.normal(0, 0.25 * burstiness))
        gap = mean_gap * float(np.exp(-log_rate))
        t += max(gap, 0.01)
        stamps.append(int(round(t)))
    return stamps or [1]


class TraceLink:
    """One direction of a trace-driven link.

    Delivery opportunities occur at the trace's timestamps (looping);
    each opportunity drains up to :data:`OPPORTUNITY_BYTES` from the
    droptail queue. Unused opportunities are wasted, exactly like
    Mahimahi.
    """

    def __init__(
        self,
        loop: EventLoop,
        trace_ms: Sequence[int],
        deliver: Callable[[Packet], None],
        propagation_delay_s: float = 0.0,
        queue_bytes: int = 240_000,
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        name: str = "trace-link",
    ):
        if not trace_ms:
            raise ValueError("empty trace")
        if queue_bytes <= 0:
            raise ValueError("queue must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        # Same contract as EmulatedLink: loss draws must come from the
        # condition's RNG tree, so a lossy trace link requires an
        # explicit generator instead of a silent locally-seeded one.
        if loss_rate > 0.0 and rng is None:
            raise ValueError(
                f"trace link {name!r} has loss_rate={loss_rate} but no "
                f"rng; thread a Generator from the condition's RNG tree "
                f"(repro.util.rng.spawn_rng)")
        self._loop = loop
        self._trace = list(trace_ms)
        self._period_ms = self._trace[-1]
        if self._period_ms <= 0:
            raise ValueError("trace period must be positive")
        self._deliver = deliver
        self._propagation = propagation_delay_s
        self._queue_cap = queue_bytes
        self._loss_rate = loss_rate
        self.name = name

        self._queue: Deque[Packet] = deque()
        self._queue_bytes = 0
        self._cursor = 0          # index into the trace
        self._epoch = 0           # completed loops
        self.delivered_packets = 0
        self.dropped_packets = 0
        self._pump_scheduled = False
        #: Packets between dequeue and delivery; arrival times are
        #: non-decreasing so FIFO pop matches the event order.
        self._in_flight: Deque[Packet] = deque()
        self._loss_draws = LossDraws(rng) if rng is not None else None

    @property
    def queued_bytes(self) -> int:
        return self._queue_bytes

    def mean_rate_bytes_per_s(self) -> float:
        """Long-run average rate granted by the trace."""
        return len(self._trace) * OPPORTUNITY_BYTES \
            / (self._period_ms / 1e3)

    def send(self, packet: Packet) -> bool:
        """Offer a packet; False when the droptail queue is full."""
        if self._loss_rate and self._loss_draws.next() < self._loss_rate:
            return True  # lost on the wire
        if self._queue_bytes + packet.size > self._queue_cap:
            self.dropped_packets += 1
            return False
        self._queue.append(packet)
        self._queue_bytes += packet.size
        self._schedule_pump()
        return True

    # -- delivery pump ------------------------------------------------------

    def _next_opportunity_time(self) -> float:
        stamp = self._trace[self._cursor]
        return (self._epoch * self._period_ms + stamp) / 1e3

    def _advance_cursor(self) -> None:
        self._cursor += 1
        if self._cursor >= len(self._trace):
            self._cursor = 0
            self._epoch += 1

    def _schedule_pump(self) -> None:
        if self._pump_scheduled or not self._queue:
            return
        # Skip past opportunities that already elapsed.
        while self._next_opportunity_time() < self._loop.now - 1e-12:
            self._advance_cursor()
        self._pump_scheduled = True
        self._loop.call_at(max(self._next_opportunity_time(),
                               self._loop.now), self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        budget = OPPORTUNITY_BYTES
        while self._queue and self._queue[0].size <= budget:
            packet = self._queue.popleft()
            budget -= packet.size
            self._queue_bytes -= packet.size
            self.delivered_packets += 1
            self._in_flight.append(packet)
            self._loop.call_later(self._propagation, self._deliver_next)
        self._advance_cursor()
        self._schedule_pump()

    def _deliver_next(self) -> None:
        self._deliver(self._in_flight.popleft())
