"""Packet-level network emulation (the Mahimahi substitute).

The paper uses a modified Mahimahi [15] to emulate the four access networks
in Table 2. This package provides the equivalent in pure Python: a
discrete-event engine (:mod:`repro.netem.engine`), an emulated
bandwidth/queue/loss link (:mod:`repro.netem.link`), a full-duplex path
(:mod:`repro.netem.path`) and the paper's network profiles
(:mod:`repro.netem.profiles`).
"""

from repro.netem.engine import EventLoop
from repro.netem.flowid import FlowIdAllocator
from repro.netem.link import EmulatedLink, LinkConfig, LinkStats
from repro.netem.middlebox import (
    MIDDLEBOX_PRESETS,
    NO_MIDDLEBOXES,
    AckDecimatorSpec,
    DuplicateSpec,
    JitterSpec,
    MiddleboxChain,
    MiddleboxChainSpec,
    MiddleboxSpec,
    MtuClampSpec,
    PolicerSpec,
    ReorderSpec,
    ShaperSpec,
    middleboxes_by_name,
    resolve_middleboxes,
)
from repro.netem.packet import Packet
from repro.netem.path import NetworkPath
from repro.netem.profiles import (
    DA2GC,
    DSL,
    LTE,
    MSS,
    NETWORKS,
    NetworkProfile,
    network_by_name,
)

__all__ = [
    "EventLoop",
    "FlowIdAllocator",
    "EmulatedLink",
    "LinkConfig",
    "LinkStats",
    "Packet",
    "NetworkPath",
    "NetworkProfile",
    "DSL",
    "LTE",
    "DA2GC",
    "MSS",
    "NETWORKS",
    "network_by_name",
    "MIDDLEBOX_PRESETS",
    "NO_MIDDLEBOXES",
    "AckDecimatorSpec",
    "DuplicateSpec",
    "JitterSpec",
    "MiddleboxChain",
    "MiddleboxChainSpec",
    "MiddleboxSpec",
    "MtuClampSpec",
    "PolicerSpec",
    "ReorderSpec",
    "ShaperSpec",
    "middleboxes_by_name",
    "resolve_middleboxes",
]
