"""Single-direction emulated link: rate limit, droptail queue, random loss.

Models one direction of a Mahimahi-style shell:

* a fixed-rate bottleneck serialising packets at ``rate_bytes_per_s``;
* a droptail queue in front of it, sized in milliseconds of buffering
  (queue capacity in bytes = rate × queue_ms), matching the paper's
  "queue size is set to 200 ms except for DSL with 12 ms";
* i.i.d. random loss applied on entry (link-layer loss, e.g. the 3.3% /
  6.0% of the in-flight networks in Table 2);
* fixed one-way propagation delay added after serialisation.

Hot-path notes: the link schedules exactly **one** event per accepted
packet (its arrival at the far end). Queue occupancy is tracked with a
deque of ``(serialisation_done, size)`` records drained lazily whenever
occupancy is read — a droptail decision at time *t* sees precisely the
packets whose serialisation completes after *t*, the same occupancy the
old explicit dequeue event produced. Loss draws are taken from the RNG
in blocks; ``Generator.random(n)`` consumes the PCG64 stream exactly
like *n* scalar draws, so loss patterns are unchanged for a given seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

import numpy as np

from repro.netem.engine import EventLoop
from repro.netem.packet import Packet
from repro.util.units import MTU_BYTES

DeliverCallback = Callable[[Packet], None]

#: Loss draws taken from the RNG per refill of a lossy link's buffer.
_LOSS_DRAW_BLOCK = 256


class LossDraws:
    """Uniform draws taken from an RNG in blocks.

    ``Generator.random(n)`` consumes the PCG64 stream exactly like ``n``
    scalar draws, so per-seed loss patterns are unchanged; only the
    per-draw Python overhead shrinks. Shared by the constant-rate and
    trace-driven links.
    """

    __slots__ = ("_rng", "_draws", "_cursor")

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._draws = None
        self._cursor = 0

    def next(self) -> float:
        draws = self._draws
        cursor = self._cursor
        if draws is None or cursor >= _LOSS_DRAW_BLOCK:
            draws = self._draws = self._rng.random(_LOSS_DRAW_BLOCK)
            cursor = 0
        self._cursor = cursor + 1
        return draws[cursor]


@dataclass(frozen=True)
class LinkConfig:
    """Static configuration for one link direction.

    The droptail capacity defaults to ``rate x queue_ms`` but can be
    pinned with ``queue_bytes`` — Mahimahi sizes its queues in packets,
    so a testbed configures the same byte capacity in both directions
    regardless of the asymmetric rates.
    """

    rate_bytes_per_s: float
    propagation_delay_s: float
    queue_ms: float
    loss_rate: float = 0.0
    queue_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate_bytes_per_s <= 0:
            raise ValueError("link rate must be positive")
        if self.propagation_delay_s < 0:
            raise ValueError("propagation delay must be non-negative")
        if self.queue_ms <= 0:
            raise ValueError("queue size must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {self.loss_rate}")
        if self.queue_bytes is not None and self.queue_bytes < MTU_BYTES:
            raise ValueError(
                f"queue_bytes must hold at least one MTU "
                f"({MTU_BYTES} bytes), got {self.queue_bytes}")

    @property
    def queue_capacity_bytes(self) -> int:
        """Droptail capacity: fixed bytes, or rate × queue duration.

        An explicitly pinned ``queue_bytes`` is honoured exactly (it is
        validated to hold at least one MTU at construction), so
        tiny-buffer scenarios are configurable; only the derived
        rate × duration value is floored to one full packet.
        """
        if self.queue_bytes is not None:
            return self.queue_bytes
        return max(MTU_BYTES, int(self.rate_bytes_per_s * self.queue_ms / 1e3))


@dataclass
class LinkStats:
    """Counters accumulated by a link during a simulation."""

    packets_in: int = 0
    packets_delivered: int = 0
    packets_random_lost: int = 0
    packets_queue_dropped: int = 0
    bytes_delivered: int = 0
    max_queue_bytes: int = 0
    total_queue_delay: float = 0.0

    @property
    def packets_lost(self) -> int:
        """All losses: random plus droptail."""
        return self.packets_random_lost + self.packets_queue_dropped

    @property
    def loss_fraction(self) -> float:
        """Observed fraction of offered packets that were lost."""
        if self.packets_in == 0:
            return 0.0
        return self.packets_lost / self.packets_in

    @property
    def mean_queue_delay(self) -> float:
        """Mean queueing delay over delivered packets, seconds."""
        if self.packets_delivered == 0:
            return 0.0
        return self.total_queue_delay / self.packets_delivered


class EmulatedLink:
    """One direction of an emulated access network.

    Packets are offered with :meth:`send`; survivors are handed to the
    ``deliver`` callback after queueing + serialisation + propagation.
    """

    __slots__ = (
        "_loop", "_config", "_deliver", "_name", "stats",
        "_capacity", "_rate", "_propagation", "_loss_rate",
        "_queue_bytes", "_busy_until", "_pending_free", "_in_flight",
        "_loss_draws",
    )

    def __init__(
        self,
        loop: EventLoop,
        config: LinkConfig,
        deliver: DeliverCallback,
        rng: Optional[np.random.Generator] = None,
        name: str = "link",
    ):
        """A lossy link requires an explicit ``rng``.

        Loss draws must come from the condition's RNG tree
        (:func:`repro.util.rng.spawn_rng`) so identical conditions
        re-simulate identically; a silent locally-seeded fallback would
        hide a second seeding root from the condition fingerprint.
        Loss-free links never draw, so ``rng`` may be omitted.
        """
        if config.loss_rate > 0.0 and rng is None:
            raise ValueError(
                f"link {name!r} has loss_rate={config.loss_rate} but no "
                f"rng; thread a Generator from the condition's RNG tree "
                f"(repro.util.rng.spawn_rng)")
        self._loop = loop
        self._config = config
        self._deliver = deliver
        self._name = name
        # The computed capacity property is invariant; resolve it once
        # instead of re-deriving it on every send.
        self._capacity = config.queue_capacity_bytes
        self._rate = config.rate_bytes_per_s
        self._propagation = config.propagation_delay_s
        self._loss_rate = config.loss_rate
        self._queue_bytes = 0
        self._busy_until = 0.0
        #: (serialisation_done_time, virtual_event_seq, size) per queued
        #: packet; drained lazily whenever occupancy is consulted.
        self._pending_free: Deque[Tuple[float, int, int]] = deque()
        #: Packets between acceptance and delivery, in arrival order
        #: (arrival times are strictly increasing, so FIFO pop matches
        #: the event order).
        self._in_flight: Deque[Packet] = deque()
        self._loss_draws = LossDraws(rng) if rng is not None else None
        self.stats = LinkStats()

    @property
    def config(self) -> LinkConfig:
        return self._config

    @property
    def name(self) -> str:
        return self._name

    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the droptail queue."""
        self._drain_freed(self._loop.now)
        return self._queue_bytes

    def _drain_freed(self, now: float) -> None:
        """Release queue space of packets whose serialisation finished.

        Each entry carries the sequence number its dedicated dequeue
        event would have had, so an entry maturing exactly *now* is
        released if and only if that event would already have run —
        transport self-clocking makes sends land exactly on
        serialisation boundaries, and droptail decisions at those ties
        must match the event-driven implementation bit for bit.
        """
        pending = self._pending_free
        current = self._loop.current_seq
        while pending:
            done, seq, size = pending[0]
            if done < now or (done == now and seq < current):
                self._queue_bytes -= size
                pending.popleft()
            else:
                break

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.

        Returns True if the packet was accepted (it may still be randomly
        lost in flight — random loss is applied immediately so queue space
        models the physical buffer, not lost frames).
        """
        stats = self.stats
        stats.packets_in += 1

        if self._loss_rate > 0.0 and self._loss_draws.next() < self._loss_rate:
            stats.packets_random_lost += 1
            return True  # accepted but lost on the wire

        now = self._loop.now
        self._drain_freed(now)
        size = packet.size
        queued = self._queue_bytes + size
        if queued > self._capacity:
            stats.packets_queue_dropped += 1
            return False

        self._queue_bytes = queued
        if queued > stats.max_queue_bytes:
            stats.max_queue_bytes = queued

        busy = self._busy_until
        done = (busy if busy > now else now) + size / self._rate
        self._busy_until = done

        queue_delay = done - now  # includes own serialisation time
        packet.queue_delay = queue_delay
        stats.total_queue_delay += queue_delay

        # Allocated where the dequeue event used to be scheduled, so
        # equal-timestamp drains keep the exact old FIFO position.
        self._pending_free.append((done, self._loop.next_seq(), size))
        self._in_flight.append(packet)
        self._loop.call_at(done + self._propagation, self._arrive_next)
        return True

    def _arrive_next(self) -> None:
        """Deliver the oldest in-flight packet (one event per packet)."""
        packet = self._in_flight.popleft()
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size
        self._deliver(packet)
