"""Single-direction emulated link: rate limit, droptail queue, random loss.

Models one direction of a Mahimahi-style shell:

* a fixed-rate bottleneck serialising packets at ``rate_bytes_per_s``;
* a droptail queue in front of it, sized in milliseconds of buffering
  (queue capacity in bytes = rate × queue_ms), matching the paper's
  "queue size is set to 200 ms except for DSL with 12 ms";
* i.i.d. random loss applied on entry (link-layer loss, e.g. the 3.3% /
  6.0% of the in-flight networks in Table 2);
* fixed one-way propagation delay added after serialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.netem.engine import EventLoop
from repro.netem.packet import Packet
from repro.util.units import MTU_BYTES

DeliverCallback = Callable[[Packet], None]


@dataclass(frozen=True)
class LinkConfig:
    """Static configuration for one link direction.

    The droptail capacity defaults to ``rate x queue_ms`` but can be
    pinned with ``queue_bytes`` — Mahimahi sizes its queues in packets,
    so a testbed configures the same byte capacity in both directions
    regardless of the asymmetric rates.
    """

    rate_bytes_per_s: float
    propagation_delay_s: float
    queue_ms: float
    loss_rate: float = 0.0
    queue_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate_bytes_per_s <= 0:
            raise ValueError("link rate must be positive")
        if self.propagation_delay_s < 0:
            raise ValueError("propagation delay must be non-negative")
        if self.queue_ms <= 0:
            raise ValueError("queue size must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {self.loss_rate}")
        if self.queue_bytes is not None and self.queue_bytes < MTU_BYTES:
            raise ValueError(
                f"queue_bytes must hold at least one MTU "
                f"({MTU_BYTES} bytes), got {self.queue_bytes}")

    @property
    def queue_capacity_bytes(self) -> int:
        """Droptail capacity: fixed bytes, or rate × queue duration.

        An explicitly pinned ``queue_bytes`` is honoured exactly (it is
        validated to hold at least one MTU at construction), so
        tiny-buffer scenarios are configurable; only the derived
        rate × duration value is floored to one full packet.
        """
        if self.queue_bytes is not None:
            return self.queue_bytes
        return max(MTU_BYTES, int(self.rate_bytes_per_s * self.queue_ms / 1e3))


@dataclass
class LinkStats:
    """Counters accumulated by a link during a simulation."""

    packets_in: int = 0
    packets_delivered: int = 0
    packets_random_lost: int = 0
    packets_queue_dropped: int = 0
    bytes_delivered: int = 0
    max_queue_bytes: int = 0
    total_queue_delay: float = 0.0

    @property
    def packets_lost(self) -> int:
        """All losses: random plus droptail."""
        return self.packets_random_lost + self.packets_queue_dropped

    @property
    def loss_fraction(self) -> float:
        """Observed fraction of offered packets that were lost."""
        if self.packets_in == 0:
            return 0.0
        return self.packets_lost / self.packets_in

    @property
    def mean_queue_delay(self) -> float:
        """Mean queueing delay over delivered packets, seconds."""
        if self.packets_delivered == 0:
            return 0.0
        return self.total_queue_delay / self.packets_delivered


class EmulatedLink:
    """One direction of an emulated access network.

    Packets are offered with :meth:`send`; survivors are handed to the
    ``deliver`` callback after queueing + serialisation + propagation.
    """

    def __init__(
        self,
        loop: EventLoop,
        config: LinkConfig,
        deliver: DeliverCallback,
        rng: Optional[np.random.Generator] = None,
        name: str = "link",
    ):
        self._loop = loop
        self._config = config
        self._deliver = deliver
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._name = name
        self._queue: list = []
        self._queue_bytes = 0
        self._busy_until = 0.0
        self.stats = LinkStats()

    @property
    def config(self) -> LinkConfig:
        return self._config

    @property
    def name(self) -> str:
        return self._name

    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the droptail queue."""
        return self._queue_bytes

    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.

        Returns True if the packet was accepted (it may still be randomly
        lost in flight — random loss is applied immediately so queue space
        models the physical buffer, not lost frames).
        """
        self.stats.packets_in += 1

        if self._config.loss_rate > 0.0:
            if self._rng.random() < self._config.loss_rate:
                self.stats.packets_random_lost += 1
                return True  # accepted but lost on the wire

        if self._queue_bytes + packet.size > self._config.queue_capacity_bytes:
            self.stats.packets_queue_dropped += 1
            return False

        arrival = self._loop.now
        self._queue_bytes += packet.size
        self.stats.max_queue_bytes = max(self.stats.max_queue_bytes, self._queue_bytes)

        serialization = packet.size / self._config.rate_bytes_per_s
        start = max(self._busy_until, arrival)
        done = start + serialization
        self._busy_until = done

        queue_delay = done - arrival  # includes own serialisation time
        packet.queue_delay = queue_delay

        self._loop.call_at(done, lambda p=packet, a=arrival: self._dequeue(p, a))
        return True

    def _dequeue(self, packet: Packet, arrival: float) -> None:
        """Packet finished serialising: free queue space, start propagating."""
        self._queue_bytes -= packet.size
        self.stats.total_queue_delay += self._loop.now - arrival
        self._loop.call_later(
            self._config.propagation_delay_s,
            lambda p=packet: self._arrive(p),
        )

    def _arrive(self, packet: Packet) -> None:
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size
        self._deliver(packet)
