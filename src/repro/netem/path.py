"""Full-duplex network path between a client and a set of servers.

The paper's testbed puts the browser behind one emulated access link; all
replayed servers sit on the far side. We model that topology as the
1-segment special case of an N-segment path: each segment is a duplex
bottleneck pair (uplink for client→server traffic, downlink for
server→client traffic) shared by every connection of a page load, which
is what makes multi-connection pages contend realistically. Adjacent
segments are joined by store-and-forward :class:`ForwardingNode` hops, so
a :class:`SegmentedNetworkPath` can model satellite, cellular, or
in-flight topologies where a router — or a split-connection proxy, see
:mod:`repro.netem.proxy` — sits mid-path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.netem.engine import EventLoop
from repro.netem.flowid import FlowIdAllocator
from repro.netem.link import EmulatedLink
from repro.netem.middlebox import (
    NO_MIDDLEBOXES,
    MiddleboxChain,
    MiddleboxChainSpec,
    MiddleboxesLike,
    build_chain,
    resolve_middleboxes,
)
from repro.netem.packet import Packet
from repro.netem.profiles import (
    NetworkProfile,
    SegmentedProfile,
    TraceNetworkProfile,
)
from repro.netem.trace import TraceLink
from repro.util.rng import spawn_rng
from repro.util.units import Mbps

Endpoint = Callable[[Packet], None]

#: Path modes a page load can run over (campaign ``path`` axis values).
PATH_MODES: Tuple[str, ...] = ("direct", "split")


class NetworkPath:
    """Shared duplex bottleneck connecting one client to many servers.

    Endpoints register per flow id; the path routes delivered packets to
    the registered receiver for that flow and direction. The path owns
    the default :class:`FlowIdAllocator` for those ids: a fresh path
    means a fresh id space, so connection identity — and the
    handshake-retry jitter it seeds — is a pure function of a
    connection's position within its own page load, never of process
    history.

    A :class:`TraceNetworkProfile` gets a trace-driven downlink
    (Mahimahi ``mm-link`` semantics) instead of a constant-rate one; the
    uplink and all queue/loss parameters still come from the profile's
    link configs. Trace profiles work on any segment of a
    :class:`SegmentedNetworkPath`, not just the access link.

    ``rng_key`` and ``link_tag`` exist for segment embedding: a parent
    :class:`SegmentedNetworkPath` gives each segment its own RNG subtree
    (``("seg", i)``) and a segment-qualified link name
    (``{profile}-s{i}-up``). The defaults — empty key, no tag — make a
    standalone path byte-identical to the pre-segmentation behaviour.

    ``middleboxes`` interposes an ordered
    :class:`~repro.netem.middlebox.MiddleboxChain` between each link's
    delivery and the endpoint (per direction, per segment). The default
    empty chain wires the endpoint directly — no wrapper frame, no extra
    event, no RNG spawn — so it is byte-identical to a path built before
    middleboxes existed.
    """

    #: Direct paths carry raw packets end to end; a split path (see
    #: :class:`SegmentedNetworkPath`) terminates transports per segment.
    split = False

    def __init__(
        self,
        loop: EventLoop,
        profile: NetworkProfile,
        seed: int = 0,
        flow_ids: Optional[FlowIdAllocator] = None,
        *,
        rng_key: Tuple[object, ...] = (),
        link_tag: str = "",
        middleboxes: MiddleboxChainSpec = NO_MIDDLEBOXES,
    ):
        self._loop = loop
        self.profile = profile
        self.flow_ids = flow_ids if flow_ids is not None else FlowIdAllocator()
        self.middleboxes = middleboxes
        self.uplink_chain: Optional[MiddleboxChain] = None
        self.downlink_chain: Optional[MiddleboxChain] = None
        deliver_up: Endpoint = self._deliver_to_server
        deliver_down: Endpoint = self._deliver_to_client
        if middleboxes.boxes:
            self.uplink_chain = build_chain(
                loop, middleboxes, self._deliver_to_server,
                seed=seed, rng_key=rng_key, direction="up")
            self.downlink_chain = build_chain(
                loop, middleboxes, self._deliver_to_client,
                seed=seed, rng_key=rng_key, direction="down")
            if self.uplink_chain is not None:
                deliver_up = self.uplink_chain
            if self.downlink_chain is not None:
                deliver_down = self.downlink_chain
        up_cfg, down_cfg = profile.link_configs()
        name = f"{profile.name}{link_tag}"
        self.uplink = EmulatedLink(
            loop, up_cfg, deliver_up,
            rng=spawn_rng(seed, *rng_key, "uplink"), name=f"{name}-up",
        )
        if isinstance(profile, TraceNetworkProfile):
            self.downlink = TraceLink(
                loop, profile.downlink_trace_ms, deliver_down,
                propagation_delay_s=down_cfg.propagation_delay_s,
                queue_bytes=down_cfg.queue_capacity_bytes,
                loss_rate=down_cfg.loss_rate,
                rng=spawn_rng(seed, *rng_key, "downlink"),
                name=f"{name}-down",
            )
        else:
            self.downlink = EmulatedLink(
                loop, down_cfg, deliver_down,
                rng=spawn_rng(seed, *rng_key, "downlink"),
                name=f"{name}-down",
            )
        self._client_receivers: Dict[int, Endpoint] = {}
        self._server_receivers: Dict[int, Endpoint] = {}
        # Segment chaining hooks: when set (by SegmentedNetworkPath), a
        # delivered packet is handed to the next/previous hop instead of
        # a locally registered endpoint.
        self._uplink_exit: Optional[Endpoint] = None
        self._downlink_exit: Optional[Endpoint] = None

    @property
    def loop(self) -> EventLoop:
        return self._loop

    def register_client(self, flow_id: int, receiver: Endpoint) -> None:
        """Register the client-side receiver for ``flow_id``."""
        if flow_id in self._client_receivers:
            raise ValueError(f"client receiver for flow {flow_id} already set")
        self._client_receivers[flow_id] = receiver

    def register_server(self, flow_id: int, receiver: Endpoint) -> None:
        """Register the server-side receiver for ``flow_id``."""
        if flow_id in self._server_receivers:
            raise ValueError(f"server receiver for flow {flow_id} already set")
        self._server_receivers[flow_id] = receiver

    def unregister(self, flow_id: int) -> None:
        """Remove both receivers of a closed flow (idempotent)."""
        self._client_receivers.pop(flow_id, None)
        self._server_receivers.pop(flow_id, None)

    def send_to_server(self, packet: Packet) -> bool:
        """Client-side send (requests, ACKs) through the uplink."""
        packet.sent_at = self._loop.now
        return self.uplink.send(packet)

    def send_to_client(self, packet: Packet) -> bool:
        """Server-side send (response data) through the downlink."""
        packet.sent_at = self._loop.now
        return self.downlink.send(packet)

    def _deliver_to_server(self, packet: Packet) -> None:
        exit_hook = self._uplink_exit
        if exit_hook is not None:
            exit_hook(packet)
            return
        receiver = self._server_receivers.get(packet.flow_id)
        if receiver is not None:
            receiver(packet)

    def _deliver_to_client(self, packet: Packet) -> None:
        exit_hook = self._downlink_exit
        if exit_hook is not None:
            exit_hook(packet)
            return
        receiver = self._client_receivers.get(packet.flow_id)
        if receiver is not None:
            receiver(packet)

    # -- convenience -------------------------------------------------------

    @property
    def min_rtt(self) -> float:
        """Configured minimum round-trip time in seconds.

        For a :class:`SegmentedProfile` this is the *sum* of per-segment
        propagation (the aggregate profile already encodes it).
        """
        return self.profile.min_rtt_s

    def bdp_bytes(self) -> int:
        """Bandwidth-delay product of the downlink (used for buffer tuning).

        Uses the profile's nominal downlink rate, which for trace-driven
        profiles is the trace's long-run mean and for segmented profiles
        is the *minimum* of the per-segment bottleneck rates.
        """
        return int(Mbps(self.profile.downlink_mbps) * self.profile.min_rtt_s)


class ForwardingNode:
    """Store-and-forward hop joining two adjacent path segments.

    A delivered packet from one segment's link is immediately re-offered
    to the next segment's ingress queue (Mahimahi-style back-to-back
    shells). The node keeps per-hop forwarding/drop counters so debug
    output can attribute loss to a specific inter-segment queue.
    """

    __slots__ = ("name", "_next_hop", "forwarded", "dropped")

    def __init__(self, next_hop: Callable[[Packet], bool], name: str = ""):
        self.name = name
        self._next_hop = next_hop
        self.forwarded = 0
        self.dropped = 0

    def __call__(self, packet: Packet) -> None:
        if self._next_hop(packet):
            self.forwarded += 1
        else:
            self.dropped += 1


class SegmentedNetworkPath:
    """N bottleneck segments joined by store-and-forward hops.

    Each segment is a full :class:`NetworkPath` with its own
    delay/loss/bandwidth/queue parameters and its own RNG subtree
    (``spawn_rng(seed, "seg", i, ...)``); a single-segment path uses the
    root subtree so it is byte-identical to a plain :class:`NetworkPath`
    over the same profile. All segments share the parent's
    :class:`FlowIdAllocator`, so connection identity stays a pure
    function of position within the page load even when a split proxy
    opens one connection per segment.

    ``split=False`` (direct): packets traverse every segment end to end
    via :class:`ForwardingNode` hops — the client registers on segment
    0, servers on segment N-1, and the parent presents the plain
    :class:`NetworkPath` interface so transports are none the wiser.

    ``split=True``: segments are left unwired and
    :mod:`repro.netem.proxy` terminates a transport connection on each
    one, relaying stream bytes in between (a PEP). Registering endpoints
    on the parent is an error in this mode; the proxy registers on the
    per-segment paths directly.
    """

    def __init__(
        self,
        loop: EventLoop,
        profile: SegmentedProfile,
        seed: int = 0,
        flow_ids: Optional[FlowIdAllocator] = None,
        *,
        split: bool = False,
        middleboxes: MiddleboxChainSpec = NO_MIDDLEBOXES,
    ):
        self._loop = loop
        self.profile = profile
        self.split = split
        self.flow_ids = flow_ids if flow_ids is not None else FlowIdAllocator()
        self.middleboxes = middleboxes
        n = len(profile.segments)
        # Each segment instantiates its own chain pair under its RNG
        # subtree, so boxes also sit on every ForwardingNode boundary
        # and replay independently per hop.
        self.segments: List[NetworkPath] = [
            NetworkPath(
                loop, seg, seed=seed, flow_ids=self.flow_ids,
                rng_key=("seg", i) if n > 1 else (),
                link_tag=f"-s{i}",
                middleboxes=middleboxes,
            )
            for i, seg in enumerate(profile.segments)
        ]
        self.forwarders: List[ForwardingNode] = []
        if not split:
            for i in range(n - 1):
                up_fwd = ForwardingNode(
                    self.segments[i + 1].send_to_server,
                    name=f"{profile.name}-s{i}s{i + 1}-up",
                )
                down_fwd = ForwardingNode(
                    self.segments[i].send_to_client,
                    name=f"{profile.name}-s{i + 1}s{i}-down",
                )
                self.segments[i]._uplink_exit = up_fwd
                self.segments[i + 1]._downlink_exit = down_fwd
                self.forwarders.extend((up_fwd, down_fwd))

    @property
    def loop(self) -> EventLoop:
        return self._loop

    # -- NetworkPath interface (direct mode) -------------------------------

    def register_client(self, flow_id: int, receiver: Endpoint) -> None:
        """Register the client-side receiver on the access segment."""
        self._require_direct()
        self.segments[0].register_client(flow_id, receiver)

    def register_server(self, flow_id: int, receiver: Endpoint) -> None:
        """Register the server-side receiver on the far segment."""
        self._require_direct()
        self.segments[-1].register_server(flow_id, receiver)

    def unregister(self, flow_id: int) -> None:
        """Remove a flow's receivers from every segment (idempotent)."""
        for segment in self.segments:
            segment.unregister(flow_id)

    def send_to_server(self, packet: Packet) -> bool:
        """Client-side send into the access segment's uplink."""
        self._require_direct()
        return self.segments[0].send_to_server(packet)

    def send_to_client(self, packet: Packet) -> bool:
        """Server-side send into the far segment's downlink."""
        self._require_direct()
        return self.segments[-1].send_to_client(packet)

    def _require_direct(self) -> None:
        if self.split:
            raise RuntimeError(
                "split path: endpoints terminate per segment — use "
                "repro.netem.proxy or the per-segment paths directly")

    # -- convenience -------------------------------------------------------

    @property
    def min_rtt(self) -> float:
        """End-to-end minimum RTT: the sum of per-segment propagation."""
        return self.profile.min_rtt_s

    def bdp_bytes(self) -> int:
        """End-to-end BDP: bottleneck (minimum) rate × total min RTT."""
        return int(Mbps(self.profile.downlink_mbps) * self.profile.min_rtt_s)


def build_network_path(
    loop: EventLoop,
    profile: NetworkProfile,
    seed: int = 0,
    flow_ids: Optional[FlowIdAllocator] = None,
    *,
    path_mode: str = "direct",
    middleboxes: Optional[MiddleboxesLike] = None,
):
    """Build the right path object for ``profile`` and ``path_mode``.

    Plain (and trace) profiles get the classic :class:`NetworkPath`;
    a :class:`SegmentedProfile` gets a :class:`SegmentedNetworkPath`,
    split or direct. ``path_mode="split"`` requires a segmented profile
    with at least two segments — splitting a single link is a no-op the
    campaign grid should not silently accept.

    ``middleboxes`` accepts a preset name, a
    :class:`~repro.netem.middlebox.MiddleboxChainSpec`, or a sequence of
    box specs; ``None`` (or the ``"none"`` preset) builds a chain-free
    path, byte-identical to the pre-middlebox simulator.
    """
    if path_mode not in PATH_MODES:
        raise ValueError(
            f"unknown path mode {path_mode!r}; expected one of {PATH_MODES}")
    chain = resolve_middleboxes(middleboxes)
    if isinstance(profile, SegmentedProfile):
        split = path_mode == "split"
        if split and len(profile.segments) < 2:
            raise ValueError(
                "path=split needs a SegmentedProfile with >= 2 segments")
        return SegmentedNetworkPath(loop, profile, seed=seed,
                                    flow_ids=flow_ids, split=split,
                                    middleboxes=chain)
    if path_mode == "split":
        raise ValueError(
            f"path=split requires a SegmentedProfile, got "
            f"{type(profile).__name__} {profile.name!r}")
    return NetworkPath(loop, profile, seed=seed, flow_ids=flow_ids,
                       middleboxes=chain)
