"""Full-duplex network path between a client and a set of servers.

The paper's testbed puts the browser behind one emulated access link; all
replayed servers sit on the far side. We model the same topology: a single
bottleneck pair (uplink for client→server traffic, downlink for
server→client traffic) shared by every connection of a page load, which is
what makes multi-connection pages contend realistically.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.netem.engine import EventLoop
from repro.netem.flowid import FlowIdAllocator
from repro.netem.link import EmulatedLink, LinkConfig
from repro.netem.packet import Packet
from repro.netem.profiles import NetworkProfile, TraceNetworkProfile
from repro.netem.trace import TraceLink
from repro.util.rng import spawn_rng
from repro.util.units import Mbps

Endpoint = Callable[[Packet], None]


class NetworkPath:
    """Shared duplex bottleneck connecting one client to many servers.

    Endpoints register per flow id; the path routes delivered packets to
    the registered receiver for that flow and direction. The path owns
    the default :class:`FlowIdAllocator` for those ids: a fresh path
    means a fresh id space, so connection identity — and the
    handshake-retry jitter it seeds — is a pure function of a
    connection's position within its own page load, never of process
    history.

    A :class:`TraceNetworkProfile` gets a trace-driven downlink
    (Mahimahi ``mm-link`` semantics) instead of a constant-rate one; the
    uplink and all queue/loss parameters still come from the profile's
    link configs.
    """

    def __init__(
        self,
        loop: EventLoop,
        profile: NetworkProfile,
        seed: int = 0,
        flow_ids: Optional[FlowIdAllocator] = None,
    ):
        self._loop = loop
        self.profile = profile
        self.flow_ids = flow_ids if flow_ids is not None else FlowIdAllocator()
        up_cfg, down_cfg = profile.link_configs()
        self.uplink = EmulatedLink(
            loop, up_cfg, self._deliver_to_server,
            rng=spawn_rng(seed, "uplink"), name=f"{profile.name}-up",
        )
        if isinstance(profile, TraceNetworkProfile):
            self.downlink = TraceLink(
                loop, profile.downlink_trace_ms, self._deliver_to_client,
                propagation_delay_s=down_cfg.propagation_delay_s,
                queue_bytes=down_cfg.queue_capacity_bytes,
                loss_rate=down_cfg.loss_rate,
                rng=spawn_rng(seed, "downlink"),
                name=f"{profile.name}-down",
            )
        else:
            self.downlink = EmulatedLink(
                loop, down_cfg, self._deliver_to_client,
                rng=spawn_rng(seed, "downlink"), name=f"{profile.name}-down",
            )
        self._client_receivers: Dict[int, Endpoint] = {}
        self._server_receivers: Dict[int, Endpoint] = {}

    @property
    def loop(self) -> EventLoop:
        return self._loop

    def register_client(self, flow_id: int, receiver: Endpoint) -> None:
        """Register the client-side receiver for ``flow_id``."""
        if flow_id in self._client_receivers:
            raise ValueError(f"client receiver for flow {flow_id} already set")
        self._client_receivers[flow_id] = receiver

    def register_server(self, flow_id: int, receiver: Endpoint) -> None:
        """Register the server-side receiver for ``flow_id``."""
        if flow_id in self._server_receivers:
            raise ValueError(f"server receiver for flow {flow_id} already set")
        self._server_receivers[flow_id] = receiver

    def unregister(self, flow_id: int) -> None:
        """Remove both receivers of a closed flow (idempotent)."""
        self._client_receivers.pop(flow_id, None)
        self._server_receivers.pop(flow_id, None)

    def send_to_server(self, packet: Packet) -> bool:
        """Client-side send (requests, ACKs) through the uplink."""
        packet.sent_at = self._loop.now
        return self.uplink.send(packet)

    def send_to_client(self, packet: Packet) -> bool:
        """Server-side send (response data) through the downlink."""
        packet.sent_at = self._loop.now
        return self.downlink.send(packet)

    def _deliver_to_server(self, packet: Packet) -> None:
        receiver = self._server_receivers.get(packet.flow_id)
        if receiver is not None:
            receiver(packet)

    def _deliver_to_client(self, packet: Packet) -> None:
        receiver = self._client_receivers.get(packet.flow_id)
        if receiver is not None:
            receiver(packet)

    # -- convenience -------------------------------------------------------

    @property
    def min_rtt(self) -> float:
        """Configured minimum round-trip time in seconds."""
        return self.profile.min_rtt_s

    def bdp_bytes(self) -> int:
        """Bandwidth-delay product of the downlink (used for buffer tuning).

        Uses the profile's nominal downlink rate, which for trace-driven
        profiles is the trace's long-run mean.
        """
        return int(Mbps(self.profile.downlink_mbps) * self.profile.min_rtt_s)
