"""Packet abstraction shared between netem and the transport stacks."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """An emulated network packet.

    ``size`` is the wire size in bytes (payload + header overhead); it is
    what the link's rate limiter and queue account for. ``payload`` is an
    opaque transport-defined object (a TCP segment, a QUIC packet body, …)
    that the receiving endpoint interprets.
    """

    size: int
    payload: Any
    flow_id: int = 0
    sent_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Optional ECN-like annotation set by the link when the queue was deep.
    queue_delay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")
