"""Deterministic per-context flow-id allocation.

A connection's flow id does two jobs: it is the routing key
:class:`~repro.netem.path.NetworkPath` delivers packets by, and it seeds
the deterministic handshake-retry jitter in the transports (lossy
networks therefore *behave* differently for different flow ids).

Historically flow ids came from process-global class counters on the
transport classes, which made simulated bytes depend on how many
connections the process had created earlier — sequential in-process
sweeps drifted, and campaign workers needed a counter-reset shim to
agree with fresh processes. :class:`FlowIdAllocator` replaces that: one
allocator per page-load context (the harness creates a fresh
:class:`~repro.netem.path.NetworkPath`, and with it a fresh allocator,
per load), so a connection's flow id is a pure function of its position
within its own page load, whatever the process simulated before.

TCP and QUIC keep the disjoint id ranges the class counters used, so a
mixed-transport path can never collide and recorded ids remain
recognisable in traces.
"""

from __future__ import annotations

#: First TCP flow id handed out by a fresh allocator.
TCP_FIRST_FLOW_ID = 1

#: First QUIC flow id handed out by a fresh allocator (disjoint from TCP).
QUIC_FIRST_FLOW_ID = 1_000_000


class FlowIdAllocator:
    """Hands out flow ids deterministically within one load context.

    The n-th TCP connection of a context always gets
    ``TCP_FIRST_FLOW_ID + n - 1`` and the n-th QUIC connection
    ``QUIC_FIRST_FLOW_ID + n - 1`` — identical to what a fresh process's
    first page load observed under the old process-global counters, so a
    fresh process's first load is bit-compatible across the change.
    """

    __slots__ = ("_next_tcp", "_next_quic")

    def __init__(self) -> None:
        self._next_tcp = TCP_FIRST_FLOW_ID
        self._next_quic = QUIC_FIRST_FLOW_ID

    def next_tcp(self) -> int:
        """Allocate the next TCP flow id."""
        flow_id = self._next_tcp
        self._next_tcp += 1
        return flow_id

    def next_quic(self) -> int:
        """Allocate the next QUIC flow id."""
        flow_id = self._next_quic
        self._next_quic += 1
        return flow_id
