"""Discrete-event simulation engine.

A minimal, fast event loop: callbacks scheduled at absolute simulated times,
executed in time order (FIFO among equal timestamps). All higher layers —
links, transports, the browser — run on one shared :class:`EventLoop`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class ScheduledEvent:
    """Handle for a scheduled callback; allows cancellation."""

    __slots__ = ("time", "callback", "cancelled", "seq")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True


class EventLoop:
    """Priority-queue driven simulation clock.

    >>> loop = EventLoop()
    >>> seen = []
    >>> _ = loop.call_at(2.0, lambda: seen.append("b"))
    >>> _ = loop.call_at(1.0, lambda: seen.append("a"))
    >>> loop.run()
    >>> seen
    ['a', 'b']
    """

    def __init__(self):
        self._now = 0.0
        self._heap: List[Tuple[float, int, ScheduledEvent]] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (diagnostics)."""
        return self._processed

    def call_at(self, when: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``when``.

        Scheduling in the past is a programming error and raises.
        """
        if when < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule event at {when:.9f}, now is {self._now:.9f}"
            )
        event = ScheduledEvent(max(when, self._now), next(self._counter), callback)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def call_later(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, callback)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if idle."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Run the next pending event. Returns False when the queue is empty."""
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Run events until the queue drains or ``until`` is reached.

        ``max_events`` is a runaway guard; hitting it raises RuntimeError.
        """
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self._now = until
                return
            self.step()
            executed += 1
            if executed >= max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events; likely a livelock"
                )

    def run_until_idle_or(self, predicate: Callable[[], bool],
                          until: Optional[float] = None) -> bool:
        """Run until ``predicate()`` turns true, the queue drains, or ``until``.

        Returns the final value of ``predicate()``.
        """
        while not predicate():
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            self.step()
        return predicate()
