"""Discrete-event simulation engine.

A minimal, fast event loop: callbacks scheduled at absolute simulated times,
executed in time order (FIFO among equal timestamps). All higher layers —
links, transports, the browser — run on one shared :class:`EventLoop`.

Cancelled events (transports re-arm their RTO/PTO timer on every ACK,
cancelling the previous one) are dropped lazily when popped; when they
outnumber the live entries the heap is compacted in one pass, so the
queue never degenerates into a graveyard of dead timers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class ScheduledEvent:
    """Handle for a scheduled callback; allows cancellation."""

    __slots__ = ("time", "callback", "cancelled", "seq", "_loop")

    def __init__(self, time: float, seq: int, callback: Callable[[], None],
                 loop: Optional["EventLoop"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            if self._loop is not None:
                self._loop._note_cancelled()


#: Compaction is considered once this many cancelled entries accumulate.
_COMPACT_MIN_CANCELLED = 64


class EventLoop:
    """Priority-queue driven simulation clock.

    >>> loop = EventLoop()
    >>> seen = []
    >>> _ = loop.call_at(2.0, lambda: seen.append("b"))
    >>> _ = loop.call_at(1.0, lambda: seen.append("a"))
    >>> loop.run()
    >>> seen
    ['a', 'b']
    """

    def __init__(self):
        self._now = 0.0
        self._heap: List[Tuple[float, int, ScheduledEvent]] = []
        self._counter = itertools.count()
        self._processed = 0
        self._cancelled_in_heap = 0
        #: Sequence number of the event currently (or most recently)
        #: being executed. Together with :meth:`next_seq` this lets
        #: components that fold work into fewer events (the link's lazy
        #: queue-space release) resolve equal-timestamp ties exactly as
        #: if they had scheduled a real event: FIFO by allocation order.
        self.current_seq = -1

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) entries currently in the queue."""
        return len(self._heap) - self._cancelled_in_heap

    def call_at(self, when: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``when``.

        Scheduling in the past is a programming error and raises.
        """
        if when < self._now:
            if when < self._now - 1e-12:
                raise ValueError(
                    f"cannot schedule event at {when:.9f}, now is {self._now:.9f}"
                )
            when = self._now
        event = ScheduledEvent(when, next(self._counter), callback, self)
        heapq.heappush(self._heap, (when, event.seq, event))
        return event

    def call_later(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, callback)

    def next_seq(self) -> int:
        """Allocate a sequence number without scheduling an event.

        Gives lazily-evaluated work (see :attr:`current_seq`) a
        tie-break position in the global FIFO order, identical to the
        position a real event scheduled here would have had.
        """
        return next(self._counter)

    def _note_cancelled(self) -> None:
        """A queued event was cancelled; compact when graveyard dominates."""
        self._cancelled_in_heap += 1
        if (self._cancelled_in_heap >= _COMPACT_MIN_CANCELLED
                and self._cancelled_in_heap * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (order is preserved:
        entries compare by (time, seq) exactly as before)."""
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if idle."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        if not heap:
            return None
        return heap[0][0]

    def step(self) -> bool:
        """Run the next pending event. Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            _, _, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = event.time
            self.current_seq = event.seq
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Run events until the queue drains or ``until`` is reached.

        ``max_events`` is a runaway guard; hitting it raises RuntimeError.
        """
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self._now = until
                return
            self.step()
            executed += 1
            if executed >= max_events:
                raise RuntimeError(
                    f"event loop exceeded {max_events} events; likely a livelock"
                )

    def run_until_idle_or(self, predicate: Callable[[], bool],
                          until: Optional[float] = None) -> bool:
        """Run until ``predicate()`` turns true, the queue drains, or ``until``.

        Returns the final value of ``predicate()``.
        """
        while not predicate():
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            self.step()
        return predicate()
