"""Split-connection proxy (PEP) terminating transports per path segment.

A performance-enhancing proxy sits between two segments of a
:class:`~repro.netem.path.SegmentedNetworkPath` and *terminates* the
transport on each side: the client talks TCP/QUIC to the proxy over the
access segment, the proxy talks its own TCP/QUIC connection to the
origin over the far segment, and application bytes are relayed in
between. Loss recovery, congestion control and handshakes then operate
per segment — the mechanism satellite and in-flight deployments use to
hide a long bent-pipe RTT from the end-to-end transport (the StanfordSNR
connection-splitting emulation is the blueprint).

:class:`SplitTcpConnection` and :class:`SplitQuicConnection` present the
same facade as :class:`~repro.transport.tcp.TcpConnection` /
:class:`~repro.transport.quic.QuicConnection`, so the HTTP layers switch
on ``path.split`` and are otherwise none the wiser. Every per-segment
connection draws its flow id from the shared per-load
:class:`~repro.netem.flowid.FlowIdAllocator` at facade construction
time, in segment order — connection identity (and the handshake-retry
jitter it seeds) stays a pure function of position within the page load.

Relay semantics: the proxy re-offers each newly delivered span of the
ordered stream to the next segment's connection, re-attaching the
meta markers that arrived with it at the span's end offset — the finest
granularity the proxy can observe. Proxy buffers are unbounded (a PEP
buffers at application level; the segment links still impose their own
queues), and bytes for a segment whose handshake is still in flight are
held until it establishes. Handshakes chain: the client-facing segment
connects first — the facade reports *established* as soon as that
access-segment handshake completes, the PEP's whole point — and each
established segment kicks off the next one, modelling connect-on-accept.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.netem.flowid import FlowIdAllocator
from repro.transport.config import StackConfig
from repro.transport.quic import QuicConnection, StreamDataCallback
from repro.transport.tcp import TcpConnection


def _require_split_path(path: object) -> None:
    if not getattr(path, "split", False):
        raise ValueError(
            "split-connection proxies need a SegmentedNetworkPath built "
            "with split=True (path=split over a SegmentedProfile)")


class ByteRelay:
    """One direction of one proxy hop: an ordered byte-stream repeater.

    Registered as a segment connection's data callback; forwards each
    newly delivered span (and its markers) into the adjacent segment's
    connection, buffering while that connection's handshake is still in
    flight.
    """

    __slots__ = ("_write", "_ready", "_pending", "_last_delivered",
                 "relayed_bytes")

    def __init__(self) -> None:
        self._write: Optional[Callable[..., None]] = None
        self._ready = False
        self._pending: List[Tuple[int, List[object]]] = []
        self._last_delivered = 0
        self.relayed_bytes = 0

    def bind(self, write: Callable[..., None]) -> None:
        """Attach the adjacent connection's write (post-construction)."""
        self._write = write

    def mark_ready(self) -> None:
        """Target segment established: flush everything held back."""
        self._ready = True
        pending, self._pending = self._pending, []
        for nbytes, metas in pending:
            self._write(nbytes, metas=metas)

    def __call__(self, delivered: int, metas: List[object]) -> None:
        delta = delivered - self._last_delivered
        self._last_delivered = delivered
        if delta <= 0:
            return
        self.relayed_bytes += delta
        if self._ready:
            self._write(delta, metas=metas)
        else:
            self._pending.append((delta, list(metas)))


class StreamRelay:
    """One direction of one proxy hop for per-stream (QUIC) delivery.

    Mirrors each upstream stream onto the adjacent segment's connection
    under the *same* stream id (ids are allocated once, by the facade,
    on the client-facing segment), propagating FIN and the stream's
    priority class.
    """

    __slots__ = ("_write", "_ready", "_pending", "_delivered",
                 "relayed_bytes")

    def __init__(self) -> None:
        self._write: Optional[Callable[..., None]] = None
        self._ready = False
        self._pending: List[Tuple[int, int, List[object], bool]] = []
        self._delivered: Dict[int, int] = {}
        self.relayed_bytes = 0

    def bind(self, write: Callable[..., None]) -> None:
        """Attach the adjacent connection's stream write."""
        self._write = write

    def mark_ready(self) -> None:
        """Target segment established: flush everything held back."""
        self._ready = True
        pending, self._pending = self._pending, []
        for stream_id, nbytes, metas, fin in pending:
            self._write(stream_id, nbytes, metas=metas, fin=fin)

    def __call__(self, stream_id: int, delivered: int,
                 metas: List[object], fin: bool) -> None:
        delta = delivered - self._delivered.get(stream_id, 0)
        self._delivered[stream_id] = delivered
        if delta <= 0 and not fin:
            return
        self.relayed_bytes += max(delta, 0)
        if self._ready:
            self._write(stream_id, max(delta, 0), metas=metas, fin=fin)
        else:
            self._pending.append((stream_id, max(delta, 0), list(metas), fin))


class SplitTcpConnection:
    """TCP terminated per segment, bytes relayed through PEP hops.

    Facade-compatible with :class:`~repro.transport.tcp.TcpConnection`:
    ``connect``/``client_write``/``server_write``/``server_sender``/
    ``close`` behave identically from the HTTP layer's point of view,
    with the client edge living on segment 0 and the origin edge on the
    last segment.
    """

    def __init__(
        self,
        path,
        stack: StackConfig,
        on_client_data: Callable[[int, List[object]], None],
        on_server_data: Callable[[int, List[object]], None],
        flow_ids: Optional[FlowIdAllocator] = None,
    ):
        _require_split_path(path)
        allocator = flow_ids if flow_ids is not None else path.flow_ids
        n = len(path.segments)
        self._on_established: Optional[Callable[[], None]] = None
        # Relays targeting each segment index, flushed on its handshake.
        self._relays_into: List[List[ByteRelay]] = [[] for _ in range(n)]
        c2s_relays = [ByteRelay() for _ in range(n - 1)]   # hop i -> i+1
        s2c_relays = [ByteRelay() for _ in range(n - 1)]   # hop i+1 -> i
        self.segments: List[TcpConnection] = []
        for i, seg_path in enumerate(path.segments):
            self.segments.append(TcpConnection(
                seg_path, stack,
                on_client_data=(on_client_data if i == 0
                                else s2c_relays[i - 1]),
                on_server_data=(on_server_data if i == n - 1
                                else c2s_relays[i]),
                flow_ids=allocator,
            ))
        for i in range(n - 1):
            c2s_relays[i].bind(self.segments[i + 1].client_write)
            self._relays_into[i + 1].append(c2s_relays[i])
            s2c_relays[i].bind(self.segments[i].server_write)
            self._relays_into[i].append(s2c_relays[i])
        self.relays = c2s_relays + s2c_relays
        self.flow_id = self.segments[0].flow_id

    # -- TcpConnection facade ---------------------------------------------

    @property
    def established(self) -> bool:
        """Client-edge establishment: requests may be written."""
        return self.segments[0].established

    @property
    def established_at(self) -> Optional[float]:
        return self.segments[0].established_at

    @property
    def client_sender(self):
        """Client-edge sender (request bytes enter here)."""
        return self.segments[0].client_sender

    @property
    def server_sender(self):
        """Origin-edge sender (response framing and backpressure)."""
        return self.segments[-1].server_sender

    def connect(self, on_established: Callable[[], None]) -> None:
        """Chain the per-segment handshakes, client-facing first."""
        self._on_established = on_established
        self._connect_segment(0)

    def _connect_segment(self, index: int) -> None:
        self.segments[index].connect(
            lambda: self._segment_established(index))

    def _segment_established(self, index: int) -> None:
        if index == 0 and self._on_established is not None:
            self._on_established()
        for relay in self._relays_into[index]:
            relay.mark_ready()
        if index + 1 < len(self.segments):
            self._connect_segment(index + 1)

    def client_write(self, nbytes: int, meta: Optional[object] = None,
                     *, metas: Optional[List[object]] = None) -> None:
        self.segments[0].client_write(nbytes, meta, metas=metas)

    def server_write(self, nbytes: int, meta: Optional[object] = None,
                     *, metas: Optional[List[object]] = None) -> None:
        self.segments[-1].server_write(nbytes, meta, metas=metas)

    def close(self) -> None:
        for conn in self.segments:
            conn.close()


class SplitQuicConnection:
    """QUIC terminated per segment, streams relayed through PEP hops.

    Facade-compatible with
    :class:`~repro.transport.quic.QuicConnection`. Stream ids are
    allocated on the client-facing segment and mirrored verbatim onto
    every other segment, so one logical request/response stream maps to
    the same id end to end; each hop re-opens the downstream stream in
    the stream's priority class before relaying its first bytes.
    """

    def __init__(
        self,
        path,
        stack: StackConfig,
        on_client_stream_data: StreamDataCallback,
        on_server_stream_data: StreamDataCallback,
        flow_ids: Optional[FlowIdAllocator] = None,
    ):
        _require_split_path(path)
        allocator = flow_ids if flow_ids is not None else path.flow_ids
        n = len(path.segments)
        self._on_established: Optional[Callable[[], None]] = None
        self._stream_priorities: Dict[int, int] = {}
        self._relays_into: List[List[StreamRelay]] = [[] for _ in range(n)]
        c2s_relays = [StreamRelay() for _ in range(n - 1)]
        s2c_relays = [StreamRelay() for _ in range(n - 1)]
        self.segments: List[QuicConnection] = []
        for i, seg_path in enumerate(path.segments):
            self.segments.append(QuicConnection(
                seg_path, stack,
                on_client_stream_data=(on_client_stream_data if i == 0
                                       else s2c_relays[i - 1]),
                on_server_stream_data=(on_server_stream_data if i == n - 1
                                       else c2s_relays[i]),
                flow_ids=allocator,
            ))
        for i in range(n - 1):
            c2s_relays[i].bind(self._client_writer(self.segments[i + 1]))
            self._relays_into[i + 1].append(c2s_relays[i])
            s2c_relays[i].bind(self._server_writer(self.segments[i]))
            self._relays_into[i].append(s2c_relays[i])
        self.relays = c2s_relays + s2c_relays
        self.flow_id = self.segments[0].flow_id

    def _client_writer(self, conn: QuicConnection) -> Callable[..., None]:
        """Forward-direction writer opening mirrored streams on demand."""
        def write(stream_id: int, nbytes: int, *,
                  metas: Optional[List[object]] = None,
                  fin: bool = False) -> None:
            if stream_id not in conn.client.send_streams:
                conn.client.open_stream(
                    stream_id, self._stream_priorities.get(stream_id, 1))
            conn.client_stream_write(stream_id, nbytes, fin=fin, metas=metas)
        return write

    def _server_writer(self, conn: QuicConnection) -> Callable[..., None]:
        """Return-direction writer preserving the stream's priority."""
        def write(stream_id: int, nbytes: int, *,
                  metas: Optional[List[object]] = None,
                  fin: bool = False) -> None:
            conn.server_stream_write(
                stream_id, nbytes, fin=fin, metas=metas,
                priority=self._stream_priorities.get(stream_id, 1))
        return write

    # -- QuicConnection facade --------------------------------------------

    @property
    def established(self) -> bool:
        return self.segments[0].established

    @property
    def established_at(self) -> Optional[float]:
        return self.segments[0].established_at

    def connect(self, on_established: Callable[[], None]) -> None:
        """Chain the per-segment handshakes, client-facing first."""
        self._on_established = on_established
        self._connect_segment(0)

    def _connect_segment(self, index: int) -> None:
        self.segments[index].connect(
            lambda: self._segment_established(index))

    def _segment_established(self, index: int) -> None:
        if index == 0 and self._on_established is not None:
            self._on_established()
        for relay in self._relays_into[index]:
            relay.mark_ready()
        if index + 1 < len(self.segments):
            self._connect_segment(index + 1)

    def open_stream(self, priority: int = 1) -> int:
        """Open a stream on the client edge; the id is mirrored onward."""
        stream_id = self.segments[0].open_stream(priority)
        self._stream_priorities[stream_id] = priority
        return stream_id

    def client_stream_write(self, stream_id: int, nbytes: int,
                            meta: Optional[object] = None,
                            fin: bool = False, *,
                            metas: Optional[List[object]] = None) -> None:
        self.segments[0].client_stream_write(
            stream_id, nbytes, meta, fin, metas=metas)

    def server_stream_write(self, stream_id: int, nbytes: int,
                            meta: Optional[object] = None,
                            fin: bool = False, priority: int = 1, *,
                            metas: Optional[List[object]] = None) -> None:
        self.segments[-1].server_stream_write(
            stream_id, nbytes, meta, fin, priority, metas=metas)

    def close(self) -> None:
        for conn in self.segments:
            conn.close()
