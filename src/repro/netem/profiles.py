"""Network profiles from Table 2 of the paper, plus derived profiles.

======= ========= ========== ========= ======
Network Uplink    Downlink   min. RTT  Loss
======= ========= ========== ========= ======
DSL     5 Mbps    25 Mbps    24 ms     0.0 %
LTE     2.8 Mbps  10.5 Mbps  74 ms     0.0 %
DA2GC   0.468 Mbps 0.468 Mbps 262 ms   3.3 %
MSS     1.89 Mbps 1.89 Mbps  760 ms    6.0 %
======= ========= ========== ========= ======

Queue size is 200 ms except for DSL with 12 ms. DSL/LTE are the German
median fixed/mobile accesses; DA2GC and MSS are the two in-flight WiFi
networks from Rula et al. [17].

Beyond the fixed Table 2 grid, campaigns can sweep *derived* profiles:
:func:`vary` and :func:`with_loss` clone a base profile with overridden
parameters (loss sweeps, RTT sweeps, buffer sweeps), and
:func:`trace_profile` builds a :class:`TraceNetworkProfile` whose
downlink replays a Mahimahi-style delivery trace instead of a constant
rate. Derived profiles are plain values — the testbed cache keys on
their full contents, not their names.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.netem.link import LinkConfig
from repro.netem.trace import OPPORTUNITY_BYTES
from repro.util.units import MTU_BYTES, Mbps, ms


@dataclass(frozen=True)
class NetworkProfile:
    """One row of Table 2."""

    name: str
    uplink_mbps: float
    downlink_mbps: float
    min_rtt_ms: float
    loss_rate: float
    queue_ms: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.uplink_mbps <= 0 or self.downlink_mbps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.min_rtt_ms <= 0:
            raise ValueError("min RTT must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")

    @property
    def min_rtt_s(self) -> float:
        return ms(self.min_rtt_ms)

    @property
    def one_way_delay_s(self) -> float:
        """Propagation delay per direction (symmetric split of min RTT)."""
        return ms(self.min_rtt_ms) / 2.0

    def link_configs(self) -> Tuple[LinkConfig, LinkConfig]:
        """(uplink, downlink) LinkConfigs implementing this profile.

        Random loss is applied independently per direction. The paper's
        loss figures come from in-flight WiFi characterisation where loss
        hits both directions; we split the end-to-end rate so that the
        round-trip loss probability matches the table:
        1 - (1-p_dir)^2 = loss_rate.

        Queueing: Mahimahi droptail queues are sized in packets, one
        figure per shell, so we translate "queue_ms at the bottleneck
        (downlink) rate" into a byte capacity and apply it to both
        directions — the uplink is not given a proportionally tiny
        buffer.
        """
        per_direction = 1.0 - (1.0 - self.loss_rate) ** 0.5
        # Derived rate x duration capacity, floored to one full packet:
        # a low-rate or short-queue profile (e.g. a buffer sweep) must
        # still be able to hold one MTU, and LinkConfig rejects pinned
        # capacities below that.
        queue_bytes = max(
            MTU_BYTES,
            int(Mbps(self.downlink_mbps) * self.queue_ms / 1e3))
        up = LinkConfig(
            rate_bytes_per_s=Mbps(self.uplink_mbps),
            propagation_delay_s=self.one_way_delay_s,
            queue_ms=self.queue_ms,
            loss_rate=per_direction,
            queue_bytes=queue_bytes,
        )
        down = LinkConfig(
            rate_bytes_per_s=Mbps(self.downlink_mbps),
            propagation_delay_s=self.one_way_delay_s,
            queue_ms=self.queue_ms,
            loss_rate=per_direction,
            queue_bytes=queue_bytes,
        )
        return up, down

    def table_row(self) -> Dict[str, str]:
        """Row for the Table 2 report."""
        return {
            "Network": self.name,
            "Uplink": f"{self.uplink_mbps:g} Mbps",
            "Downlink": f"{self.downlink_mbps:g} Mbps",
            "min. RTT": f"{self.min_rtt_ms:g} ms",
            "Loss": f"{self.loss_rate * 100:.1f} %",
            "Queue": f"{self.queue_ms:g} ms",
        }


DSL = NetworkProfile(
    name="DSL",
    uplink_mbps=5.0,
    downlink_mbps=25.0,
    min_rtt_ms=24.0,
    loss_rate=0.0,
    queue_ms=12.0,
    description="German median household broadband (federal network agency)",
)

LTE = NetworkProfile(
    name="LTE",
    uplink_mbps=2.8,
    downlink_mbps=10.5,
    min_rtt_ms=74.0,
    loss_rate=0.0,
    queue_ms=200.0,
    description="German median mobile access",
)

DA2GC = NetworkProfile(
    name="DA2GC",
    uplink_mbps=0.468,
    downlink_mbps=0.468,
    min_rtt_ms=262.0,
    loss_rate=0.033,
    queue_ms=200.0,
    description="In-flight WiFi, direct-air-to-ground (Rula et al.)",
)

MSS = NetworkProfile(
    name="MSS",
    uplink_mbps=1.89,
    downlink_mbps=1.89,
    min_rtt_ms=760.0,
    loss_rate=0.060,
    queue_ms=200.0,
    description="In-flight WiFi via satellite (Rula et al.)",
)

#: All Table 2 networks in paper order.
NETWORKS: Tuple[NetworkProfile, ...] = (DSL, LTE, DA2GC, MSS)

_BY_NAME: Dict[str, NetworkProfile] = {p.name: p for p in NETWORKS}


def network_by_name(name: str) -> NetworkProfile:
    """Look up a named profile (Table 2 or segment preset), case-insensitive."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown network {name!r}; known: {known}") from None


# -- derived profiles --------------------------------------------------------


def vary(profile: NetworkProfile, name: Optional[str] = None,
         **overrides: object) -> NetworkProfile:
    """Clone ``profile`` with overridden fields (for sweep axes).

    >>> vary(DSL, min_rtt_ms=100.0).min_rtt_ms
    100.0
    """
    derived = dataclasses.replace(profile, **overrides)  # type: ignore[arg-type]
    if name is None:
        changes = "_".join(f"{k}{v:g}" if isinstance(v, float) else f"{k}{v}"
                           for k, v in sorted(overrides.items()))
        name = f"{profile.name}~{changes}" if changes else profile.name
    return dataclasses.replace(derived, name=name)


def with_loss(profile: NetworkProfile, loss_rate: float,
              name: Optional[str] = None) -> NetworkProfile:
    """Clone ``profile`` with a different end-to-end loss rate.

    The workhorse of loss-sweep campaigns: ``[with_loss(DSL, p) for p in
    (0.01, 0.02, 0.05)]`` is a valid network axis.
    """
    if name is None:
        name = f"{profile.name}-loss{loss_rate * 100:g}"
    return vary(profile, name=name, loss_rate=loss_rate)


@dataclass(frozen=True)
class TraceNetworkProfile(NetworkProfile):
    """A profile whose downlink replays a Mahimahi delivery trace.

    ``downlink_mbps`` holds the trace's long-run mean rate (used for BDP
    buffer tuning); the actual packet-level downlink is a
    :class:`~repro.netem.trace.TraceLink` built by
    :class:`~repro.netem.path.NetworkPath`. Construct via
    :func:`trace_profile`, which derives the mean for you.
    """

    downlink_trace_ms: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.downlink_trace_ms:
            raise ValueError("trace profile needs delivery opportunities")
        if self.downlink_trace_ms[-1] <= 0:
            raise ValueError("trace duration must be positive")
        if any(b < a for a, b in zip(self.downlink_trace_ms,
                                     self.downlink_trace_ms[1:])):
            raise ValueError("trace timestamps must not decrease")


@dataclass(frozen=True)
class SegmentedProfile(NetworkProfile):
    """A multi-segment path: one :class:`NetworkProfile` per hop.

    The inherited scalar fields hold end-to-end *aggregates* derived by
    :func:`segmented_profile` — bottleneck (minimum) rates, summed
    propagation, compounded loss — so code that sizes buffers off
    ``downlink_mbps``/``min_rtt_ms`` keeps working unchanged. The
    per-segment truth lives in ``segments``; a
    :class:`~repro.netem.path.SegmentedNetworkPath` emulates each one
    with its own links and RNG subtree. Any segment may be a
    :class:`TraceNetworkProfile` (trace-driven middle hops included).

    Construct via :func:`segmented_profile`, which derives the
    aggregates for you.
    """

    segments: Tuple[NetworkProfile, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.segments:
            raise ValueError("segmented profile needs at least one segment")
        if any(isinstance(seg, SegmentedProfile) for seg in self.segments):
            raise ValueError("segments must be flat (no nested "
                             "SegmentedProfile)")


def segmented_profile(
    segments: Sequence[NetworkProfile],
    name: Optional[str] = None,
    description: str = "",
) -> SegmentedProfile:
    """Build a :class:`SegmentedProfile` from per-hop profiles.

    Aggregates follow the series-composition rules: rates are the
    bottleneck minimum per direction, the minimum RTT is the sum of
    per-segment propagation, end-to-end loss compounds as
    ``1 - prod(1 - p_i)``, and the nominal queue figure comes from the
    downlink-bottleneck segment.

    >>> segmented_profile((GEO_SAT, LAN)).min_rtt_ms
    561.0
    """
    segs = tuple(segments)
    if not segs:
        raise ValueError("segmented profile needs at least one segment")
    loss = 1.0
    for seg in segs:
        loss *= 1.0 - seg.loss_rate
    bottleneck = min(segs, key=lambda seg: seg.downlink_mbps)
    return SegmentedProfile(
        name=name if name is not None else "+".join(s.name for s in segs),
        uplink_mbps=min(s.uplink_mbps for s in segs),
        downlink_mbps=bottleneck.downlink_mbps,
        min_rtt_ms=sum(s.min_rtt_ms for s in segs),
        loss_rate=1.0 - loss,
        queue_ms=bottleneck.queue_ms,
        description=description or " -> ".join(s.name for s in segs),
        segments=segs,
    )


def trace_profile(
    name: str,
    trace_ms: Sequence[int],
    *,
    min_rtt_ms: float = 50.0,
    loss_rate: float = 0.0,
    queue_ms: float = 200.0,
    uplink_mbps: Optional[float] = None,
    description: str = "",
) -> TraceNetworkProfile:
    """Build a trace-driven profile from Mahimahi-style timestamps.

    The downlink's nominal rate is the trace's long-run mean (one
    :data:`~repro.netem.trace.OPPORTUNITY_BYTES` delivery per
    timestamp); the uplink defaults to the same rate as a constant-rate
    link.
    """
    stamps = tuple(int(t) for t in trace_ms)
    if not stamps or stamps[-1] <= 0:
        raise ValueError("trace must contain delivery opportunities")
    mean_bytes_per_s = len(stamps) * OPPORTUNITY_BYTES / (stamps[-1] / 1e3)
    mean_mbps = mean_bytes_per_s * 8.0 / 1e6
    return TraceNetworkProfile(
        name=name,
        uplink_mbps=uplink_mbps if uplink_mbps is not None else mean_mbps,
        downlink_mbps=mean_mbps,
        min_rtt_ms=min_rtt_ms,
        loss_rate=loss_rate,
        queue_ms=queue_ms,
        description=description or f"trace-driven ({len(stamps)} opportunities"
                                   f" over {stamps[-1]} ms)",
        downlink_trace_ms=stamps,
    )


# -- segment presets ---------------------------------------------------------

GEO_SAT = NetworkProfile(
    name="GEOSAT",
    uplink_mbps=2.0,
    downlink_mbps=20.0,
    min_rtt_ms=560.0,
    loss_rate=0.006,
    queue_ms=200.0,
    description="Geostationary satellite hop (one bent-pipe round trip)",
)

LAN = NetworkProfile(
    name="LAN",
    uplink_mbps=1000.0,
    downlink_mbps=1000.0,
    min_rtt_ms=1.0,
    loss_rate=0.0,
    queue_ms=20.0,
    description="Gigabit terrestrial segment behind the proxy",
)

#: The canonical PEP scenario: a satellite access hop in front of a fast
#: terrestrial segment — the topology where connection splitting helps.
SAT_LAN = segmented_profile(
    (GEO_SAT, LAN), name="SAT+LAN",
    description="GEO satellite access + gigabit LAN (split-proxy testbed)")

#: Named multi-segment presets resolvable via :func:`network_by_name`.
SEGMENTED_PRESETS: Tuple[SegmentedProfile, ...] = (SAT_LAN,)

_BY_NAME.update({p.name.upper(): p
                 for p in (GEO_SAT, LAN) + SEGMENTED_PRESETS})
