"""Composable in-path middleboxes: policers, shapers, and impairments.

The paper's testbed forwards packets untouched once they clear the
emulated bottleneck; real access paths rarely do. Inspired by lens3's
stackable ``NetLayer`` MITM lenses (see PAPERS.md), this module adds a
pluggable, *ordered* chain of middleboxes interposed between a link's
delivery (:class:`~repro.netem.link.EmulatedLink` /
:class:`~repro.netem.trace.TraceLink`) and the transport endpoint — and,
in a :class:`~repro.netem.path.SegmentedNetworkPath`, on every
:class:`~repro.netem.path.ForwardingNode` boundary, since each segment
builds its own chain instances.

Every box is a small pure transform over ``(now, Packet)`` returning
``[(deliver_at, Packet), ...]``: an empty list drops the packet, a
``deliver_at`` in the future holds it (the chain schedules one event and
resumes the remaining boxes there), multiple entries fan the packet out
(duplication, fragmentation). Boxes draw randomness **only** from the
condition's RNG tree — :func:`~repro.util.rng.spawn_rng` with the key
``("mbox", i, direction)`` under the path's subtree — so identical
conditions replay byte-identically, segment by segment.

Determinism contract:

* an **empty** chain is never constructed: the path wires the link's
  deliver callback straight to the endpoint, so ``middleboxes=[]`` is
  byte-identical to a path built before this module existed and
  ``SIM_BEHAVIOUR_VERSION`` needs no bump;
* a **non-empty** chain's configuration is hashed into the condition
  fingerprint (see :func:`~repro.testbed.harness.condition_fingerprint`),
  so every pre-existing fingerprint — and with it every cache entry and
  committed fixture — is untouched.

Specs (frozen dataclasses, hashable, JSON-roundtrippable) are separated
from the slotted mutable runtime boxes they :meth:`~MiddleboxSpec.build`,
mirroring the profile/link split: the spec is campaign-grid data, the
box is per-condition simulation state.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

import numpy as np

from repro.netem.engine import EventLoop
from repro.netem.packet import Packet
from repro.util.rng import spawn_rng
from repro.util.units import Mbps

#: One box emission: deliver ``Packet`` to the next stage at this time.
Emission = Tuple[float, Packet]

#: Traffic directions a box can apply to. ``up`` is client→server.
DIRECTIONS = ("up", "down", "both")

#: Pure ACKs are 40 bytes (TCP) / 50 bytes (QUIC); anything at or below
#: this rides the ACK path for the decimator's purposes.
PURE_ACK_MAX_BYTES = 50


# -- runtime boxes -----------------------------------------------------------


class Middlebox:
    """Base runtime box: a pure ``(now, Packet) -> [Emission]`` transform.

    Subclasses may keep private state (token levels, hold counters) but
    must never read wall-clock time or ambient RNGs — any randomness
    comes from the generator their spec's :meth:`~MiddleboxSpec.build`
    received out of the condition's RNG tree.
    """

    __slots__ = ()

    def process(self, now: float, packet: Packet) -> List[Emission]:
        raise NotImplementedError


class TokenBucketPolicer(Middlebox):
    """Drop packets exceeding a token-bucket rate/burst contract."""

    __slots__ = ("_rate", "_burst", "_tokens", "_last", "dropped", "passed")

    def __init__(self, rate_bytes_per_s: float, burst_bytes: int):
        self._rate = float(rate_bytes_per_s)
        self._burst = float(burst_bytes)
        self._tokens = float(burst_bytes)
        self._last = 0.0
        self.dropped = 0
        self.passed = 0

    def process(self, now: float, packet: Packet) -> List[Emission]:
        elapsed = max(0.0, now - self._last)
        self._last = max(self._last, now)
        self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
        if packet.size > self._tokens:
            self.dropped += 1
            return []
        self._tokens -= packet.size
        self.passed += 1
        return [(now, packet)]


class TrafficShaper(Middlebox):
    """Delay packets to conform to a rate; drop beyond a queue budget."""

    __slots__ = ("_rate", "_queue_bytes", "_next_free", "dropped", "shaped")

    def __init__(self, rate_bytes_per_s: float, queue_bytes: int):
        self._rate = float(rate_bytes_per_s)
        self._queue_bytes = float(queue_bytes)
        self._next_free = 0.0
        self.dropped = 0
        self.shaped = 0

    def process(self, now: float, packet: Packet) -> List[Emission]:
        start = max(now, self._next_free)
        backlog_bytes = (start - now) * self._rate
        if backlog_bytes + packet.size > self._queue_bytes:
            self.dropped += 1
            return []
        done = start + packet.size / self._rate
        self._next_free = done
        self.shaped += 1
        return [(done, packet)]


class JitterInjector(Middlebox):
    """Add uniform random delay in ``[0, jitter_s)`` to every packet."""

    __slots__ = ("_jitter", "_rng")

    def __init__(self, jitter_s: float, rng: np.random.Generator):
        self._jitter = float(jitter_s)
        self._rng = rng

    def process(self, now: float, packet: Packet) -> List[Emission]:
        return [(now + float(self._rng.random()) * self._jitter, packet)]


class ReorderInjector(Middlebox):
    """Hold a random subset of packets so later ones overtake them."""

    __slots__ = ("_probability", "_delay", "_rng", "held")

    def __init__(self, probability: float, delay_s: float,
                 rng: np.random.Generator):
        self._probability = float(probability)
        self._delay = float(delay_s)
        self._rng = rng
        self.held = 0

    def process(self, now: float, packet: Packet) -> List[Emission]:
        if float(self._rng.random()) < self._probability:
            self.held += 1
            return [(now + self._delay, packet)]
        return [(now, packet)]


class DuplicateInjector(Middlebox):
    """Emit an extra copy of a random subset of packets."""

    __slots__ = ("_probability", "_delay", "_rng", "duplicated")

    def __init__(self, probability: float, delay_s: float,
                 rng: np.random.Generator):
        self._probability = float(probability)
        self._delay = float(delay_s)
        self._rng = rng
        self.duplicated = 0

    def process(self, now: float, packet: Packet) -> List[Emission]:
        out: List[Emission] = [(now, packet)]
        if float(self._rng.random()) < self._probability:
            self.duplicated += 1
            out.append((now + self._delay, dataclasses.replace(packet)))
        return out


class FragmentPayload:
    """Payload wrapper a fragmented packet carries through later boxes.

    Every fragment of a group references the original packet; the chain
    exit delivers the original once all ``count`` fragments arrive, so a
    single fragment lost downstream (policer, shaper queue) loses the
    whole packet — which is exactly what path-MTU blackholes do to
    transports that never see an ICMP.
    """

    __slots__ = ("group", "index", "count", "original")

    def __init__(self, group: int, index: int, count: int,
                 original: Packet):
        self.group = group
        self.index = index
        self.count = count
        self.original = original


class MtuClamp(Middlebox):
    """Fragment packets larger than a clamp MTU into back-to-back parts.

    Each fragment after the first pays a store-and-forward gap, the way
    a fragmenting router serialises parts onto the wire — so a clamped
    packet's reassembly finishes ``(count - 1) * gap`` later than its
    un-clamped delivery would have.
    """

    __slots__ = ("_mtu", "_gap", "_next_group", "fragmented")

    def __init__(self, mtu_bytes: int, fragment_gap_s: float):
        self._mtu = int(mtu_bytes)
        self._gap = float(fragment_gap_s)
        self._next_group = 0
        self.fragmented = 0

    def process(self, now: float, packet: Packet) -> List[Emission]:
        if packet.size <= self._mtu:
            return [(now, packet)]
        self.fragmented += 1
        group = self._next_group
        self._next_group += 1
        count = math.ceil(packet.size / self._mtu)
        out: List[Emission] = []
        remaining = packet.size
        for index in range(count):
            size = min(self._mtu, remaining)
            remaining -= size
            out.append((now + index * self._gap, Packet(
                size=size,
                payload=FragmentPayload(group, index, count, packet),
                flow_id=packet.flow_id,
                sent_at=packet.sent_at,
            )))
        return out


class AckDecimator(Middlebox):
    """Deliver only every Nth pure ACK; data-bearing packets pass."""

    __slots__ = ("_keep_every", "_max_ack_bytes", "_count", "dropped")

    def __init__(self, keep_every: int, max_ack_bytes: int):
        self._keep_every = int(keep_every)
        self._max_ack_bytes = int(max_ack_bytes)
        self._count = 0
        self.dropped = 0

    def process(self, now: float, packet: Packet) -> List[Emission]:
        if packet.size > self._max_ack_bytes:
            return [(now, packet)]
        kept = self._count % self._keep_every == 0
        self._count += 1
        if kept:
            return [(now, packet)]
        self.dropped += 1
        return []


# -- specs -------------------------------------------------------------------


@dataclass(frozen=True)
class MiddleboxSpec:
    """Frozen, hashable configuration of one box (campaign-grid data).

    ``kind`` (a class attribute, not a field) names the box in JSON
    payloads and fingerprints; ``direction`` limits which of the path's
    two chains instantiates it.
    """

    kind = ""  # overridden per subclass

    direction: str = "both"

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"unknown middlebox direction {self.direction!r}; "
                f"expected one of {DIRECTIONS}")

    def applies_to(self, direction: str) -> bool:
        return self.direction in ("both", direction)

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable payload (joins condition fingerprints)."""
        return dict(dataclasses.asdict(self), kind=self.kind)

    def build(self, rng: np.random.Generator) -> Middlebox:
        """Instantiate the runtime box (``rng`` from the condition tree)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PolicerSpec(MiddleboxSpec):
    kind = "policer"

    rate_mbps: float = 2.0
    burst_bytes: int = 18_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rate_mbps <= 0 or self.burst_bytes <= 0:
            raise ValueError("policer rate and burst must be positive")

    def build(self, rng: np.random.Generator) -> Middlebox:
        return TokenBucketPolicer(Mbps(self.rate_mbps), self.burst_bytes)


@dataclass(frozen=True)
class ShaperSpec(MiddleboxSpec):
    kind = "shaper"

    rate_mbps: float = 1.5
    queue_bytes: int = 60_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rate_mbps <= 0 or self.queue_bytes <= 0:
            raise ValueError("shaper rate and queue must be positive")

    def build(self, rng: np.random.Generator) -> Middlebox:
        return TrafficShaper(Mbps(self.rate_mbps), self.queue_bytes)


@dataclass(frozen=True)
class JitterSpec(MiddleboxSpec):
    kind = "jitter"

    jitter_ms: float = 30.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.jitter_ms < 0:
            raise ValueError("jitter must be non-negative")

    def build(self, rng: np.random.Generator) -> Middlebox:
        return JitterInjector(self.jitter_ms / 1000.0, rng)


@dataclass(frozen=True)
class ReorderSpec(MiddleboxSpec):
    kind = "reorder"

    probability: float = 0.05
    delay_ms: float = 40.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("reorder probability must be in [0, 1]")
        if self.delay_ms <= 0:
            raise ValueError("reorder delay must be positive")

    def build(self, rng: np.random.Generator) -> Middlebox:
        return ReorderInjector(self.probability, self.delay_ms / 1000.0,
                               rng)


@dataclass(frozen=True)
class DuplicateSpec(MiddleboxSpec):
    kind = "duplicate"

    probability: float = 0.05
    delay_ms: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("duplicate probability must be in [0, 1]")
        if self.delay_ms < 0:
            raise ValueError("duplicate delay must be non-negative")

    def build(self, rng: np.random.Generator) -> Middlebox:
        return DuplicateInjector(self.probability, self.delay_ms / 1000.0,
                                 rng)


@dataclass(frozen=True)
class MtuClampSpec(MiddleboxSpec):
    kind = "mtu-clamp"

    mtu_bytes: int = 600
    fragment_gap_ms: float = 0.2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mtu_bytes < 80:
            raise ValueError("clamp MTU must be at least 80 bytes")
        if self.fragment_gap_ms < 0:
            raise ValueError("fragment gap must be non-negative")

    def build(self, rng: np.random.Generator) -> Middlebox:
        return MtuClamp(self.mtu_bytes, self.fragment_gap_ms / 1000.0)


@dataclass(frozen=True)
class AckDecimatorSpec(MiddleboxSpec):
    kind = "ack-decimate"

    direction: str = "up"
    keep_every: int = 4
    max_ack_bytes: int = PURE_ACK_MAX_BYTES

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.keep_every < 1:
            raise ValueError("keep_every must be at least 1")
        if self.max_ack_bytes < 1:
            raise ValueError("max_ack_bytes must be positive")

    def build(self, rng: np.random.Generator) -> Middlebox:
        return AckDecimator(self.keep_every, self.max_ack_bytes)


#: kind string → spec class (JSON round-trip registry).
SPEC_KINDS: Dict[str, Type[MiddleboxSpec]] = {
    spec.kind: spec
    for spec in (PolicerSpec, ShaperSpec, JitterSpec, ReorderSpec,
                 DuplicateSpec, MtuClampSpec, AckDecimatorSpec)
}


def spec_from_json(data: Dict[str, object]) -> MiddleboxSpec:
    """Rebuild one box spec from its :meth:`~MiddleboxSpec.describe`."""
    fields = dict(data)
    kind = str(fields.pop("kind", ""))
    cls = SPEC_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(SPEC_KINDS))
        raise ValueError(f"unknown middlebox kind {kind!r}; known: {known}")
    return cls(**fields)  # type: ignore[arg-type]


# -- chains ------------------------------------------------------------------


@dataclass(frozen=True)
class MiddleboxChainSpec:
    """A named, ordered tuple of box specs — one ``middleboxes`` axis value.

    Behaves like a network profile for grid purposes: resolvable by
    name (:func:`middleboxes_by_name`), hashable, and serialised in full
    into ``spec.json`` / condition fingerprints. An empty chain (the
    ``"none"`` preset) is falsy and never instantiated on a path.
    """

    name: str
    boxes: Tuple[MiddleboxSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.boxes)

    def describe(self) -> Dict[str, object]:
        return {"name": self.name,
                "boxes": [box.describe() for box in self.boxes]}


#: The default axis value: no chain, byte-identical to the pre-middlebox
#: simulator (and absent from condition fingerprints).
NO_MIDDLEBOXES = MiddleboxChainSpec(name="none")


def chain_from_json(data: Dict[str, object]) -> MiddleboxChainSpec:
    """Rebuild a chain spec from its :meth:`~MiddleboxChainSpec.describe`."""
    return MiddleboxChainSpec(
        name=str(data["name"]),
        boxes=tuple(spec_from_json(dict(entry))
                    for entry in list(data.get("boxes", []))),
    )


class MiddleboxChain:
    """Runtime chain: feeds a delivered packet through the boxes in order.

    Emissions due now continue inline (one call stack, no extra events);
    future emissions resume at their box index via one scheduled event,
    so every box observes monotonically non-decreasing time and the
    event-loop FIFO keeps equal-time deliveries in emission order.

    The chain exit reassembles :class:`FragmentPayload` groups: the
    original packet is delivered when the last fragment arrives, and a
    group missing any fragment never delivers (the transport's loss
    recovery takes it from there).
    """

    __slots__ = ("_loop", "_boxes", "_deliver", "_pending_fragments",
                 "delivered")

    def __init__(self, loop: EventLoop, boxes: Sequence[Middlebox],
                 deliver: Callable[[Packet], None]):
        if not boxes:
            raise ValueError(
                "empty middlebox chain: wire the endpoint directly "
                "(an empty chain must not exist on the packet path)")
        self._loop = loop
        self._boxes = tuple(boxes)
        self._deliver = deliver
        self._pending_fragments: Dict[int, int] = {}
        self.delivered = 0

    @property
    def boxes(self) -> Tuple[Middlebox, ...]:
        return self._boxes

    def __call__(self, packet: Packet) -> None:
        self._feed(0, packet)

    def _feed(self, index: int, packet: Packet) -> None:
        if index == len(self._boxes):
            self._exit(packet)
            return
        now = self._loop.now
        for when, emitted in self._boxes[index].process(now, packet):
            if when <= now:
                self._feed(index + 1, emitted)
            else:
                self._loop.call_at(
                    when,
                    lambda nxt=index + 1, pkt=emitted: self._feed(nxt, pkt))

    def _exit(self, packet: Packet) -> None:
        payload = packet.payload
        if type(payload) is FragmentPayload:
            remaining = self._pending_fragments.pop(payload.group,
                                                    payload.count)
            remaining -= 1
            if remaining:
                self._pending_fragments[payload.group] = remaining
                return
            packet = payload.original
        self.delivered += 1
        self._deliver(packet)


def build_chain(
    loop: EventLoop,
    chain: MiddleboxChainSpec,
    deliver: Callable[[Packet], None],
    *,
    seed: int,
    rng_key: Tuple[object, ...] = (),
    direction: str,
) -> Optional[MiddleboxChain]:
    """Instantiate ``chain`` for one direction of one path (or segment).

    Returns ``None`` when no box applies to ``direction`` — the caller
    must then wire ``deliver`` directly, keeping the packet path free of
    pass-through frames. Box ``i`` draws from the RNG subtree
    ``(*rng_key, "mbox", i, direction)``, so chains on different
    segments (and directions) of one condition are independent streams
    of the same seed.
    """
    if direction not in ("up", "down"):
        raise ValueError(
            f"chain direction must be 'up' or 'down', got {direction!r}")
    boxes = [
        spec.build(spawn_rng(seed, *rng_key, "mbox", i, direction))
        for i, spec in enumerate(chain.boxes)
        if spec.applies_to(direction)
    ]
    if not boxes:
        return None
    return MiddleboxChain(loop, boxes, deliver)


# -- presets -----------------------------------------------------------------

#: Named chain presets, resolvable like Table 2 network profiles. Each
#: single-box preset uses the spec's defaults; ``adversarial`` stacks
#: the three impairment injectors the clean profiles never exercise.
MIDDLEBOX_PRESETS: Tuple[MiddleboxChainSpec, ...] = (
    NO_MIDDLEBOXES,
    MiddleboxChainSpec("policer", (PolicerSpec(direction="down"),)),
    MiddleboxChainSpec("shaper", (ShaperSpec(direction="down"),)),
    MiddleboxChainSpec("jitter", (JitterSpec(),)),
    MiddleboxChainSpec("reorder", (ReorderSpec(direction="down"),)),
    MiddleboxChainSpec("duplicate", (DuplicateSpec(direction="down"),)),
    MiddleboxChainSpec("mtu-clamp", (MtuClampSpec(),)),
    MiddleboxChainSpec("ack-decimate", (AckDecimatorSpec(),)),
    MiddleboxChainSpec("adversarial", (
        ReorderSpec(direction="down"),
        DuplicateSpec(direction="down"),
        JitterSpec(jitter_ms=10.0),
    )),
)

_PRESETS_BY_NAME: Dict[str, MiddleboxChainSpec] = {
    chain.name: chain for chain in MIDDLEBOX_PRESETS
}


def middleboxes_by_name(name: str) -> MiddleboxChainSpec:
    """Look up a named middlebox chain preset, case-insensitive."""
    try:
        return _PRESETS_BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_PRESETS_BY_NAME))
        raise KeyError(
            f"unknown middlebox chain {name!r}; known: {known}") from None


#: A middleboxes axis value: a preset name, a full chain spec, or a bare
#: sequence of box specs (named after its box kinds).
MiddleboxesLike = Union[str, MiddleboxChainSpec, Sequence[MiddleboxSpec]]


def resolve_middleboxes(value: Optional[MiddleboxesLike]) \
        -> MiddleboxChainSpec:
    """Accept a preset name, chain spec, or sequence of box specs."""
    if value is None:
        return NO_MIDDLEBOXES
    if isinstance(value, MiddleboxChainSpec):
        return value
    if isinstance(value, str):
        return middleboxes_by_name(value)
    boxes = tuple(value)
    if not boxes:
        return NO_MIDDLEBOXES
    for box in boxes:
        if not isinstance(box, MiddleboxSpec):
            raise TypeError(
                f"middlebox chain entries must be MiddleboxSpec "
                f"instances, got {type(box).__name__}")
    return MiddleboxChainSpec(name="+".join(box.kind for box in boxes),
                              boxes=boxes)
