"""Subject groups and participant behaviour.

Three groups (Section 4.1):

* **Lab** — supervised; diligent by construction (the supervisor checks
  that videos are watched), replays videos the most.
* **µWorker** — paid crowdworkers; a sizeable fraction rushes or cheats
  (votes before the first visual change, loses window focus, fails the
  control video/question), matching the heavy attrition in Table 3.
* **Internet** — volunteers recruited on social media; fewer outright
  cheaters than paid workers but noisy, heavy-tailed votes (their score
  distribution is not normal, which is why the paper falls back to the
  median for this group and ultimately excludes it).

Rule-violation probabilities are calibrated to reproduce the Table 3
funnel in expectation; they are *behaviour generation* parameters — the
filter implementation detects the planted behaviour from the session
event logs, it never reads these flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class ViolationRates:
    """Per-session probabilities of violating each filter rule."""

    not_played: float = 0.0        # R1
    stalled: float = 0.0           # R2 (technical, not cheating)
    focus_loss: float = 0.0        # R3
    vote_before_fvc: float = 0.0   # R4
    overtime: float = 0.0          # R5
    control_video_wrong: float = 0.0    # R6
    control_question_wrong: float = 0.0  # R7


@dataclass(frozen=True)
class GroupBehavior:
    """Static description of one subject group."""

    name: str
    #: Raw participants entering each study (Table 3 '-' column).
    participants_ab: int
    participants_rating: int
    #: Mean decision time added on top of watching the video (seconds).
    decision_time_ab: float
    decision_time_rating: float
    #: Poisson rate of replays for hard (low-evidence) comparisons.
    replay_rate: float
    #: Extra vote noise multiplier relative to the lab group.
    noise_multiplier: float
    #: Heavy-tailed votes (Student-t) instead of Gaussian noise.
    heavy_tailed: bool
    #: Violation rates per study.
    violations_ab: ViolationRates
    violations_rating: ViolationRates
    #: Demographics (Section 4.2).
    male_share: float
    age_groups: Tuple[Tuple[str, float], ...]

    def violations(self, study: str) -> ViolationRates:
        if study == "ab":
            return self.violations_ab
        if study == "rating":
            return self.violations_rating
        raise KeyError(f"unknown study {study!r}")


# Violation rates are the conditional attrition ratios of Table 3.
LAB = GroupBehavior(
    name="lab",
    participants_ab=35,
    participants_rating=35,
    decision_time_ab=6.5,
    decision_time_rating=8.0,
    replay_rate=0.9,
    noise_multiplier=1.0,
    heavy_tailed=False,
    violations_ab=ViolationRates(),
    violations_rating=ViolationRates(),
    male_share=0.78,
    age_groups=(("18-24", 0.60), ("25-44", 0.30), ("45+", 0.10)),
)

MICROWORKER = GroupBehavior(
    name="microworker",
    participants_ab=487,
    participants_rating=1563,
    decision_time_ab=4.0,
    decision_time_rating=5.0,
    replay_rate=0.45,
    noise_multiplier=1.25,
    heavy_tailed=False,
    violations_ab=ViolationRates(
        not_played=0.033, stalled=0.064, focus_loss=0.195,
        vote_before_fvc=0.245, overtime=0.002,
        control_video_wrong=0.108, control_question_wrong=0.025,
    ),
    violations_rating=ViolationRates(
        not_played=0.044, stalled=0.116, focus_loss=0.217,
        vote_before_fvc=0.291, overtime=0.014,
        control_video_wrong=0.086, control_question_wrong=0.066,
    ),
    male_share=0.77,
    age_groups=(("18-24", 0.20), ("25-44", 0.66), ("45+", 0.14)),
)

INTERNET = GroupBehavior(
    name="internet",
    participants_ab=218,
    participants_rating=209,
    decision_time_ab=5.0,
    decision_time_rating=6.5,
    replay_rate=0.6,
    noise_multiplier=1.5,
    heavy_tailed=True,
    violations_ab=ViolationRates(
        not_played=0.005, stalled=0.032, focus_loss=0.067,
        vote_before_fvc=0.128, overtime=0.006,
        control_video_wrong=0.065, control_question_wrong=0.025,
    ),
    violations_rating=ViolationRates(
        not_played=0.024, stalled=0.049, focus_loss=0.113,
        vote_before_fvc=0.116, overtime=0.007,
        control_video_wrong=0.073, control_question_wrong=0.014,
    ),
    male_share=0.76,
    age_groups=(("18-24", 0.55), ("25-44", 0.35), ("45+", 0.10)),
)

GROUPS: Dict[str, GroupBehavior] = {
    "lab": LAB,
    "microworker": MICROWORKER,
    "internet": INTERNET,
}


@dataclass
class Participant:
    """One simulated participant with stable personal traits."""

    participant_id: int
    group: GroupBehavior
    rng: np.random.Generator
    jnd_threshold: float = field(init=False)
    rating_bias: float = field(init=False)
    diligence: float = field(init=False)
    gender: str = field(init=False)
    age_group: str = field(init=False)

    def __post_init__(self) -> None:
        # Traits are drawn once per participant from population priors.
        self.jnd_threshold = max(
            0.05, float(self.rng.normal(0.35, 0.12))
        )
        self.rating_bias = float(self.rng.normal(0.0, 4.0))
        self.diligence = float(self.rng.beta(5, 1.5))
        self.gender = "male" if self.rng.random() < self.group.male_share \
            else "female"
        groups, weights = zip(*self.group.age_groups)
        self.age_group = str(
            self.rng.choice(list(groups), p=np.array(weights) / sum(weights))
        )

    def replay_count(self, evidence_magnitude: float,
                     network: str) -> int:
        """Replays before answering: harder comparisons get replayed.

        The paper observed more replays on *faster* networks regardless of
        group — differences there are harder to spot.
        """
        difficulty = 1.0 / (1.0 + 2.0 * evidence_magnitude)
        fast_bonus = 1.3 if network in ("DSL", "LTE") else 0.7
        lam = self.group.replay_rate * difficulty * fast_bonus
        return int(self.rng.poisson(lam))

    @classmethod
    def from_traits(
        cls,
        participant_id: int,
        group: GroupBehavior,
        jnd_threshold: float,
        rating_bias: float,
        diligence: float,
        gender: str,
        age_group: str,
    ) -> "Participant":
        """Construct from pre-drawn traits (the vectorized engine path).

        The returned participant carries no RNG: all of its stochastic
        behaviour was already realised as block draws.
        """
        participant = object.__new__(cls)
        participant.participant_id = participant_id
        participant.group = group
        participant.rng = None
        participant.jnd_threshold = float(jnd_threshold)
        participant.rating_bias = float(rating_bias)
        participant.diligence = float(diligence)
        participant.gender = gender
        participant.age_group = age_group
        return participant


@dataclass(slots=True)
class TraitBlock:
    """Stable personal traits of one participant block, as arrays.

    Column ``i`` holds participant ``start + i`` of the block. Drawn in
    one fixed sequence per block (see :mod:`repro.study.engine` for the
    draw contract), so the scalar reference path and the vectorized path
    consume identical values.
    """

    jnd_threshold: np.ndarray
    rating_bias: np.ndarray
    diligence: np.ndarray
    male: np.ndarray
    age_index: np.ndarray
    age_names: Tuple[str, ...]

    @property
    def size(self) -> int:
        return int(self.jnd_threshold.size)

    def participant(self, start: int, row: int,
                    group: GroupBehavior) -> Participant:
        """Materialize one row as a :class:`Participant`."""
        return Participant.from_traits(
            participant_id=start + row,
            group=group,
            jnd_threshold=self.jnd_threshold[row],
            rating_bias=self.rating_bias[row],
            diligence=self.diligence[row],
            gender="male" if self.male[row] else "female",
            age_group=self.age_names[int(self.age_index[row])],
        )


def draw_trait_block(rng: np.random.Generator, group: GroupBehavior,
                     size: int) -> TraitBlock:
    """Draw the population priors for ``size`` participants at once.

    Same priors as :meth:`Participant.__post_init__`, but one batched
    draw per trait instead of five scalar draws per participant. The age
    group is realised as an inverse-CDF lookup on a single uniform.
    """
    jnd = np.maximum(0.05, rng.normal(0.35, 0.12, size))
    bias = rng.normal(0.0, 4.0, size)
    diligence = rng.beta(5.0, 1.5, size)
    male = rng.random(size) < group.male_share
    names, weights = zip(*group.age_groups)
    cumulative = np.cumsum(np.asarray(weights, dtype=float)
                           / float(sum(weights)))
    age_index = np.minimum(
        np.searchsorted(cumulative, rng.random(size), side="right"),
        len(names) - 1,
    )
    return TraitBlock(
        jnd_threshold=jnd,
        rating_bias=bias,
        diligence=diligence,
        male=male,
        age_index=age_index,
        age_names=tuple(str(name) for name in names),
    )
