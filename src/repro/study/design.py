"""Study designs: conditions, contexts, scales and per-group video counts.

Section 4 of the paper:

* **A/B study**: two recordings of the same website over the same network
  but different stacks, side by side; answer "left/right/no difference"
  plus a confidence rating.
* **Rating study**: one recording; rate loading-speed satisfaction and
  loading-process quality on a 7-point linear scale (ITU-T P.851 labels)
  mapped to 10..70 with granularity 1. Contexts: at work / in your free
  time (DSL+LTE videos) and on a plane (DA2GC+MSS videos).

Video counts per group (Section 4.1): Lab 28 A/B and 11+11+5 rating;
µWorker 26 and 11+11+5; Internet 14 and 6+6+3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.netem.profiles import NETWORKS
from repro.transport.config import AB_PAIRS, STACKS
from repro.web.corpus import CORPUS_SITE_NAMES, LAB_SITE_NAMES

#: The seven-point linear scale, mapped to 10..70 (ITU-T P.851 [8]).
SCALE_LABELS = (
    "extremely bad", "bad", "poor", "fair", "good", "excellent", "ideal",
)
SCALE_MIN = 10
SCALE_MAX = 70


def scale_label(score: float) -> str:
    """Nearest label for a 10..70 score."""
    index = int(round((min(max(score, SCALE_MIN), SCALE_MAX) - 10) / 10))
    return SCALE_LABELS[index]


#: Rating-study environments and the networks whose videos they show.
CONTEXTS: Dict[str, Tuple[str, ...]] = {
    "work": ("DSL", "LTE"),
    "free_time": ("DSL", "LTE"),
    "plane": ("DA2GC", "MSS"),
}

#: Videos shown per group in the A/B study.
AB_VIDEO_COUNTS: Dict[str, int] = {
    "lab": 28,
    "microworker": 26,
    "internet": 14,
}

#: Videos shown per group and context in the rating study.
RATING_VIDEO_COUNTS: Dict[str, Dict[str, int]] = {
    "lab": {"work": 11, "free_time": 11, "plane": 5},
    "microworker": {"work": 11, "free_time": 11, "plane": 5},
    "internet": {"work": 6, "free_time": 6, "plane": 3},
}

#: Raw participation per group and study (Table 3, '-' column).
PARTICIPATION: Dict[str, Dict[str, int]] = {
    "lab": {"ab": 35, "rating": 35},
    "microworker": {"ab": 487, "rating": 1563},
    "internet": {"ab": 218, "rating": 209},
}


@dataclass(frozen=True)
class AbCondition:
    """One side-by-side comparison: same site and network, two stacks."""

    website: str
    network: str
    stack_a: str
    stack_b: str

    @property
    def pair_label(self) -> str:
        return f"{self.stack_a} vs. {self.stack_b}"

    @property
    def key(self) -> Tuple[str, str, str, str]:
        return (self.website, self.network, self.stack_a, self.stack_b)


@dataclass(frozen=True)
class RatingCondition:
    """One single-stimulus video."""

    website: str
    network: str
    stack: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.website, self.network, self.stack)


@dataclass
class StudyPlan:
    """Condition pools for both studies.

    ``sites`` restricts the corpus (the lab group is always further
    restricted to the five lab domains, mirroring Section 4.1).
    """

    sites: Sequence[str] = field(default_factory=lambda: CORPUS_SITE_NAMES)
    networks: Sequence[str] = field(
        default_factory=lambda: tuple(p.name for p in NETWORKS)
    )
    stacks: Sequence[str] = field(
        default_factory=lambda: tuple(s.name for s in STACKS)
    )
    pairs: Sequence[Tuple[str, str]] = field(
        default_factory=lambda: tuple((a.name, b.name) for a, b in AB_PAIRS)
    )

    def sites_for_group(self, group: str) -> List[str]:
        if group == "lab":
            return [s for s in self.sites if s in LAB_SITE_NAMES] or \
                list(LAB_SITE_NAMES)
        return list(self.sites)

    # -- pools ----------------------------------------------------------------

    def ab_pool(self, group: str) -> List[AbCondition]:
        """All A/B conditions available to a group."""
        pool: List[AbCondition] = []
        for site in self.sites_for_group(group):
            for network in self.networks:
                for stack_a, stack_b in self.pairs:
                    pool.append(AbCondition(site, network, stack_a, stack_b))
        return pool

    def rating_pool(self, group: str, context: str) -> List[RatingCondition]:
        """All rating conditions available to a group in one context."""
        if context not in CONTEXTS:
            raise KeyError(f"unknown context {context!r}")
        networks = [n for n in CONTEXTS[context] if n in self.networks]
        pool: List[RatingCondition] = []
        for site in self.sites_for_group(group):
            for network in networks:
                for stack in self.stacks:
                    pool.append(RatingCondition(site, network, stack))
        return pool

    # -- recording requirements ----------------------------------------------------

    def required_recordings(self) -> List[Tuple[str, str, str]]:
        """Every (site, network, stack) the studies may show."""
        needed = set()
        for site in self.sites:
            for network in self.networks:
                for stack in self.stacks:
                    needed.add((site, network, stack))
        return sorted(needed)
