"""Full campaign orchestration: both studies, all three groups.

One call reproduces the complete data collection of the paper: the lab,
µWorker and Internet groups each run the A/B and the rating study, the
R1-R7 filters produce the Table 3 funnel, and the filtered sessions feed
the Figure 3-6 analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.study.ab import AbSession, AbStudyResult, run_ab_study
from repro.study.design import StudyPlan
from repro.study.filtering import FilterFunnel, apply_filters
from repro.study.participants import GROUPS
from repro.study.perception import DEFAULT_PARAMS, PerceptionParams
from repro.study.rating import RatingSession, RatingStudyResult, run_rating_study
from repro.testbed.harness import Testbed

GROUP_ORDER = ("lab", "microworker", "internet")


@dataclass
class CampaignResult:
    """Everything the paper's evaluation section consumes."""

    plan: StudyPlan
    ab: Dict[str, AbStudyResult]
    rating: Dict[str, RatingStudyResult]
    ab_filtered: Dict[str, List[AbSession]]
    rating_filtered: Dict[str, List[RatingSession]]
    funnels: List[FilterFunnel]

    def funnel(self, group: str, study: str) -> FilterFunnel:
        for funnel in self.funnels:
            if funnel.group == group and funnel.study == study:
                return funnel
        raise KeyError(f"no funnel for {group}/{study}")


def run_campaign(
    testbed: Testbed,
    plan: Optional[StudyPlan] = None,
    seed: int = 0,
    participants_scale: float = 1.0,
    params: PerceptionParams = DEFAULT_PARAMS,
    groups: Tuple[str, ...] = GROUP_ORDER,
) -> CampaignResult:
    """Run the complete measurement campaign.

    ``participants_scale`` scales every group's Table 3 participation
    (e.g. 0.2 for a fast smoke campaign). The lab group is never scaled
    below 10 participants so its confidence intervals stay meaningful.
    """
    if participants_scale <= 0:
        raise ValueError("participants_scale must be positive")
    plan = plan if plan is not None else StudyPlan()

    ab_results: Dict[str, AbStudyResult] = {}
    rating_results: Dict[str, RatingStudyResult] = {}
    ab_filtered: Dict[str, List[AbSession]] = {}
    rating_filtered: Dict[str, List[RatingSession]] = {}
    funnels: List[FilterFunnel] = []

    for group in groups:
        behavior = GROUPS[group]
        n_ab = scaled_participants(behavior.participants_ab,
                                   participants_scale, group)
        n_rating = scaled_participants(behavior.participants_rating,
                                       participants_scale, group)

        ab_result = run_ab_study(testbed, group, plan,
                                 participants=n_ab, seed=seed, params=params)
        kept_ab, funnel_ab = apply_filters(ab_result.sessions, group, "ab")
        ab_results[group] = ab_result
        ab_filtered[group] = kept_ab
        funnels.append(funnel_ab)

        rating_result = run_rating_study(testbed, group, plan,
                                         participants=n_rating, seed=seed,
                                         params=params)
        kept_rating, funnel_rating = apply_filters(
            rating_result.sessions, group, "rating")
        rating_results[group] = rating_result
        rating_filtered[group] = kept_rating
        funnels.append(funnel_rating)

    return CampaignResult(
        plan=plan,
        ab=ab_results,
        rating=rating_results,
        ab_filtered=ab_filtered,
        rating_filtered=rating_filtered,
        funnels=funnels,
    )


def scaled_participants(count: int, scale: float, group: str) -> int:
    """Scaled participation for one group.

    Only the supervised lab group is floored at 10 participants (its
    confidence intervals must stay meaningful); µWorker and Internet
    smoke campaigns scale all the way down, so a tiny ``scale`` no
    longer silently inflates their funnels.
    """
    scaled = max(1, int(round(count * scale)))
    if group == "lab":
        return max(10, scaled)
    return scaled


#: Backwards-compatible alias for the pre-fix helper (lab floor only).
def _scaled(count: int, scale: float, group: str = "lab") -> int:
    return scaled_participants(count, scale, group)


#: The paper's Table 3 reference values, for side-by-side reports.
PAPER_TABLE3: Dict[Tuple[str, str], List[int]] = {
    ("lab", "ab"): [35, 35, 35, 35, 35, 35, 35, 35],
    ("lab", "rating"): [35, 35, 35, 35, 35, 35, 35, 35],
    ("microworker", "ab"): [487, 471, 441, 355, 268, 268, 239, 233],
    ("microworker", "rating"): [1563, 1494, 1321, 1034, 733, 723, 661, 614],
    ("internet", "ab"): [218, 217, 210, 196, 171, 170, 159, 155],
    ("internet", "rating"): [209, 204, 194, 172, 152, 151, 140, 138],
}
