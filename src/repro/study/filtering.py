"""Conformance filtering: rules R1-R7 and the Table 3 funnel.

The paper removes a session when (Section 4.1):

* **R1** — a video in the study has not been played;
* **R2** — a video has stalled;
* **R3** — a focus-loss event longer than 10 s occurred;
* **R4** — a vote was placed before the first visual change;
* **R5** — the study took longer than 25 min or a question longer than
  2 min;
* **R6** — the randomly placed control video was answered wrong;
* **R7** — a control question (browser-frame colour) was answered wrong.

Filters are applied in order; Table 3 reports the surviving participant
count after each rule, which :class:`FilterFunnel` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.study.session import (
    FOCUS_LOSS_LIMIT,
    QUESTION_DURATION_LIMIT,
    STUDY_DURATION_LIMIT,
    SessionEvents,
)


def _r1(events: SessionEvents) -> bool:
    return not events.all_videos_played


def _r2(events: SessionEvents) -> bool:
    return events.any_video_stalled


def _r3(events: SessionEvents) -> bool:
    return events.max_focus_loss_s > FOCUS_LOSS_LIMIT


def _r4(events: SessionEvents) -> bool:
    return events.any_vote_before_fvc


def _r5(events: SessionEvents) -> bool:
    return (events.total_duration_s > STUDY_DURATION_LIMIT
            or events.max_question_duration_s > QUESTION_DURATION_LIMIT)


def _r6(events: SessionEvents) -> bool:
    return not events.control_video_correct


def _r7(events: SessionEvents) -> bool:
    return not events.control_questions_correct


#: (rule name, description, violation predicate) in application order.
FILTER_RULES: Tuple[Tuple[str, str, Callable[[SessionEvents], bool]], ...] = (
    ("R1", "a video in the study has not been played", _r1),
    ("R2", "a video has stalled", _r2),
    ("R3", "focus loss longer than 10 s", _r3),
    ("R4", "a vote was placed before the FVC", _r4),
    ("R5", "study longer than 25 min or question longer than 2 min", _r5),
    ("R6", "control video answered wrong", _r6),
    ("R7", "control question answered wrong", _r7),
)


@dataclass
class FilterFunnel:
    """Survivor counts after each rule (one Table 3 row)."""

    group: str
    study: str
    initial: int
    after_rule: List[int] = field(default_factory=list)

    @property
    def final(self) -> int:
        return self.after_rule[-1] if self.after_rule else self.initial

    def as_row(self) -> List[int]:
        """[initial, after R1, ..., after R7] — the Table 3 format."""
        return [self.initial] + list(self.after_rule)

    def removed_by_rule(self) -> List[int]:
        counts = []
        previous = self.initial
        for survivors in self.after_rule:
            counts.append(previous - survivors)
            previous = survivors
        return counts


def apply_filters(sessions: Sequence, group: str = "",
                  study: str = "") -> Tuple[List, FilterFunnel]:
    """Filter sessions with R1-R7 in order.

    ``sessions`` must expose an ``events`` attribute. Returns the
    surviving sessions and the funnel with per-rule survivor counts.
    """
    funnel = FilterFunnel(group=group, study=study, initial=len(sessions))
    survivors = list(sessions)
    for _, _, violates in FILTER_RULES:
        survivors = [s for s in survivors if not violates(s.events)]
        funnel.after_rule.append(len(survivors))
    return survivors, funnel


def funnel_from_flags(flags: np.ndarray, group: str = "",
                      study: str = "") -> Tuple[np.ndarray, FilterFunnel]:
    """Vectorized R1-R7 funnel over a ``(7, n)`` violation-flag block.

    The session event logs are realised such that rule ``Ri`` fires
    exactly when violation flag ``i`` of the plan is set (see
    :func:`repro.study.session.events_from_draws`), so the funnel is a
    pure function of the flags. Returns the survivor mask and the
    funnel; used by the streaming pipeline, which never materializes
    session objects.
    """
    if flags.shape[0] != len(FILTER_RULES):
        raise ValueError(
            f"expected {len(FILTER_RULES)} flag rows, got {flags.shape[0]}")
    n = int(flags.shape[1])
    funnel = FilterFunnel(group=group, study=study, initial=n)
    alive = np.ones(n, dtype=bool)
    for row in flags:
        alive &= ~row
        funnel.after_rule.append(int(alive.sum()))
    return alive, funnel
