"""User-study simulation: the paper's two QoE studies.

The human studies themselves are irreproducible, so this package replaces
the participants with psychometric models (documented and calibrated in
:mod:`repro.study.perception`) while keeping every other part of the
paper's pipeline real: the study designs and video counts
(:mod:`repro.study.design`), the three subject groups with their
behavioural quirks (:mod:`repro.study.participants`), the questionnaire
event logs (:mod:`repro.study.session`) and the seven conformance filter
rules R1-R7 (:mod:`repro.study.filtering`).
"""

from repro.study.ab import AbSession, AbStudyResult, AbTrial, run_ab_study
from repro.study.engine import (
    STUDY_BLOCK,
    AbEngine,
    ConditionStats,
    RatingEngine,
    TestbedLookup,
    condition_stats,
)
from repro.study.pipeline import (
    ConditionIndex,
    StudyIndex,
    StudyPartial,
    StudyReport,
    build_partial,
    build_report,
    merge_partials,
)
from repro.study.design import (
    AB_VIDEO_COUNTS,
    CONTEXTS,
    RATING_VIDEO_COUNTS,
    SCALE_LABELS,
    AbCondition,
    RatingCondition,
    StudyPlan,
)
from repro.study.filtering import FILTER_RULES, FilterFunnel, apply_filters
from repro.study.participants import GROUPS, GroupBehavior, Participant
from repro.study.rating import (
    RatingSession,
    RatingStudyResult,
    RatingTrial,
    run_rating_study,
)

__all__ = [
    "StudyPlan",
    "AbCondition",
    "RatingCondition",
    "CONTEXTS",
    "SCALE_LABELS",
    "AB_VIDEO_COUNTS",
    "RATING_VIDEO_COUNTS",
    "run_ab_study",
    "run_rating_study",
    "AbStudyResult",
    "RatingStudyResult",
    "AbSession",
    "RatingSession",
    "AbTrial",
    "RatingTrial",
    "apply_filters",
    "FilterFunnel",
    "FILTER_RULES",
    "GROUPS",
    "GroupBehavior",
    "Participant",
    "STUDY_BLOCK",
    "AbEngine",
    "RatingEngine",
    "ConditionStats",
    "condition_stats",
    "TestbedLookup",
    "ConditionIndex",
    "StudyPartial",
    "StudyIndex",
    "StudyReport",
    "build_partial",
    "build_report",
    "merge_partials",
]
