"""Scalar reference path of the study engine.

The per-vote counterpart of the vectorized kernels in
:mod:`repro.study.engine`: it consumes the *same* block draws and walks
them one trial at a time with plain Python branching — the readable
specification of the vote logic, and the "before" baseline of the
``study_throughput`` benchmark.

Both paths must produce **exactly** equal blocks (bit-identical floats);
``tests/test_study_equivalence.py`` pins this. To keep that guarantee
cheap to maintain, every transcendental (the psychometric logistic, the
confusion exponential, the opinion curve, the log-normal decision time)
is evaluated through the shared numpy kernels here too — only the
per-trial arithmetic, comparisons and branching are scalar, which is
exactly the part the vectorized path replaces.
"""

from __future__ import annotations

import numpy as np

from repro.study.engine import (
    ANSWER_LEFT,
    ANSWER_SAME,
    AbBlock,
    AbDraws,
    AbEngine,
    RatingBlock,
    RatingDraws,
    RatingEngine,
    VOTE_A,
    VOTE_B,
    VOTE_SAME,
)
from repro.study.perception import detection_probability_np, quantize_score
from repro.study.session import rusher_mask


def _vote_from_answer(answer: int, left_is_a: bool) -> int:
    """Screen-coordinate answer -> condition-coordinate vote."""
    if answer == ANSWER_SAME:
        return VOTE_SAME
    return VOTE_A if (answer == ANSWER_LEFT) == left_is_a else VOTE_B


def _answer_from_vote(vote: int, left_is_a: bool) -> int:
    if vote == VOTE_SAME:
        return ANSWER_SAME
    return ANSWER_LEFT if (vote == VOTE_A) == left_is_a \
        else 1 - ANSWER_LEFT


def compute_ab_block_reference(draws: AbDraws, engine: AbEngine) -> AbBlock:
    """One-vote-at-a-time A/B computation over shared block draws."""
    params = engine.params
    n, videos = draws.indices.shape
    rusher = rusher_mask(draws.flags)
    left_is_a = draws.left_u < 0.5

    # Shared transcendental kernels (see module docstring).
    p_detect = detection_probability_np(
        engine.magnitude[draws.indices],
        draws.traits.jnd_threshold[:, None], params)
    decision = np.exp(np.log(engine.behavior.decision_time_ab)
                      + draws.decision_noise)

    votes = np.empty((n, videos), dtype=np.int8)
    answers = np.empty((n, videos), dtype=np.int8)
    confidence = np.empty((n, videos), dtype=float)
    replays = np.empty((n, videos), dtype=draws.replays.dtype)
    durations = np.empty((n, videos), dtype=float)

    for i in range(n):
        for j in range(videos):
            index = int(draws.indices[i, j])
            left_a = bool(left_is_a[i, j])
            if rusher[i]:
                answer = int(draws.rush_answer[i, j])
                votes[i, j] = _vote_from_answer(answer, left_a)
                answers[i, j] = answer
                confidence[i, j] = draws.rush_conf[i, j]
                replays[i, j] = 0
                durations[i, j] = 1.0 + 3.0 * draws.rush_dur_u[i, j]
                continue

            if draws.detect_u[i, j] < p_detect[i, j]:
                confused = draws.confuse_u[i, j] < engine.p_confusion[index]
                vote = VOTE_A if (engine.signed[index] > 0) != confused \
                    else VOTE_B
                conf = max(0.0, min(
                    1.0,
                    0.4 + 0.5 * engine.magnitude[index]
                    + draws.conf_noise[i, j]))
            elif draws.same_u[i, j] < params.undetected_same_prob:
                vote = VOTE_SAME
                conf = 0.3 + 0.4 * draws.conf_u[i, j]
            else:
                vote = VOTE_A if draws.guess_u[i, j] < 0.5 else VOTE_B
                conf = 0.4 * draws.conf_u[i, j]

            votes[i, j] = vote
            answers[i, j] = _answer_from_vote(vote, left_a)
            confidence[i, j] = conf
            replays[i, j] = draws.replays[i, j]
            durations[i, j] = engine.video_len[index] \
                * (1 + draws.replays[i, j]) + decision[i, j]

    return AbBlock(
        start=draws.start, traits=draws.traits, flags=draws.flags,
        rusher=rusher, indices=draws.indices, left_is_a=left_is_a,
        votes=votes, answers=answers, confidence=confidence,
        replays=replays, durations=durations, events=draws.events,
    )


def compute_rating_block_reference(draws: RatingDraws,
                                   engine: RatingEngine) -> RatingBlock:
    """One-vote-at-a-time rating computation over shared block draws."""
    params = engine.params
    rusher = rusher_mask(draws.flags)
    n = draws.traits.size

    # Shared per-condition tables and transcendental kernels.
    base = np.concatenate(
        [table.base[idx]
         for table, idx in zip(engine.tables, draws.indices)], axis=1)
    stall = np.concatenate(
        [table.stall[idx]
         for table, idx in zip(engine.tables, draws.indices)], axis=1)
    video_len = np.concatenate(
        [table.video_len[idx]
         for table, idx in zip(engine.tables, draws.indices)], axis=1)
    decision = np.exp(np.log(engine.behavior.decision_time_rating)
                      + draws.decision_noise)

    videos = base.shape[1]
    speed = np.empty((n, videos), dtype=float)
    quality = np.empty((n, videos), dtype=float)
    replays = np.empty((n, videos), dtype=draws.replays.dtype)
    durations = np.empty((n, videos), dtype=float)

    for i in range(n):
        bias = draws.traits.rating_bias[i]
        for j in range(videos):
            if rusher[i]:
                speed[i, j] = float(draws.rush_speed[i, j])
                quality[i, j] = float(draws.rush_quality[i, j])
                replays[i, j] = 0
                durations[i, j] = 1.0 + 3.0 * draws.rush_dur_u[i, j]
                continue
            raw_speed = base[i, j] + bias + draws.speed_noise[i, j]
            raw_quality = base[i, j] + bias \
                - params.quality_stall_penalty * stall[i, j] \
                + draws.quality_noise[i, j]
            speed[i, j] = float(quantize_score(raw_speed))
            quality[i, j] = float(quantize_score(raw_quality))
            replays[i, j] = draws.replays[i, j]
            durations[i, j] = video_len[i, j] \
                * (1 + draws.replays[i, j]) + decision[i, j]

    return RatingBlock(
        start=draws.start, traits=draws.traits, flags=draws.flags,
        rusher=rusher, indices=draws.indices, speed=speed,
        quality=quality, replays=replays, durations=durations,
        events=draws.events,
    )


def run_ab_study_reference(*args, **kwargs):
    """:func:`repro.study.ab.run_ab_study` on the scalar path."""
    from repro.study.ab import run_ab_study

    return run_ab_study(*args, compute=compute_ab_block_reference, **kwargs)


def run_rating_study_reference(*args, **kwargs):
    """:func:`repro.study.rating.run_rating_study` on the scalar path."""
    from repro.study.rating import run_rating_study

    return run_rating_study(*args, compute=compute_rating_block_reference,
                            **kwargs)
