"""Session event logs: the TheFragebogen-style instrumentation.

The study frontend records, per participant session: video play/stall
events, window focus, vote timestamps relative to the video's first
visual change, total and per-question durations, and the outcomes of the
embedded control video and control questions. The R1-R7 filters operate
exclusively on these logs.

Generation happens in two steps so behaviour and log stay consistent:
:meth:`ViolationPlan.draw` decides *what kind of participant this session
has* (a rusher who votes before the first visual change also produces
garbage votes), trials are generated accordingly, and
:func:`realize_events` turns the plan plus the observed trial durations
into the concrete log that the R1-R7 filters inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.study.participants import GroupBehavior

#: R3 threshold: focus loss longer than this (seconds) invalidates.
FOCUS_LOSS_LIMIT = 10.0
#: R5 thresholds.
STUDY_DURATION_LIMIT = 25 * 60.0
QUESTION_DURATION_LIMIT = 2 * 60.0

#: Colour-blind-safe browser-frame palette for the control question.
FRAME_COLORS = ("red", "green", "blue")


@dataclass(frozen=True)
class ViolationPlan:
    """Which filter rules this session will violate."""

    not_played: bool = False          # R1
    stalled: bool = False             # R2
    focus_loss: bool = False          # R3
    vote_before_fvc: bool = False     # R4
    overtime: bool = False            # R5
    control_video_wrong: bool = False  # R6
    control_question_wrong: bool = False  # R7

    @property
    def is_rusher(self) -> bool:
        """Does this participant click through without watching?"""
        return self.vote_before_fvc or self.control_video_wrong

    @property
    def any(self) -> bool:
        return any((self.not_played, self.stalled, self.focus_loss,
                    self.vote_before_fvc, self.overtime,
                    self.control_video_wrong, self.control_question_wrong))

    @staticmethod
    def draw(group: GroupBehavior, study: str, rng: np.random.Generator,
             diligence: float) -> "ViolationPlan":
        """Sample a plan from the group's calibrated rates.

        Behavioural violations scale with the participant's carelessness;
        technical ones (stalls, overtime) do not.
        """
        rates = group.violations(study)
        carelessness = min(2.0, (1.0 - diligence) / 0.25)

        def behavioural(rate: float) -> bool:
            scaled = rate * (0.4 + 0.6 * carelessness) if rate > 0 else 0.0
            return bool(rng.random() < min(scaled, 0.97))

        def technical(rate: float) -> bool:
            return bool(rng.random() < rate)

        return ViolationPlan(
            not_played=behavioural(rates.not_played),
            stalled=technical(rates.stalled),
            focus_loss=behavioural(rates.focus_loss),
            vote_before_fvc=behavioural(rates.vote_before_fvc),
            overtime=technical(rates.overtime),
            control_video_wrong=behavioural(rates.control_video_wrong),
            control_question_wrong=behavioural(rates.control_question_wrong),
        )

    @staticmethod
    def from_flags(flags: np.ndarray) -> "ViolationPlan":
        """Build a plan from one R1..R7 column of a violation block."""
        return ViolationPlan(*(bool(flag) for flag in flags))


#: R1..R7 field order of a violation block row; True marks technical
#: violations (stalls, overtime) that do not scale with carelessness.
RULE_TECHNICAL = (False, True, False, False, True, False, False)


def draw_violation_block(rng: np.random.Generator, group: GroupBehavior,
                         study: str, diligence: np.ndarray) -> np.ndarray:
    """Batched :meth:`ViolationPlan.draw`: a ``(7, n)`` boolean matrix.

    Row ``i`` is rule ``R(i+1)``; column ``j`` is participant ``j`` of
    the block (whose diligence is ``diligence[j]``). One ``(7, n)``
    uniform draw replaces seven scalar draws per participant.
    """
    rates = group.violations(study)
    values = (rates.not_played, rates.stalled, rates.focus_loss,
              rates.vote_before_fvc, rates.overtime,
              rates.control_video_wrong, rates.control_question_wrong)
    carelessness = np.minimum(2.0, (1.0 - diligence) / 0.25)
    uniforms = rng.random((len(values), diligence.size))
    flags = np.zeros_like(uniforms, dtype=bool)
    for i, (rate, technical) in enumerate(zip(values, RULE_TECHNICAL)):
        if technical:
            flags[i] = uniforms[i] < rate
        elif rate > 0:
            scaled = np.minimum(rate * (0.4 + 0.6 * carelessness), 0.97)
            flags[i] = uniforms[i] < scaled
    return flags


def rusher_mask(flags: np.ndarray) -> np.ndarray:
    """Per-participant :attr:`ViolationPlan.is_rusher` from a block."""
    return flags[3] | flags[5]


@dataclass(slots=True)
class EventDraws:
    """Raw randomness behind a block's session event logs."""

    focus_u: np.ndarray      # (n,) uniform
    total_u: np.ndarray      # (n,) uniform
    question_u: np.ndarray   # (n,) uniform
    color_codes: np.ndarray  # (n, trials) ints into FRAME_COLORS


def draw_event_block(rng: np.random.Generator, size: int,
                     trials: int) -> EventDraws:
    """Draw the event-log randomness for one block, fixed shape."""
    return EventDraws(
        focus_u=rng.random(size),
        total_u=rng.random(size),
        question_u=rng.random(size),
        color_codes=rng.integers(0, len(FRAME_COLORS), (size, trials)),
    )


@dataclass
class SessionEvents:
    """Behavioural log of one participant session."""

    all_videos_played: bool = True
    any_video_stalled: bool = False
    max_focus_loss_s: float = 0.0
    any_vote_before_fvc: bool = False
    total_duration_s: float = 0.0
    max_question_duration_s: float = 0.0
    control_video_correct: bool = True
    control_questions_correct: bool = True
    frame_colors: List[str] = field(default_factory=list)


def realize_events(
    plan: ViolationPlan,
    trial_durations: List[float],
    rng: np.random.Generator,
) -> SessionEvents:
    """Concrete event log for a session following ``plan``."""
    events = SessionEvents()
    events.all_videos_played = not plan.not_played
    events.any_video_stalled = plan.stalled
    if plan.focus_loss:
        events.max_focus_loss_s = float(
            rng.uniform(FOCUS_LOSS_LIMIT + 1.0, FOCUS_LOSS_LIMIT + 120.0))
    else:
        events.max_focus_loss_s = float(
            rng.uniform(0.0, FOCUS_LOSS_LIMIT * 0.8))
    events.any_vote_before_fvc = plan.vote_before_fvc
    events.control_video_correct = not plan.control_video_wrong
    events.control_questions_correct = not plan.control_question_wrong

    base_total = float(sum(trial_durations))
    if plan.overtime:
        events.total_duration_s = STUDY_DURATION_LIMIT + float(
            rng.uniform(30.0, 600.0))
        events.max_question_duration_s = QUESTION_DURATION_LIMIT + float(
            rng.uniform(5.0, 60.0))
    else:
        events.total_duration_s = min(base_total,
                                      STUDY_DURATION_LIMIT * 0.9)
        events.max_question_duration_s = min(
            float(max(trial_durations, default=10.0)),
            QUESTION_DURATION_LIMIT * 0.9,
        )
    events.frame_colors = [str(rng.choice(FRAME_COLORS))
                           for _ in trial_durations]
    return events


def events_from_draws(
    plan: ViolationPlan,
    durations: np.ndarray,
    focus_u: float,
    total_u: float,
    question_u: float,
    color_codes: np.ndarray,
) -> SessionEvents:
    """Event log from pre-drawn block randomness.

    The block-draw counterpart of :func:`realize_events`: uniforms are
    drawn unconditionally (fixed shape) and mapped into ranges here, so
    the scalar reference path and the vectorized engine realise the same
    log from the same stream.
    """
    events = SessionEvents()
    events.all_videos_played = not plan.not_played
    events.any_video_stalled = plan.stalled
    if plan.focus_loss:
        events.max_focus_loss_s = \
            FOCUS_LOSS_LIMIT + 1.0 + float(focus_u) * 119.0
    else:
        events.max_focus_loss_s = float(focus_u) * (FOCUS_LOSS_LIMIT * 0.8)
    events.any_vote_before_fvc = plan.vote_before_fvc
    events.control_video_correct = not plan.control_video_wrong
    events.control_questions_correct = not plan.control_question_wrong

    base_total = float(np.sum(durations))
    if plan.overtime:
        events.total_duration_s = \
            STUDY_DURATION_LIMIT + 30.0 + float(total_u) * 570.0
        events.max_question_duration_s = \
            QUESTION_DURATION_LIMIT + 5.0 + float(question_u) * 55.0
    else:
        events.total_duration_s = min(base_total,
                                      STUDY_DURATION_LIMIT * 0.9)
        longest = float(np.max(durations)) if durations.size else 10.0
        events.max_question_duration_s = min(
            longest, QUESTION_DURATION_LIMIT * 0.9)
    events.frame_colors = [FRAME_COLORS[int(code)] for code in color_codes]
    return events


@dataclass
class Demographics:
    """Aggregate demographics of a set of sessions (Section 4.2)."""

    male_share: float
    age_distribution: List[tuple]

    @staticmethod
    def from_sessions(sessions) -> "Demographics":
        if not sessions:
            return Demographics(0.0, [])
        males = sum(1 for s in sessions if s.gender == "male")
        ages: dict = {}
        for session in sessions:
            ages[session.age_group] = ages.get(session.age_group, 0) + 1
        total = len(sessions)
        return Demographics(
            male_share=males / total,
            age_distribution=sorted(
                (name, count / total) for name, count in ages.items()
            ),
        )
