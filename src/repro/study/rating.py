"""Study 2 (Rating): do users care?

Single-stimulus presentation: one recording at a time, rated for
i) satisfaction with the loading speed and ii) the general quality of the
loading process, on the 10..70 seven-point linear scale, within one of
three imagined environments (at work / free time / on a plane).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.study.design import RatingCondition, StudyPlan
from repro.study.engine import (
    STUDY_BLOCK,
    RatingBlock,
    RatingEngine,
    TestbedLookup,
)
from repro.study.perception import DEFAULT_PARAMS, PerceptionParams
from repro.study.session import (
    SessionEvents,
    ViolationPlan,
    events_from_draws,
)
from repro.testbed.harness import Testbed


@dataclass
class RatingTrial:
    """One rated video."""

    condition: RatingCondition
    context: str
    speed_score: float      # 10..70
    quality_score: float    # 10..70
    replays: int
    duration_s: float


@dataclass
class RatingSession:
    """One participant's completed rating study."""

    participant_id: int
    group: str
    trials: List[RatingTrial]
    events: SessionEvents
    gender: str
    age_group: str

    @property
    def mean_trial_duration(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.duration_s for t in self.trials) / len(self.trials)


@dataclass
class RatingStudyResult:
    """All sessions of one group's rating study."""

    group: str
    sessions: List[RatingSession]
    plan: StudyPlan

    def all_trials(self) -> List[RatingTrial]:
        return [t for s in self.sessions for t in s.trials]


def run_rating_study(
    testbed: Testbed,
    group: str = "microworker",
    plan: Optional[StudyPlan] = None,
    participants: Optional[int] = None,
    seed: int = 0,
    params: PerceptionParams = DEFAULT_PARAMS,
    block_size: int = STUDY_BLOCK,
    compute: Optional[Callable] = None,
) -> RatingStudyResult:
    """Simulate the rating study for one subject group.

    Runs on the vectorized block engine; pass
    ``compute=repro.study.reference.compute_rating_block_reference`` for
    the scalar path (identical results, pinned by the equivalence test).
    """
    engine = RatingEngine(group, plan, params,
                          lookup=TestbedLookup(testbed),
                          block_size=block_size)
    n = participants if participants is not None \
        else engine.behavior.participants_rating
    sessions: List[RatingSession] = []
    for block in engine.blocks(n, seed, compute=compute):
        sessions.extend(rating_sessions_from_block(block, engine))
    return RatingStudyResult(group=group, sessions=sessions,
                             plan=engine.plan)


def rating_sessions_from_block(block: RatingBlock,
                               engine: RatingEngine) -> List[RatingSession]:
    """Materialize one computed block as :class:`RatingSession` objects."""
    if block.events is None:
        raise ValueError("block was computed without event draws")
    sessions: List[RatingSession] = []
    for i in range(block.size):
        trials: List[RatingTrial] = []
        column = 0
        for table, indices in zip(engine.tables, block.indices):
            for k in range(indices.shape[1]):
                trials.append(RatingTrial(
                    condition=table.pool[int(indices[i, k])],
                    context=table.context,
                    speed_score=float(block.speed[i, column]),
                    quality_score=float(block.quality[i, column]),
                    replays=int(block.replays[i, column]),
                    duration_s=float(block.durations[i, column]),
                ))
                column += 1
        events = events_from_draws(
            ViolationPlan.from_flags(block.flags[:, i]),
            block.durations[i],
            block.events.focus_u[i],
            block.events.total_u[i],
            block.events.question_u[i],
            block.events.color_codes[i],
        )
        participant = block.traits.participant(block.start, i,
                                               engine.behavior)
        sessions.append(RatingSession(
            participant_id=participant.participant_id,
            group=engine.group,
            trials=trials,
            events=events,
            gender=participant.gender,
            age_group=participant.age_group,
        ))
    return sessions
