"""Study 2 (Rating): do users care?

Single-stimulus presentation: one recording at a time, rated for
i) satisfaction with the loading speed and ii) the general quality of the
loading process, on the 10..70 seven-point linear scale, within one of
three imagined environments (at work / free time / on a plane).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.study.design import (
    CONTEXTS,
    RATING_VIDEO_COUNTS,
    RatingCondition,
    StudyPlan,
)
from repro.study.participants import GROUPS, Participant
from repro.study.perception import DEFAULT_PARAMS, PerceptionParams, rating_votes
from repro.study.session import SessionEvents, ViolationPlan, realize_events
from repro.testbed.harness import Testbed
from repro.util.rng import SeedSequenceFactory, spawn_rng


@dataclass
class RatingTrial:
    """One rated video."""

    condition: RatingCondition
    context: str
    speed_score: float      # 10..70
    quality_score: float    # 10..70
    replays: int
    duration_s: float


@dataclass
class RatingSession:
    """One participant's completed rating study."""

    participant_id: int
    group: str
    trials: List[RatingTrial]
    events: SessionEvents
    gender: str
    age_group: str

    @property
    def mean_trial_duration(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.duration_s for t in self.trials) / len(self.trials)


@dataclass
class RatingStudyResult:
    """All sessions of one group's rating study."""

    group: str
    sessions: List[RatingSession]
    plan: StudyPlan

    def all_trials(self) -> List[RatingTrial]:
        return [t for s in self.sessions for t in s.trials]


def run_rating_study(
    testbed: Testbed,
    group: str = "microworker",
    plan: Optional[StudyPlan] = None,
    participants: Optional[int] = None,
    seed: int = 0,
    params: PerceptionParams = DEFAULT_PARAMS,
) -> RatingStudyResult:
    """Simulate the rating study for one subject group."""
    behavior = GROUPS[group]
    plan = plan if plan is not None else StudyPlan()
    n = participants if participants is not None \
        else behavior.participants_rating
    counts = RATING_VIDEO_COUNTS[group]
    pools = {context: plan.rating_pool(group, context)
             for context in CONTEXTS}
    for context, pool in pools.items():
        if not pool:
            raise ValueError(f"rating pool for {context!r} is empty")

    anchors = _AnchorCache(testbed, list(plan.stacks))
    factory = SeedSequenceFactory(
        spawn_rng(seed, "rating", group).integers(2**31))
    sessions: List[RatingSession] = []
    for pid in range(n):
        rng = factory.rng()
        participant = Participant(pid, behavior, rng)
        plan_v = ViolationPlan.draw(behavior, "rating", rng,
                                    participant.diligence)
        trials: List[RatingTrial] = []
        for context, count in counts.items():
            pool = pools[context]
            take = min(count, len(pool))
            indices = rng.choice(len(pool), size=take, replace=False)
            for index in indices:
                condition = pool[int(index)]
                trials.append(_run_trial(testbed, condition, context,
                                         participant, plan_v, rng, params,
                                         anchors))
        events = realize_events(plan_v, [t.duration_s for t in trials], rng)
        sessions.append(RatingSession(
            participant_id=pid,
            group=group,
            trials=trials,
            events=events,
            gender=participant.gender,
            age_group=participant.age_group,
        ))
    return RatingStudyResult(group=group, sessions=sessions, plan=plan)


class _AnchorCache:
    """Expected pace per (website, network): across-stack median SI.

    Models the viewer's internal reference for "how fast such a page
    loads on such a network" in single-stimulus presentation.
    """

    def __init__(self, testbed: Testbed, stacks: List[str]):
        self._testbed = testbed
        self._stacks = stacks
        self._cache: dict = {}

    def anchor(self, website: str, network: str) -> float:
        key = (website, network)
        if key not in self._cache:
            values = sorted(
                self._testbed.recording(website, network, stack).si
                for stack in self._stacks
            )
            self._cache[key] = values[len(values) // 2]
        return self._cache[key]


def _run_trial(
    testbed: Testbed,
    condition: RatingCondition,
    context: str,
    participant: Participant,
    plan_v: ViolationPlan,
    rng: np.random.Generator,
    params: PerceptionParams,
    anchors: _AnchorCache,
) -> RatingTrial:
    recording = testbed.recording(condition.website, condition.network,
                                  condition.stack)
    if plan_v.is_rusher:
        return RatingTrial(
            condition=condition,
            context=context,
            speed_score=float(rng.integers(10, 71)),
            quality_score=float(rng.integers(10, 71)),
            replays=0,
            duration_s=float(rng.uniform(1.0, 4.0)),
        )

    noise_scale = params.rating_noise_sd * participant.group.noise_multiplier
    speed, quality = rating_votes(
        recording, context,
        bias=participant.rating_bias,
        noise_scale=noise_scale,
        rng=rng,
        params=params,
        heavy_tailed=participant.group.heavy_tailed,
        anchor_si=anchors.anchor(condition.website, condition.network),
    )
    replays = int(rng.poisson(0.25 * participant.group.replay_rate))
    duration = (recording.video_duration * (1 + replays)
                + float(rng.lognormal(
                    np.log(participant.group.decision_time_rating), 0.35)))
    return RatingTrial(
        condition=condition,
        context=context,
        speed_score=speed,
        quality_score=quality,
        replays=replays,
        duration_s=duration,
    )
