"""Psychometric models standing in for human participants.

The paper's finding chain is: users *notice* SI-sized differences in a
side-by-side comparison (Figure 4) but *rate* videos almost identically
in isolation (Figure 5), and their ratings correlate best with the Speed
Index (Figure 6). We therefore model perception on the visual-progress
signal itself:

* **Just-noticeable difference (A/B)**: Weber-law detector on the Speed
  Index. The effective evidence is ``|ΔSI| / (T0 + w * min(SI))`` — a
  difference is easy to see when it is large relative to both an absolute
  floor (T0, sub-300 ms changes are hard to see in a video) and the
  overall pace of the loading process. Detection follows a logistic
  psychometric function with per-participant thresholds.
* **Absolute category rating**: satisfaction follows a logistic opinion
  curve on SI anchored at a context-dependent reference (people at work
  expect snappier pages than people on a plane), plus participant bias
  and vote noise. The loading-process *quality* answer additionally
  penalises a stally curve (big gap between first and last visual
  change).

All constants live in :class:`PerceptionParams`; defaults were calibrated
once against Figures 4 and 5 and are not fitted per run.

Two families of entry points coexist. The scalar functions
(:func:`ab_vote`, :func:`rating_votes`, ...) model one vote at a time and
remain the readable specification of the models. The ``*_np`` kernels are
their elementwise counterparts used by the vectorized study engine
(:mod:`repro.study.engine`); they accept arrays of any shape and are the
*only* place transcendental functions are evaluated on the study hot
path, so the scalar reference path (:mod:`repro.study.reference`) and the
batched path produce bit-identical branch decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.study.design import SCALE_MAX, SCALE_MIN
from repro.testbed.harness import RecordingSummary


@dataclass(frozen=True)
class PerceptionParams:
    """Calibration constants of both perception models."""

    # -- A/B just-noticeable-difference model --
    #: Absolute floor of visible SI difference (seconds).
    jnd_absolute_floor: float = 0.18
    #: Weber weight on the pace of the faster video.
    jnd_weber_weight: float = 0.35
    #: Population mean / sd of the detection threshold (evidence units).
    jnd_threshold_mean: float = 0.35
    jnd_threshold_sd: float = 0.12
    #: Slope of the logistic psychometric function.
    jnd_slope: float = 0.12
    #: P(vote "no difference") when nothing was detected.
    undetected_same_prob: float = 0.72
    #: Confusion scale: with weak evidence the faster side is mistaken.
    confusion_scale: float = 3.0

    # -- rating (ACR) model --
    #: SI giving the scale midpoint, per context.
    rating_reference_si: Tuple[Tuple[str, float], ...] = (
        ("work", 1.5),
        ("free_time", 1.7),
        ("plane", 5.0),
    )
    #: Steepness of the opinion curve.
    rating_beta: float = 1.3
    #: Population sd of per-participant bias (scale points).
    rating_bias_sd: float = 4.0
    #: Per-vote noise sd (scale points) for a diligent participant.
    rating_noise_sd: float = 5.5
    #: Penalty weight for a stally loading process (quality question).
    quality_stall_penalty: float = 7.0
    #: Anything below this SI feels instant in a video (seconds).
    perceptual_floor: float = 0.4
    #: Single-stimulus compression: without a reference, users
    #: under-respond to deviations from the page's expected pace —
    #: perceived pace = anchor * (si/anchor)^gamma. This is what makes
    #: isolated ratings protocol-blind (the paper's headline finding)
    #: while side-by-side comparisons still reveal the difference.
    single_stimulus_gamma: float = 0.18
    #: Per-website rating offset sd: sites differ in how pleasing their
    #: loading looks, independent of speed. Identical across stacks, so
    #: it never biases protocol comparisons — but it caps how well any
    #: technical metric can correlate with votes on fast networks.
    site_appeal_sd: float = 8.0
    #: Salience decay: on slow networks the (un)loading dominates the
    #: viewer's attention, so content appeal matters less. Appeal is
    #: weighted by 1 / (1 + anchor/scale).
    appeal_salience_scale: float = 4.0

    def reference_si(self, context: str) -> float:
        for name, value in self.rating_reference_si:
            if name == context:
                return value
        raise KeyError(f"unknown context {context!r}")


DEFAULT_PARAMS = PerceptionParams()


def evidence(si_a: float, si_b: float,
             params: PerceptionParams = DEFAULT_PARAMS) -> float:
    """Signed detection evidence: positive means A is visibly faster."""
    delta = si_b - si_a
    floor = params.jnd_absolute_floor
    pace = params.jnd_weber_weight * max(min(si_a, si_b), 0.0)
    return delta / (floor + pace)


def detection_probability(evidence_magnitude: float, threshold: float,
                          params: PerceptionParams = DEFAULT_PARAMS) -> float:
    """Psychometric function: P(difference is perceived)."""
    x = (evidence_magnitude - threshold) / params.jnd_slope
    # Logistic, numerically clamped.
    if x > 35:
        return 1.0
    if x < -35:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


def ab_vote(
    rec_a: RecordingSummary,
    rec_b: RecordingSummary,
    threshold: float,
    rng: np.random.Generator,
    params: PerceptionParams = DEFAULT_PARAMS,
) -> Tuple[str, float]:
    """Simulate one A/B answer.

    Returns ``(vote, confidence)`` with vote in {"a", "b", "same"} and
    confidence in [0, 1].
    """
    signed = evidence(rec_a.si, rec_b.si, params)
    magnitude = abs(signed)
    p_detect = detection_probability(magnitude, threshold, params)
    detected = rng.random() < p_detect

    if not detected:
        if rng.random() < params.undetected_same_prob:
            return "same", float(rng.uniform(0.3, 0.7))
        return ("a" if rng.random() < 0.5 else "b"), float(rng.uniform(0.0, 0.4))

    confusion = 0.5 * math.exp(-params.confusion_scale * magnitude)
    faster = "a" if signed > 0 else "b"
    slower = "b" if faster == "a" else "a"
    vote = faster if rng.random() >= confusion else slower
    confidence = min(1.0, 0.4 + 0.5 * magnitude + float(rng.normal(0, 0.08)))
    return vote, max(0.0, confidence)


def _perceptual_si(si: float, floor: float) -> float:
    """Smooth lower bound: speeds below the floor all feel instant."""
    return math.sqrt(si * si + floor * floor)


def true_opinion(si: float, context: str,
                 params: PerceptionParams = DEFAULT_PARAMS,
                 anchor_si: Optional[float] = None) -> float:
    """Noise-free opinion score (10..70) for a stimulus in a context.

    ``anchor_si`` is the pace the viewer expects for this page on this
    network (in the studies: the across-stack median SI of the
    condition). In single-stimulus mode the perceived pace is compressed
    towards that anchor — users notice that a news site on plane WiFi is
    slow, but barely register which protocol served it.
    """
    if si < 0:
        raise ValueError("SI must be non-negative")
    floor = params.perceptual_floor
    si_eff = _perceptual_si(si, floor)
    if anchor_si is not None and anchor_si >= 0:
        anchor_eff = _perceptual_si(anchor_si, floor)
        si_eff = anchor_eff * (si_eff / anchor_eff) ** \
            params.single_stimulus_gamma
    ref = params.reference_si(context)
    ratio = (si_eff / ref) ** params.rating_beta
    span = SCALE_MAX - SCALE_MIN
    return SCALE_MIN + span / (1.0 + ratio)


def website_appeal(website: str, params: PerceptionParams = DEFAULT_PARAMS,
                   seed: int = 0) -> float:
    """Deterministic per-site rating offset (content appeal).

    The same for every stack and network, so it cannot bias the protocol
    comparison; it models that votes partially reflect how pleasant a
    page's loading *looks*, which is what keeps metric-vote correlations
    away from -1.0 on fast networks (Figure 6, DSL column).
    """
    from repro.util.rng import spawn_rng

    rng = spawn_rng(seed, "site-appeal-v2", website)
    return float(rng.normal(0.0, params.site_appeal_sd))


def condition_appeal(website: str, network: str,
                     params: PerceptionParams = DEFAULT_PARAMS,
                     seed: int = 0) -> float:
    """Per-(site, network) vote idiosyncrasy.

    How a page's structure reads at a given pace is partly idiosyncratic
    (the paper's banner-popup example in Section 4.2: raters keyed on
    different moments of structurally odd loads). Constant across stacks
    — so ANOVA and the A/B comparisons are untouched — but different per
    network, further bounding metric-vote correlations.
    """
    from repro.util.rng import spawn_rng

    rng = spawn_rng(seed, "condition-appeal", website, network)
    return float(rng.normal(0.0, 0.5 * params.site_appeal_sd))


def detection_probability_np(magnitude, threshold,
                             params: PerceptionParams = DEFAULT_PARAMS):
    """Array form of :func:`detection_probability` (broadcasts)."""
    x = (np.asarray(magnitude, dtype=float) - threshold) / params.jnd_slope
    logistic = 1.0 / (1.0 + np.exp(-np.clip(x, -35.0, 35.0)))
    return np.where(x > 35.0, 1.0, np.where(x < -35.0, 0.0, logistic))


def confusion_probability_np(magnitude,
                             params: PerceptionParams = DEFAULT_PARAMS):
    """P(the faster side is mistaken for the slower one), elementwise."""
    return 0.5 * np.exp(-params.confusion_scale
                        * np.asarray(magnitude, dtype=float))


def true_opinion_np(si, context: str,
                    params: PerceptionParams = DEFAULT_PARAMS,
                    anchor_si=None):
    """Array form of :func:`true_opinion` (same formula, numpy ops)."""
    si = np.asarray(si, dtype=float)
    if np.any(si < 0):
        raise ValueError("SI must be non-negative")
    floor = params.perceptual_floor
    si_eff = np.sqrt(si * si + floor * floor)
    if anchor_si is not None:
        anchor = np.asarray(anchor_si, dtype=float)
        anchor_eff = np.sqrt(anchor * anchor + floor * floor)
        si_eff = np.where(
            anchor >= 0,
            anchor_eff * (si_eff / anchor_eff) ** params.single_stimulus_gamma,
            si_eff,
        )
    ref = params.reference_si(context)
    ratio = (si_eff / ref) ** params.rating_beta
    span = SCALE_MAX - SCALE_MIN
    return SCALE_MIN + span / (1.0 + ratio)


def stall_score_np(fvc, lvc):
    """Array form of :func:`stall_score` from the FVC/LVC metrics."""
    fvc = np.asarray(fvc, dtype=float)
    lvc = np.asarray(lvc, dtype=float)
    spread = np.where(lvc > 0, (lvc - fvc) / np.where(lvc > 0, lvc, 1.0), 0.0)
    return np.minimum(np.maximum((spread - 0.4) / 0.6, 0.0), 1.0)


def quantize_score(values):
    """Round to the integer 10..70 scale (vote granularity 1)."""
    return np.minimum(np.maximum(np.rint(values), float(SCALE_MIN)),
                      float(SCALE_MAX))


def stall_score(recording: RecordingSummary) -> float:
    """How stally the loading process looked (0 smooth .. 1 very stally)."""
    metrics = recording.selected_metrics
    lvc = metrics["LVC"]
    fvc = metrics["FVC"]
    if lvc <= 0:
        return 0.0
    spread = (lvc - fvc) / lvc
    return min(max((spread - 0.4) / 0.6, 0.0), 1.0)


def rating_votes(
    recording: RecordingSummary,
    context: str,
    bias: float,
    noise_scale: float,
    rng: np.random.Generator,
    params: PerceptionParams = DEFAULT_PARAMS,
    heavy_tailed: bool = False,
    anchor_si: Optional[float] = None,
) -> Tuple[float, float]:
    """Simulate (speed_score, quality_score) on the 10..70 scale.

    ``heavy_tailed`` switches the vote noise to a Student-t (df=2), which
    makes the resulting group distribution non-normal — the property the
    paper observed for the voluntary Internet group.
    """
    base = true_opinion(recording.si, context, params, anchor_si=anchor_si)
    pace = anchor_si if anchor_si is not None else recording.si
    salience = 1.0 / (1.0 + max(pace, 0.0) / params.appeal_salience_scale)
    base += salience * (website_appeal(recording.website, params)
                        + condition_appeal(recording.website,
                                           recording.network, params))

    def noise() -> float:
        if heavy_tailed:
            return float(rng.standard_t(2)) * noise_scale
        return float(rng.normal(0.0, noise_scale))

    speed = base + bias + noise()
    quality = base + bias - params.quality_stall_penalty * \
        stall_score(recording) + noise()
    clip = lambda v: float(min(max(v, SCALE_MIN), SCALE_MAX))
    return clip(round(speed)), clip(round(quality))
