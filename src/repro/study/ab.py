"""Study 1 (A/B): do users notice a protocol switch?

Each participant watches side-by-side recordings of the same website and
network under two stacks and answers "left / right / no difference" plus
a confidence rating. The side assignment is randomised per trial so
protocol identity never correlates with screen position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.study.design import AbCondition, StudyPlan
from repro.study.engine import (
    STUDY_BLOCK,
    AbBlock,
    AbEngine,
    TestbedLookup,
)
from repro.study.perception import DEFAULT_PARAMS, PerceptionParams
from repro.study.session import (
    SessionEvents,
    ViolationPlan,
    events_from_draws,
)
from repro.testbed.harness import Testbed

#: Screen-coordinate answer names, indexed by the engine's answer codes.
ANSWER_NAMES = ("left", "right", "same")


@dataclass
class AbTrial:
    """One answered side-by-side comparison."""

    condition: AbCondition
    #: Which stack was shown on the left ("a" or "b" of the condition).
    left_is_a: bool
    #: Raw answer: "left" / "right" / "same".
    answer: str
    confidence: float
    replays: int
    duration_s: float

    @property
    def vote(self) -> str:
        """Answer translated to condition coordinates: "a"/"b"/"same"."""
        if self.answer == "same":
            return "same"
        if self.answer == "left":
            return "a" if self.left_is_a else "b"
        return "b" if self.left_is_a else "a"


@dataclass
class AbSession:
    """One participant's completed A/B study."""

    participant_id: int
    group: str
    trials: List[AbTrial]
    events: SessionEvents
    gender: str
    age_group: str

    @property
    def mean_trial_duration(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.duration_s for t in self.trials) / len(self.trials)

    @property
    def mean_replays(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.replays for t in self.trials) / len(self.trials)


@dataclass
class AbStudyResult:
    """All sessions of one group's A/B study."""

    group: str
    sessions: List[AbSession]
    plan: StudyPlan

    def all_trials(self) -> List[AbTrial]:
        return [t for s in self.sessions for t in s.trials]


def run_ab_study(
    testbed: Testbed,
    group: str = "microworker",
    plan: Optional[StudyPlan] = None,
    participants: Optional[int] = None,
    seed: int = 0,
    params: PerceptionParams = DEFAULT_PARAMS,
    block_size: int = STUDY_BLOCK,
    compute: Optional[Callable] = None,
) -> AbStudyResult:
    """Simulate the A/B study for one subject group.

    Runs on the vectorized block engine; pass
    ``compute=repro.study.reference.compute_ab_block_reference`` to take
    the scalar path (identical results, pinned by the equivalence test).
    """
    engine = AbEngine(group, plan, params, lookup=TestbedLookup(testbed),
                      block_size=block_size)
    n = participants if participants is not None \
        else engine.behavior.participants_ab
    sessions: List[AbSession] = []
    for block in engine.blocks(n, seed, compute=compute):
        sessions.extend(ab_sessions_from_block(block, engine))
    return AbStudyResult(group=group, sessions=sessions, plan=engine.plan)


def ab_sessions_from_block(block: AbBlock,
                           engine: AbEngine) -> List[AbSession]:
    """Materialize one computed block as :class:`AbSession` objects."""
    if block.events is None:
        raise ValueError("block was computed without event draws")
    pool = engine.pool
    sessions: List[AbSession] = []
    for i in range(block.size):
        trials = [
            AbTrial(
                condition=pool[int(block.indices[i, j])],
                left_is_a=bool(block.left_is_a[i, j]),
                answer=ANSWER_NAMES[int(block.answers[i, j])],
                confidence=float(block.confidence[i, j]),
                replays=int(block.replays[i, j]),
                duration_s=float(block.durations[i, j]),
            )
            for j in range(block.indices.shape[1])
        ]
        events = events_from_draws(
            ViolationPlan.from_flags(block.flags[:, i]),
            block.durations[i],
            block.events.focus_u[i],
            block.events.total_u[i],
            block.events.question_u[i],
            block.events.color_codes[i],
        )
        participant = block.traits.participant(block.start, i,
                                               engine.behavior)
        sessions.append(AbSession(
            participant_id=participant.participant_id,
            group=engine.group,
            trials=trials,
            events=events,
            gender=participant.gender,
            age_group=participant.age_group,
        ))
    return sessions
