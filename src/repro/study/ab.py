"""Study 1 (A/B): do users notice a protocol switch?

Each participant watches side-by-side recordings of the same website and
network under two stacks and answers "left / right / no difference" plus
a confidence rating. The side assignment is randomised per trial so
protocol identity never correlates with screen position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.study.design import AB_VIDEO_COUNTS, AbCondition, StudyPlan
from repro.study.participants import GROUPS, GroupBehavior, Participant
from repro.study.perception import DEFAULT_PARAMS, PerceptionParams, ab_vote, evidence
from repro.study.session import SessionEvents, ViolationPlan, realize_events
from repro.testbed.harness import Testbed
from repro.util.rng import SeedSequenceFactory, spawn_rng


@dataclass
class AbTrial:
    """One answered side-by-side comparison."""

    condition: AbCondition
    #: Which stack was shown on the left ("a" or "b" of the condition).
    left_is_a: bool
    #: Raw answer: "left" / "right" / "same".
    answer: str
    confidence: float
    replays: int
    duration_s: float

    @property
    def vote(self) -> str:
        """Answer translated to condition coordinates: "a"/"b"/"same"."""
        if self.answer == "same":
            return "same"
        if self.answer == "left":
            return "a" if self.left_is_a else "b"
        return "b" if self.left_is_a else "a"


@dataclass
class AbSession:
    """One participant's completed A/B study."""

    participant_id: int
    group: str
    trials: List[AbTrial]
    events: SessionEvents
    gender: str
    age_group: str

    @property
    def mean_trial_duration(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.duration_s for t in self.trials) / len(self.trials)

    @property
    def mean_replays(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.replays for t in self.trials) / len(self.trials)


@dataclass
class AbStudyResult:
    """All sessions of one group's A/B study."""

    group: str
    sessions: List[AbSession]
    plan: StudyPlan

    def all_trials(self) -> List[AbTrial]:
        return [t for s in self.sessions for t in s.trials]


def run_ab_study(
    testbed: Testbed,
    group: str = "microworker",
    plan: Optional[StudyPlan] = None,
    participants: Optional[int] = None,
    seed: int = 0,
    params: PerceptionParams = DEFAULT_PARAMS,
) -> AbStudyResult:
    """Simulate the A/B study for one subject group."""
    behavior = GROUPS[group]
    plan = plan if plan is not None else StudyPlan()
    n = participants if participants is not None else behavior.participants_ab
    pool = plan.ab_pool(group)
    if not pool:
        raise ValueError("A/B condition pool is empty")
    videos = min(AB_VIDEO_COUNTS[group], len(pool))

    factory = SeedSequenceFactory(spawn_rng(seed, "ab", group).integers(2**31))
    sessions: List[AbSession] = []
    for pid in range(n):
        rng = factory.rng()
        participant = Participant(pid, behavior, rng)
        plan_v = ViolationPlan.draw(behavior, "ab", rng, participant.diligence)
        indices = rng.choice(len(pool), size=videos, replace=False)
        trials: List[AbTrial] = []
        for index in indices:
            condition = pool[int(index)]
            trials.append(_run_trial(testbed, condition, participant,
                                     plan_v, rng, params))
        events = realize_events(plan_v, [t.duration_s for t in trials], rng)
        sessions.append(AbSession(
            participant_id=pid,
            group=group,
            trials=trials,
            events=events,
            gender=participant.gender,
            age_group=participant.age_group,
        ))
    return AbStudyResult(group=group, sessions=sessions, plan=plan)


def _run_trial(
    testbed: Testbed,
    condition: AbCondition,
    participant: Participant,
    plan_v: ViolationPlan,
    rng: np.random.Generator,
    params: PerceptionParams,
) -> AbTrial:
    rec_a = testbed.recording(condition.website, condition.network,
                              condition.stack_a)
    rec_b = testbed.recording(condition.website, condition.network,
                              condition.stack_b)
    left_is_a = bool(rng.random() < 0.5)
    video_len = max(rec_a.video_duration, rec_b.video_duration)

    if plan_v.is_rusher:
        # Click-through participant: answers without watching.
        answer = str(rng.choice(["left", "right", "same"]))
        return AbTrial(
            condition=condition,
            left_is_a=left_is_a,
            answer=answer,
            confidence=float(rng.uniform(0.0, 1.0)),
            replays=0,
            duration_s=float(rng.uniform(1.0, 4.0)),
        )

    vote, confidence = ab_vote(rec_a, rec_b, participant.jnd_threshold,
                               rng, params)
    magnitude = abs(evidence(rec_a.si, rec_b.si, params))
    replays = participant.replay_count(magnitude, condition.network)
    duration = (video_len * (1 + replays)
                + float(rng.lognormal(np.log(participant.group.decision_time_ab),
                                      0.35)))
    if vote == "same":
        answer = "same"
    elif vote == "a":
        answer = "left" if left_is_a else "right"
    else:
        answer = "right" if left_is_a else "left"
    return AbTrial(
        condition=condition,
        left_is_a=left_is_a,
        answer=answer,
        confidence=confidence,
        replays=replays,
        duration_s=duration,
    )
