"""Streaming study pipeline: population-scale perception aggregation.

The classic entry point (:func:`repro.study.simulate.run_campaign`)
needs a live :class:`~repro.testbed.harness.Testbed` and materializes
every session object. This module decouples the studies from the
testbed and from session materialization:

* :class:`ConditionIndex` reduces ``(ConditionKey, RecordingSummary)``
  pairs — from a live campaign's ``summary_store()`` or post-hoc from a
  campaign directory — to the few per-condition floats the perception
  models consume (:class:`~repro.study.engine.ConditionStats`).
* :func:`build_partial` runs the vectorized engines in aggregate mode
  (no events, no sessions) over a participant-block shard and folds the
  outcome into a :class:`StudyPartial`: Table 3 funnels, A/B vote
  counts, rating moments (Welford) and integer score histograms — all
  exactly mergeable, so study work rides the same lease/partial
  protocol as distributed campaign workers (``repro study
  --campaign-dir DIR --shard I:K``).
* :func:`build_report` renders the merged partials as the paper's
  Table 3 funnel and Figure 3-6 aggregates; :class:`StudyIndex` warms
  per-condition lookups for the ``repro study --serve`` query protocol.

Sharding is by participant block (:data:`~repro.study.engine.STUDY_BLOCK`
columns): shard ``(i, k)`` processes exactly the blocks ``b`` with
``b % k == i``, and each block draws from its own RNG-tree stream — so
any partition of the shards merges to the same totals as one sequential
pass (counts exactly; Welford means to float merge order).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

# Analysis imports are limited to the streaming primitives here; the
# figure dataclasses (AbShares, RatingCell, ...) are imported inside
# build_report/_build_heatmap because their modules import the study
# session types, which would cycle at package-import time.
from repro.analysis.streaming import CountTable, StreamingMoments
from repro.study.design import SCALE_MAX, SCALE_MIN, StudyPlan
from repro.study.engine import (
    STUDY_BLOCK,
    AbEngine,
    ConditionStats,
    RatingEngine,
    compute_anchors,
    condition_stats,
)
from repro.study.filtering import FILTER_RULES, FilterFunnel, funnel_from_flags
from repro.study.participants import GROUPS
from repro.study.perception import DEFAULT_PARAMS, PerceptionParams
from repro.study.simulate import GROUP_ORDER, PAPER_TABLE3, scaled_participants

#: Width of the integer score histograms (scores 10..70, granularity 1).
SCORE_BINS = SCALE_MAX - SCALE_MIN + 1

#: Funnel rows are [initial, after R1, ..., after R7].
FUNNEL_WIDTH = len(FILTER_RULES) + 1

#: Figure 6 context per network (the paper's free-time/plane choice).
CONTEXTS_FOR_NETWORK = {
    "DSL": "free_time", "LTE": "free_time",
    "DA2GC": "plane", "MSS": "plane",
}

_SEP = "|"


def _key(*parts: str) -> str:
    for part in parts:
        if _SEP in part:
            raise ValueError(f"key part {part!r} contains {_SEP!r}")
    return _SEP.join(parts)


class ConditionIndex:
    """Per-condition facts of a campaign, indexed for the study models.

    Holds one :class:`ConditionStats` per (website, network, stack);
    when several seeds recorded the same condition the lowest seed wins,
    so the index is independent of manifest iteration order.
    """

    def __init__(self) -> None:
        self._stats: Dict[Tuple[str, str, str], ConditionStats] = {}
        self._seeds: Dict[Tuple[str, str, str], int] = {}

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[object, object]]) -> "ConditionIndex":
        """Index ``(ConditionKey, RecordingSummary)`` pairs.

        Accepts anything iterable in that shape: a live campaign's
        ``summary_store()``, a post-hoc ``SummaryStore.open(...)``, or a
        plain list.
        """
        index = cls()
        for key, summary in pairs:
            index.add(int(getattr(key, "seed", 0)), summary)
        return index

    @classmethod
    def from_campaign_dir(
        cls,
        campaign_dir: Union[str, Path],
        cache_dir: Optional[Union[str, Path]] = None,
        check_behaviour: bool = True,
    ) -> "ConditionIndex":
        """Index a finished campaign directory (post-hoc mode)."""
        from repro.testbed.store import SummaryStore

        store = SummaryStore.open(campaign_dir, cache_dir=cache_dir,
                                  check_behaviour=check_behaviour)
        return cls.from_pairs(store)

    @classmethod
    def from_testbed(cls, testbed, plan: StudyPlan) -> "ConditionIndex":
        """Index a live testbed over a plan's required recordings."""
        index = cls()
        for website, network, stack in plan.required_recordings():
            index.add(0, testbed.recording(website, network, stack))
        return index

    def add(self, seed: int, summary) -> None:
        stats = condition_stats(summary)
        key = (stats.website, stats.network, stats.stack)
        if key not in self._seeds or seed < self._seeds[key]:
            self._seeds[key] = seed
            self._stats[key] = stats

    def lookup(self, website: str, network: str,
               stack: str) -> ConditionStats:
        """The engines' condition lookup; raises on uncovered conditions."""
        try:
            return self._stats[(website, network, stack)]
        except KeyError:
            raise KeyError(
                f"campaign has no recording for "
                f"{website}/{network}/{stack}; the study plan needs "
                f"every (site, network, stack) combination — restrict "
                f"the plan or record the missing condition") from None

    def __contains__(self, key: Tuple[str, str, str]) -> bool:
        return key in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    @property
    def websites(self) -> List[str]:
        return sorted({key[0] for key in self._stats})

    @property
    def networks(self) -> List[str]:
        return sorted({key[1] for key in self._stats})

    @property
    def stacks(self) -> List[str]:
        return sorted({key[2] for key in self._stats})

    def plan(self) -> StudyPlan:
        """A study plan restricted to what this index covers.

        Axis order follows the default plan (the paper's), with any
        extra indexed values appended alphabetically; A/B pairs keep
        only those whose two stacks are both covered.
        """
        base = StudyPlan()

        def ordered(defaults: Sequence[str],
                    present: List[str]) -> Tuple[str, ...]:
            known = [v for v in defaults if v in present]
            return tuple(known + sorted(set(present) - set(defaults)))

        sites = ordered(base.sites, self.websites)
        networks = ordered(base.networks, self.networks)
        stacks = ordered(base.stacks, self.stacks)
        pairs = tuple((a, b) for a, b in base.pairs
                      if a in stacks and b in stacks)
        return StudyPlan(sites=sites, networks=networks, stacks=stacks,
                         pairs=pairs)


def _moments_from_sums(count: int, total: float,
                       total_sq: float) -> StreamingMoments:
    """Welford state from (n, Σx, Σx²) — one block's worth of scores."""
    if count == 0:
        return StreamingMoments()
    mean = total / count
    m2 = max(0.0, total_sq - count * mean * mean)
    return StreamingMoments(count=count, mean=mean, m2=m2)


@dataclass
class StudyPartial:
    """One shard's mergeable study aggregation.

    All state is either integer counts (:class:`CountTable` — exact
    under any merge order) or Welford moments (exact counts, means to
    float merge order). ``config`` is the merge identity: partials built
    from different seeds, scales, plans or parameter sets refuse to
    merge.
    """

    config: Dict[str, object]
    shards: List[List[int]] = field(default_factory=list)
    funnels: CountTable = field(
        default_factory=lambda: CountTable(FUNNEL_WIDTH))
    #: key ``group|website|network|stack_a|stack_b`` ->
    #: [votes_a, votes_same, votes_b, replay_sum] over surviving sessions.
    ab_votes: CountTable = field(default_factory=lambda: CountTable(4))
    #: key ``group|context|website|network|stack`` ->
    #: {"speed": moments, "quality": moments} over surviving sessions.
    rating: Dict[str, Dict[str, StreamingMoments]] = field(
        default_factory=dict)
    #: key ``which|website|network|stack`` -> integer score histogram of
    #: the internet group's surviving votes (for exact medians).
    histograms: CountTable = field(
        default_factory=lambda: CountTable(SCORE_BINS))

    def rating_cell(self, key: str) -> Dict[str, StreamingMoments]:
        cell = self.rating.get(key)
        if cell is None:
            cell = self.rating[key] = {"speed": StreamingMoments(),
                                       "quality": StreamingMoments()}
        return cell

    def merge(self, other: "StudyPartial") -> "StudyPartial":
        """Fold another shard into this one (returns self)."""
        if other.config != self.config:
            raise ValueError(
                "cannot merge study partials with different configs: "
                f"{self.config!r} vs {other.config!r}")
        self.shards = sorted(
            {tuple(s) for s in self.shards}
            | {tuple(s) for s in other.shards})
        self.shards = [list(s) for s in self.shards]
        self.funnels.merge(other.funnels)
        self.ab_votes.merge(other.ab_votes)
        self.histograms.merge(other.histograms)
        for key, cell in other.rating.items():
            mine = self.rating_cell(key)
            mine["speed"].merge(cell["speed"])
            mine["quality"].merge(cell["quality"])
        return self

    def funnel(self, group: str, study: str) -> Optional[FilterFunnel]:
        row = self.funnels.row(_key(group, study))
        if row is None:
            return None
        return FilterFunnel(group=group, study=study, initial=row[0],
                            after_rule=list(row[1:]))

    # -- state (de)serialization --------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-serialisable state; ``from_state`` round-trips exactly."""
        from repro.testbed.harness import SIM_BEHAVIOUR_VERSION

        return {
            "kind": "study-partial",
            "version": 1,
            "sim_behaviour": SIM_BEHAVIOUR_VERSION,
            "config": dict(self.config),
            "shards": [list(s) for s in self.shards],
            "funnels": self.funnels.to_json(),
            "ab_votes": self.ab_votes.to_json(),
            "histograms": self.histograms.to_json(),
            "rating": [
                {"key": key,
                 "speed": cell["speed"].to_json(),
                 "quality": cell["quality"].to_json()}
                for key, cell in self.rating.items()
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "StudyPartial":
        if state.get("kind") != "study-partial":
            raise ValueError(
                f"not a study partial (kind={state.get('kind')!r})")
        partial = cls(
            config=dict(state["config"]),
            shards=[list(s) for s in state.get("shards", [])],
            funnels=CountTable.from_json(state["funnels"]),
            ab_votes=CountTable.from_json(state["ab_votes"]),
            histograms=CountTable.from_json(state["histograms"]),
        )
        for entry in state.get("rating", []):
            partial.rating[str(entry["key"])] = {
                "speed": StreamingMoments.from_json(entry["speed"]),
                "quality": StreamingMoments.from_json(entry["quality"]),
            }
        return partial

    def write(self, path: Union[str, Path]) -> None:
        """Atomically write the sealed partial state to ``path``."""
        from repro.testbed.store import seal_record

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp")
        tmp.write_text(json.dumps(seal_record(self.to_state())))
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Union[str, Path],
             check_behaviour: bool = True) -> "StudyPartial":
        """Read one sealed partial, verifying checksum and behaviour pin."""
        from repro.testbed.harness import SIM_BEHAVIOUR_VERSION
        from repro.testbed.store import StaleCampaignError, record_intact

        try:
            state = json.loads(Path(path).read_text())
        except json.JSONDecodeError as error:
            raise ValueError(
                f"study partial {path} is torn (invalid JSON: {error}); "
                f"its worker crashed mid-flush") from None
        if not isinstance(state, dict) or not record_intact(state):
            raise ValueError(
                f"study partial {path} failed its checksum")
        recorded = state.get("sim_behaviour")
        if check_behaviour and recorded is not None and \
                int(recorded) != SIM_BEHAVIOUR_VERSION:
            raise StaleCampaignError(
                f"study partial {path} was recorded under "
                f"SIM_BEHAVIOUR_VERSION={recorded}, but the current "
                f"simulator is version {SIM_BEHAVIOUR_VERSION}")
        return cls.from_state(state)


def partial_config(
    plan: StudyPlan,
    seed: int,
    participants_scale: float,
    block_size: int,
    groups: Sequence[str],
    params: PerceptionParams = DEFAULT_PARAMS,
) -> Dict[str, object]:
    """The merge identity shared by all shards of one study run."""
    return {
        "seed": int(seed),
        "participants_scale": float(participants_scale),
        "block_size": int(block_size),
        "groups": list(groups),
        "plan": {
            "sites": list(plan.sites),
            "networks": list(plan.networks),
            "stacks": list(plan.stacks),
            "pairs": [list(pair) for pair in plan.pairs],
        },
        "params": repr(params),
    }


def build_partial(
    index: ConditionIndex,
    plan: Optional[StudyPlan] = None,
    seed: int = 0,
    participants_scale: float = 1.0,
    params: PerceptionParams = DEFAULT_PARAMS,
    groups: Sequence[str] = GROUP_ORDER,
    shard: Tuple[int, int] = (0, 1),
    block_size: int = STUDY_BLOCK,
) -> StudyPartial:
    """Aggregate one participant-block shard of both studies.

    Runs the vectorized engines with event draws skipped (the funnel is
    a pure function of the violation flags) and never materializes a
    session object; memory stays O(conditions), independent of the
    participant count.
    """
    if participants_scale <= 0:
        raise ValueError("participants_scale must be positive")
    plan = plan if plan is not None else index.plan()
    partial = StudyPartial(config=partial_config(
        plan, seed, participants_scale, block_size, groups, params))
    partial.shards = [[int(shard[0]), int(shard[1])]]

    for group in groups:
        behavior = GROUPS[group]
        _accumulate_ab(
            partial, index, plan, group,
            scaled_participants(behavior.participants_ab,
                                participants_scale, group),
            seed, params, shard, block_size)
        _accumulate_rating(
            partial, index, plan, group,
            scaled_participants(behavior.participants_rating,
                                participants_scale, group),
            seed, params, shard, block_size)
    return partial


def _accumulate_ab(
    partial: StudyPartial,
    index: ConditionIndex,
    plan: StudyPlan,
    group: str,
    participants: int,
    seed: int,
    params: PerceptionParams,
    shard: Tuple[int, int],
    block_size: int,
) -> None:
    engine = AbEngine(group, plan, params, lookup=index.lookup,
                      block_size=block_size)
    pool = engine.pool
    funnel_key = _key(group, "ab")
    vote_counts = np.zeros((len(pool), 3), dtype=np.int64)
    replay_sums = np.zeros(len(pool), dtype=np.int64)
    saw_any = False

    for block in engine.blocks(participants, seed, shard=shard,
                               with_events=False):
        alive, funnel = funnel_from_flags(block.flags, group, "ab")
        partial.funnels.add_vector(funnel_key, funnel.as_row())
        if not alive.any():
            continue
        saw_any = True
        indices = block.indices[alive].ravel()
        votes = block.votes[alive].ravel().astype(np.int64)
        replays = block.replays[alive].ravel()
        vote_counts += np.bincount(
            indices * 3 + votes,
            minlength=len(pool) * 3).reshape(len(pool), 3)
        replay_sums += np.bincount(
            indices, weights=replays,
            minlength=len(pool)).astype(np.int64)

    if not saw_any:
        return
    for pool_index, condition in enumerate(pool):
        counts = vote_counts[pool_index]
        if not counts.any() and replay_sums[pool_index] == 0:
            continue
        partial.ab_votes.add_vector(
            _key(group, condition.website, condition.network,
                 condition.stack_a, condition.stack_b),
            [int(counts[0]), int(counts[1]), int(counts[2]),
             int(replay_sums[pool_index])],
        )


def _accumulate_rating(
    partial: StudyPartial,
    index: ConditionIndex,
    plan: StudyPlan,
    group: str,
    participants: int,
    seed: int,
    params: PerceptionParams,
    shard: Tuple[int, int],
    block_size: int,
) -> None:
    engine = RatingEngine(group, plan, params, lookup=index.lookup,
                          block_size=block_size)
    funnel_key = _key(group, "rating")
    # Per (context pool index): running (n, Σx, Σx²) per score kind,
    # folded into Welford moments once per condition at the end.
    sums = [
        {which: (np.zeros(len(table.pool), dtype=np.int64),
                 np.zeros(len(table.pool)),
                 np.zeros(len(table.pool)))
         for which in ("speed", "quality")}
        for table in engine.tables
    ]
    hist = [np.zeros((len(table.pool), SCORE_BINS), dtype=np.int64)
            for table in engine.tables] if group == "internet" else None

    for block in engine.blocks(participants, seed, shard=shard,
                               with_events=False):
        alive, funnel = funnel_from_flags(block.flags, group, "rating")
        partial.funnels.add_vector(funnel_key, funnel.as_row())
        if not alive.any():
            continue
        column = 0
        for t, (table, indices) in enumerate(
                zip(engine.tables, block.indices)):
            take = indices.shape[1]
            span = slice(column, column + take)
            column += take
            idx = indices[alive].ravel()
            npool = len(table.pool)
            for which, matrix in (("speed", block.speed),
                                  ("quality", block.quality)):
                scores = matrix[alive, span].ravel()
                count, total, total_sq = sums[t][which]
                count += np.bincount(idx, minlength=npool)
                total += np.bincount(idx, weights=scores,
                                     minlength=npool)
                total_sq += np.bincount(idx, weights=scores * scores,
                                        minlength=npool)
            if hist is not None:
                # Speed-score histogram, for exact internet medians
                # (Figure 3 uses the speed votes).
                scores = block.speed[alive, span].ravel()
                bins = scores.astype(np.int64) - SCALE_MIN
                hist[t] += np.bincount(
                    idx * SCORE_BINS + bins,
                    minlength=npool * SCORE_BINS,
                ).reshape(npool, SCORE_BINS)

    for t, table in enumerate(engine.tables):
        for pool_index, condition in enumerate(table.pool):
            cell_key = _key(group, table.context, condition.website,
                            condition.network, condition.stack)
            for which in ("speed", "quality"):
                count, total, total_sq = sums[t][which]
                if count[pool_index] == 0:
                    continue
                moments = _moments_from_sums(
                    int(count[pool_index]), float(total[pool_index]),
                    float(total_sq[pool_index]))
                partial.rating_cell(cell_key)[which].merge(moments)
            if hist is not None and hist[t][pool_index].any():
                partial.histograms.add_vector(
                    _key("speed", condition.website, condition.network,
                         condition.stack),
                    [int(c) for c in hist[t][pool_index]])


def merge_partials(partials: Sequence[StudyPartial]) -> StudyPartial:
    """Merge shards into one partial (raises on empty or mixed configs)."""
    if not partials:
        raise ValueError("no study partials to merge")
    merged = partials[0]
    for partial in partials[1:]:
        merged.merge(partial)
    return merged


# -- report -------------------------------------------------------------------


def _histogram_median(counts: Sequence[int]) -> Optional[float]:
    """Exact ``statistics.median`` over an integer score histogram."""
    total = sum(counts)
    if total == 0:
        return None
    # The middle element(s) of the sorted expansion: positions
    # (total-1)//2 and total//2 (equal when total is odd).
    lower_pos, upper_pos = (total - 1) // 2, total // 2
    lower = upper = None
    cumulative = 0
    for offset, count in enumerate(counts):
        cumulative += count
        if lower is None and cumulative > lower_pos:
            lower = SCALE_MIN + offset
        if cumulative > upper_pos:
            upper = SCALE_MIN + offset
            break
    return (lower + upper) / 2.0


@dataclass
class StudyReport:
    """Rendered-ready study aggregates from merged partials."""

    funnels: List[FilterFunnel]
    ab_shares: Dict[Tuple[str, str], AbShares]
    rating_cells: List[RatingCell]
    agreement: List[ConditionAgreement]
    heatmap: Optional[CorrelationHeatmap]

    def render(self, reference: bool = True) -> str:
        from repro.report.tables import (
            render_figure3,
            render_figure4,
            render_figure5,
            render_figure6,
            render_table3,
        )

        sections = [render_table3(
            self.funnels, PAPER_TABLE3 if reference else None)]
        if self.agreement:
            sections.append(render_figure3(self.agreement))
        if self.ab_shares:
            sections.append(render_figure4(self.ab_shares))
        if self.rating_cells:
            sections.append(render_figure5(self.rating_cells))
        if self.heatmap is not None:
            sections.append(render_figure6(self.heatmap))
        return "\n\n".join(sections)


def build_report(partial: StudyPartial,
                 index: Optional[ConditionIndex] = None,
                 confidence: float = 0.99) -> StudyReport:
    """Table 3 + Figures 3-6 structures from one (merged) partial.

    ``index`` supplies the technical metrics for the Figure 6
    correlation heatmap; without it the heatmap is omitted.
    """
    from repro.analysis.ab import AbShares
    from repro.analysis.agreement import ConditionAgreement
    from repro.analysis.rating import RatingCell

    funnels: List[FilterFunnel] = []
    for group in partial.config.get("groups", GROUP_ORDER):
        for study in ("ab", "rating"):
            funnel = partial.funnel(str(group), study)
            if funnel is not None:
                funnels.append(funnel)

    # Figure 4: microworker vote shares per (pair, network), summed
    # across websites — the same aggregation as ``ab_vote_shares``.
    shares_raw: Dict[Tuple[str, str], List[int]] = {}
    for key, counts in partial.ab_votes.items():
        group, _, network, stack_a, stack_b = key.split(_SEP)
        if group != "microworker":
            continue
        cell = shares_raw.setdefault(
            (f"{stack_a} vs. {stack_b}", network), [0, 0, 0, 0])
        for position, count in enumerate(counts):
            cell[position] += count
    ab_shares = {
        (pair_label, network): AbShares(
            pair_label=pair_label,
            network=network,
            votes_a=votes[0],
            votes_same=votes[1],
            votes_b=votes[2],
            mean_replays=votes[3] / total if (total := sum(votes[:3]))
            else 0.0,
        )
        for (pair_label, network), votes in shares_raw.items()
    }

    # Figure 5: microworker speed mean+CI per (context, network, stack),
    # merged across websites — the same cells as ``rating_means``.
    fig5: Dict[Tuple[str, str, str], StreamingMoments] = {}
    # Figure 3 inputs: per-condition moments across contexts.
    lab_by_condition: Dict[Tuple[str, str, str], StreamingMoments] = {}
    mw_by_condition: Dict[Tuple[str, str, str], StreamingMoments] = {}
    # Figure 6 inputs: microworker per-site moments, context-filtered.
    fig6: Dict[Tuple[str, str, str], StreamingMoments] = {}
    for key, cell in partial.rating.items():
        group, context, website, network, stack = key.split(_SEP)
        speed = cell["speed"]
        if group == "microworker":
            fig5.setdefault((context, network, stack),
                            StreamingMoments()).merge(speed.copy())
            mw_by_condition.setdefault(
                (website, network, stack),
                StreamingMoments()).merge(speed.copy())
            if CONTEXTS_FOR_NETWORK.get(network, context) == context:
                fig6.setdefault((website, network, stack),
                                StreamingMoments()).merge(speed.copy())
        elif group == "lab":
            lab_by_condition.setdefault(
                (website, network, stack),
                StreamingMoments()).merge(speed.copy())
    rating_cells = [
        RatingCell(context=context, network=network, stack=stack,
                   ci=moments.ci(confidence))
        for (context, network, stack), moments in sorted(fig5.items())
    ]

    # Figure 3: lab-tested conditions, ordered by lab mean.
    agreement: List[ConditionAgreement] = []
    for condition in sorted(lab_by_condition):
        website, network, stack = condition
        lab_moments = lab_by_condition[condition]
        mw_moments = mw_by_condition.get(condition)
        hist_row = partial.histograms.row(
            _key("speed", website, network, stack))
        agreement.append(ConditionAgreement(
            condition=condition,
            lab=lab_moments.ci(confidence) if lab_moments.count else None,
            microworker=mw_moments.ci(confidence)
            if mw_moments is not None and mw_moments.count else None,
            internet_median=_histogram_median(hist_row)
            if hist_row is not None else None,
        ))
    agreement.sort(key=lambda row: row.lab.mean if row.lab else 0.0)

    heatmap = _build_heatmap(fig6, index) if index is not None else None
    return StudyReport(funnels=funnels, ab_shares=ab_shares,
                       rating_cells=rating_cells, agreement=agreement,
                       heatmap=heatmap)


def _build_heatmap(
    votes: Dict[Tuple[str, str, str], StreamingMoments],
    index: ConditionIndex,
) -> Optional["CorrelationHeatmap"]:
    """Figure 6 from per-site vote moments + the condition index."""
    from repro.analysis.correlation import METRIC_ORDER, CorrelationHeatmap
    from repro.analysis.stats import pearson_r

    stacks = sorted({key[2] for key in votes})
    networks = sorted({key[1] for key in votes})
    values: Dict[Tuple[str, str, str], float] = {}
    for stack in stacks:
        for network in networks:
            sites = sorted({key[0] for key in votes
                            if key[1] == network and key[2] == stack})
            if len(sites) < 2:
                continue
            mean_votes = [votes[(site, network, stack)].mean
                          for site in sites]
            for metric in METRIC_ORDER:
                metric_values = [
                    index.lookup(site, network, stack)
                    .selected_metrics[metric]
                    for site in sites
                ]
                values[(stack, metric, network)] = pearson_r(
                    metric_values, mean_votes)
    if not values:
        return None
    return CorrelationHeatmap(values=values, stacks=tuple(stacks),
                              networks=tuple(networks))


# -- warm serve index ---------------------------------------------------------


class StudyIndex:
    """Warm per-condition lookups for ``repro study --serve``.

    Construction does all the work (aggregating the partial into plain
    dicts); :meth:`query` is pure dictionary lookups plus a little
    formatting, so each request answers well inside the latency budget.
    """

    def __init__(self, index: ConditionIndex,
                 partial: Optional[StudyPartial] = None,
                 confidence: float = 0.99):
        self._conditions: Dict[Tuple[str, str, str], ConditionStats] = {}
        self._mos: Dict[Tuple[str, str, str, str, str, str], dict] = {}
        self._ab: Dict[Tuple[str, str, str, str, str], dict] = {}
        self._anchors: Dict[Tuple[str, str], float] = {}
        for website in index.websites:
            for network in index.networks:
                stacks = [stack for stack in index.stacks
                          if (website, network, stack) in index]
                for stack in stacks:
                    self._conditions[(website, network, stack)] = \
                        index.lookup(website, network, stack)
                if stacks:
                    self._anchors.update(compute_anchors(
                        index.lookup, [website], [network], stacks))
        if partial is not None:
            for key, cell in partial.rating.items():
                group, context, website, network, stack = key.split(_SEP)
                for which in ("speed", "quality"):
                    moments = cell[which]
                    if moments.count == 0:
                        continue
                    ci = moments.ci(confidence)
                    self._mos[(group, context, website, network, stack,
                               which)] = {
                        "mos": moments.mean,
                        "n": moments.count,
                        "ci": [ci.lower, ci.upper],
                    }
            for key, counts in partial.ab_votes.items():
                group, website, network, stack_a, stack_b = \
                    key.split(_SEP)
                total = counts[0] + counts[1] + counts[2]
                if total == 0:
                    continue
                self._ab[(group, website, network, stack_a, stack_b)] = {
                    "votes": {"a": counts[0], "same": counts[1],
                              "b": counts[2]},
                    "shares": {
                        "a": counts[0] / total,
                        "same": counts[1] / total,
                        "b": counts[2] / total,
                    },
                    "n": total,
                    "mean_replays": counts[3] / total,
                }

    @property
    def conditions(self) -> int:
        return len(self._conditions)

    def query(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one request; never raises (errors come back as JSON)."""
        try:
            return self._dispatch(request)
        except Exception as error:  # noqa: BLE001 - protocol boundary
            # str(KeyError) wraps its message in quotes; unwrap it.
            message = error.args[0] if isinstance(error, KeyError) \
                and error.args else str(error)
            return {"ok": False, "error": str(message)}

    def _dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "condition":
            stats = self._condition(request)
            return {"ok": True, "op": "condition",
                    "website": stats.website, "network": stats.network,
                    "stack": stats.stack,
                    "metrics": dict(stats.selected_metrics),
                    "video_duration": stats.video_duration}
        if op == "mos":
            return self._query_mos(request)
        if op == "ab":
            return self._query_ab(request)
        return {"ok": False,
                "error": f"unknown op {op!r}; expected one of "
                         f"ping/condition/mos/ab"}

    def _condition(self, request: Dict[str, object]) -> ConditionStats:
        key = (str(request.get("website")), str(request.get("network")),
               str(request.get("stack")))
        stats = self._conditions.get(key)
        if stats is None:
            raise KeyError(f"unknown condition {'/'.join(key)}")
        return stats

    def _query_mos(self, request: Dict[str, object]) -> Dict[str, object]:
        stats = self._condition(request)
        group = str(request.get("group", "microworker"))
        context = str(request.get("context", "free_time"))
        which = str(request.get("which", "speed"))
        observed = self._mos.get((group, context, stats.website,
                                  stats.network, stats.stack, which))
        # Model prediction is always available (it only needs the
        # condition's SI and the across-stack anchor); observed study
        # moments ride along when the partial covered this cell.
        from repro.study.perception import true_opinion

        anchor = self._anchors.get((stats.website, stats.network),
                                   stats.si)
        predicted = true_opinion(stats.si, context, anchor_si=anchor)
        response: Dict[str, object] = {
            "ok": True, "op": "mos", "website": stats.website,
            "network": stats.network, "stack": stats.stack,
            "context": context, "which": which, "group": group,
            "predicted_mos": predicted,
        }
        if observed is not None:
            response.update(observed)
        return response

    def _ab_cells(self, group, website, network, stack_a, stack_b):
        if website is not None:
            cell = self._ab.get((group, str(website), network,
                                 stack_a, stack_b))
            return [cell] if cell is not None else []
        return [cell for key, cell in self._ab.items()
                if key[0] == group and key[2] == network
                and key[3] == stack_a and key[4] == stack_b]

    def _query_ab(self, request: Dict[str, object]) -> Dict[str, object]:
        group = str(request.get("group", "microworker"))
        network = str(request.get("network"))
        stack_a = str(request.get("stack_a"))
        stack_b = str(request.get("stack_b"))
        website = request.get("website")
        # Vote cells are stored in the study plan's pair orientation;
        # answer the reversed question too by swapping the a/b tallies.
        flipped = False
        cells = self._ab_cells(group, website, network, stack_a, stack_b)
        if not cells:
            cells = self._ab_cells(group, website, network,
                                   stack_b, stack_a)
            flipped = True
        if not cells:
            where = f"{website}/{network}" if website is not None \
                else network
            raise KeyError(f"no A/B votes for {group} {where}/"
                           f"{stack_a} vs {stack_b}")
        votes = {"a": 0, "same": 0, "b": 0}
        replays = 0.0
        for cell in cells:
            for side in votes:
                votes[side] += cell["votes"][side]
            replays += cell["mean_replays"] * cell["n"]
        if flipped:
            votes["a"], votes["b"] = votes["b"], votes["a"]
        total = sum(votes.values())
        return {
            "ok": True, "op": "ab", "group": group, "network": network,
            "stack_a": stack_a, "stack_b": stack_b,
            "website": website,
            "votes": votes,
            "shares": {side: count / total
                       for side, count in votes.items()},
            "n": total,
            "mean_replays": replays / total,
        }
