"""Study-data release: CSV export of sessions and votes.

The paper publishes its anonymised study data (https://study.netray.io);
this module produces the equivalent release for a simulated campaign —
one CSV per study with one row per vote, plus a participants table and a
conditions table with the technical metrics of every shown video.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.study.ab import AbSession
from repro.study.rating import RatingSession
from repro.testbed.harness import Testbed

AB_VOTE_FIELDS = [
    "participant", "group", "website", "network", "stack_a", "stack_b",
    "left_is_a", "answer", "vote", "confidence", "replays", "duration_s",
]

RATING_VOTE_FIELDS = [
    "participant", "group", "website", "network", "stack", "context",
    "speed_score", "quality_score", "replays", "duration_s",
]

PARTICIPANT_FIELDS = [
    "participant", "group", "study", "gender", "age_group", "valid",
]

CONDITION_FIELDS = [
    "website", "network", "stack", "FVC", "SI", "VC85", "LVC", "PLT",
    "video_duration_s",
]


def _write_csv(fields: Sequence[str], rows: Iterable[Dict[str, object]]) -> str:
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(fields))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def ab_votes_csv(sessions: Sequence[AbSession]) -> str:
    """One row per A/B vote."""
    rows = []
    for session in sessions:
        for trial in session.trials:
            condition = trial.condition
            rows.append({
                "participant": session.participant_id,
                "group": session.group,
                "website": condition.website,
                "network": condition.network,
                "stack_a": condition.stack_a,
                "stack_b": condition.stack_b,
                "left_is_a": int(trial.left_is_a),
                "answer": trial.answer,
                "vote": trial.vote,
                "confidence": round(trial.confidence, 4),
                "replays": trial.replays,
                "duration_s": round(trial.duration_s, 3),
            })
    return _write_csv(AB_VOTE_FIELDS, rows)


def rating_votes_csv(sessions: Sequence[RatingSession]) -> str:
    """One row per rating vote."""
    rows = []
    for session in sessions:
        for trial in session.trials:
            condition = trial.condition
            rows.append({
                "participant": session.participant_id,
                "group": session.group,
                "website": condition.website,
                "network": condition.network,
                "stack": condition.stack,
                "context": trial.context,
                "speed_score": trial.speed_score,
                "quality_score": trial.quality_score,
                "replays": trial.replays,
                "duration_s": round(trial.duration_s, 3),
            })
    return _write_csv(RATING_VOTE_FIELDS, rows)


def participants_csv(all_sessions: Sequence, valid_sessions: Sequence,
                     study: str) -> str:
    """One row per participant with their filter verdict."""
    valid_ids = {(s.group, s.participant_id) for s in valid_sessions}
    rows = []
    for session in all_sessions:
        rows.append({
            "participant": session.participant_id,
            "group": session.group,
            "study": study,
            "gender": session.gender,
            "age_group": session.age_group,
            "valid": int((session.group, session.participant_id)
                         in valid_ids),
        })
    return _write_csv(PARTICIPANT_FIELDS, rows)


def conditions_csv(testbed: Testbed,
                   conditions: Iterable) -> str:
    """Technical metrics of every shown condition."""
    rows = []
    for website, network, stack in conditions:
        recording = testbed.recording(website, network, stack)
        metrics = recording.selected_metrics
        rows.append({
            "website": website,
            "network": network,
            "stack": stack,
            "FVC": round(metrics["FVC"], 4),
            "SI": round(metrics["SI"], 4),
            "VC85": round(metrics["VC85"], 4),
            "LVC": round(metrics["LVC"], 4),
            "PLT": round(metrics["PLT"], 4),
            "video_duration_s": round(recording.video_duration, 3),
        })
    return _write_csv(CONDITION_FIELDS, rows)


def export_campaign(campaign, testbed: Testbed,
                    directory: Union[str, Path]) -> List[Path]:
    """Write the full data release of a campaign; returns written paths.

    Produces, per group: ``ab_votes_<group>.csv`` and
    ``rating_votes_<group>.csv`` (filtered sessions only, like the
    published data) and ``participants_<group>_<study>.csv`` (all
    entrants with their filter verdict), plus one ``conditions.csv``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    def emit(name: str, content: str) -> None:
        path = directory / name
        path.write_text(content)
        written.append(path)

    shown = set()
    for group, result in campaign.ab.items():
        kept = campaign.ab_filtered[group]
        emit(f"ab_votes_{group}.csv", ab_votes_csv(kept))
        emit(f"participants_{group}_ab.csv",
             participants_csv(result.sessions, kept, "ab"))
        for session in kept:
            for trial in session.trials:
                c = trial.condition
                shown.add((c.website, c.network, c.stack_a))
                shown.add((c.website, c.network, c.stack_b))
    for group, result in campaign.rating.items():
        kept = campaign.rating_filtered[group]
        emit(f"rating_votes_{group}.csv", rating_votes_csv(kept))
        emit(f"participants_{group}_rating.csv",
             participants_csv(result.sessions, kept, "rating"))
        for session in kept:
            for trial in session.trials:
                c = trial.condition
                shown.add((c.website, c.network, c.stack))
    emit("conditions.csv", conditions_csv(testbed, sorted(shown)))
    return written
