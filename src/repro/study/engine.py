"""Vectorized study engine: the block-draw contract.

Participants are simulated in fixed-size blocks (:data:`STUDY_BLOCK`
columns). Each ``(study, group)`` pair owns a root entropy —
``spawn_rng(seed, study, group).integers(2**31)`` — and block ``b`` draws
from the RNG-tree child ``SeedSequence(entropy, spawn_key=(b,))``. Within
a block every source of randomness is drawn as one batched call in a
fixed order (the *draw contract* below), so:

* the vectorized kernels and the per-vote scalar reference
  (:mod:`repro.study.reference`) consume byte-identical streams and
  produce exactly equal studies (pinned by ``tests/test_study_equivalence``);
* any block — hence any participant — can be regenerated in isolation,
  which is what lets study work shard across campaign workers.

A/B draw contract per block (``n`` participants × ``V`` videos):

1. traits — 5 batched draws (:func:`~repro.study.participants.draw_trait_block`)
2. violation flags — one ``(7, n)`` uniform block
3. condition order — one row-wise pool permutation
4. side assignment — ``(n, V)`` uniforms
5. vote uniforms (detect / same / guess / confuse) — one ``(4, n, V)`` block
6. undetected-confidence uniforms, detected-confidence noise
7. rusher answers, confidences and durations
8. replays — one Poisson draw with per-trial rates
9. decision-time noise — ``N(0, 0.35)``
10. event-log draws — last, so aggregation-only consumers can skip them

The rating contract is analogous (per-context permutations; two vote-noise
blocks; rusher score blocks). All branch thresholds that involve
transcendentals (the psychometric logistic, the confusion exponential,
the opinion curve) are evaluated through the shared ``*_np`` kernels in
:mod:`repro.study.perception`, never through :mod:`math`, keeping both
paths bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.study.design import (
    AB_VIDEO_COUNTS,
    RATING_VIDEO_COUNTS,
    AbCondition,
    RatingCondition,
    StudyPlan,
)
from repro.study.participants import (
    GROUPS,
    GroupBehavior,
    TraitBlock,
    draw_trait_block,
)
from repro.study.perception import (
    DEFAULT_PARAMS,
    PerceptionParams,
    condition_appeal,
    confusion_probability_np,
    detection_probability_np,
    evidence,
    stall_score_np,
    true_opinion_np,
    quantize_score,
    website_appeal,
)
from repro.study.session import (
    EventDraws,
    draw_event_block,
    draw_violation_block,
    rusher_mask,
)
from repro.util.rng import spawn_rng

#: Participants per block: the sharding granularity of the study RNG tree.
STUDY_BLOCK = 256

#: Condition-coordinate vote codes.
VOTE_A, VOTE_SAME, VOTE_B = 0, 1, 2
#: Screen-coordinate answer codes (the order of the rusher choice).
ANSWER_LEFT, ANSWER_RIGHT, ANSWER_SAME = 0, 1, 2


@dataclass(frozen=True, slots=True)
class ConditionStats:
    """The per-condition facts the perception models consume.

    A reduction of :class:`~repro.testbed.harness.RecordingSummary` to a
    few floats — small enough to index every condition of a campaign in
    memory, which is what makes warm ``repro study --serve`` lookups
    possible.
    """

    website: str
    network: str
    stack: str
    si: float
    fvc: float
    lvc: float
    vc85: float
    plt: float
    video_duration: float

    @property
    def selected_metrics(self) -> Dict[str, float]:
        """Metric mapping in the shape analyses expect."""
        return {"FVC": self.fvc, "SI": self.si, "VC85": self.vc85,
                "LVC": self.lvc, "PLT": self.plt}


def condition_stats(summary) -> ConditionStats:
    """Reduce a recording summary to :class:`ConditionStats`.

    A recording made over a non-direct path topology (split-connection
    proxies — see :mod:`repro.netem.proxy`) is a distinct viewing
    condition, so its network label is qualified with the path mode
    (``SAT+LAN@split``); everything downstream treats it as just
    another network axis value. Direct recordings keep their plain
    label, so existing campaigns aggregate identically.
    """
    metrics = summary.selected_metrics
    path = getattr(summary, "path", "direct")
    network = summary.network if path == "direct" \
        else f"{summary.network}@{path}"
    return ConditionStats(
        website=summary.website,
        network=network,
        stack=summary.stack,
        si=float(metrics["SI"]),
        fvc=float(metrics["FVC"]),
        lvc=float(metrics["LVC"]),
        vc85=float(metrics["VC85"]),
        plt=float(metrics["PLT"]),
        video_duration=float(summary.video_duration),
    )


class TestbedLookup:
    """Adapter: ``(website, network, stack) -> ConditionStats`` from a
    live :class:`~repro.testbed.harness.Testbed`."""

    def __init__(self, testbed):
        self._testbed = testbed
        self._cache: Dict[Tuple[str, str, str], ConditionStats] = {}

    def __call__(self, website: str, network: str,
                 stack: str) -> ConditionStats:
        key = (website, network, stack)
        if key not in self._cache:
            self._cache[key] = condition_stats(
                self._testbed.recording(website, network, stack))
        return self._cache[key]


def study_entropy(seed: int, study: str, group: str) -> int:
    """Root entropy of one (study, group) block tree."""
    return int(spawn_rng(seed, study, group).integers(2 ** 31))


def block_rng(entropy: int, index: int) -> np.random.Generator:
    """Generator of block ``index`` — random access into the tree."""
    sequence = np.random.SeedSequence(entropy=entropy, spawn_key=(index,))
    # simlint: allow[no-ambient-rng] -- entropy comes from spawn_rng(seed, study, group); spawn_key gives shard workers O(1) random access to any block's stream
    return np.random.default_rng(sequence)


def _check_shard(shard: Tuple[int, int]) -> Tuple[int, int]:
    index, step = int(shard[0]), int(shard[1])
    if step < 1 or not 0 <= index < step:
        raise ValueError(f"shard must be (index, step) with "
                         f"0 <= index < step, got {shard!r}")
    return index, step


def _block_spans(participants: int,
                 block_size: int) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(block_index, start_pid, size)`` covering all participants."""
    if block_size < 1:
        raise ValueError(f"block_size must be positive, got {block_size}")
    for b in range(-(-participants // block_size)):
        start = b * block_size
        yield b, start, min(block_size, participants - start)


def compute_anchors(lookup: Callable[[str, str, str], ConditionStats],
                    websites: Sequence[str], networks: Sequence[str],
                    stacks: Sequence[str]) -> Dict[Tuple[str, str], float]:
    """Expected pace per (website, network): across-stack median SI.

    The single-stimulus anchor of the rating model — the replacement for
    the testbed-bound ``_AnchorCache`` that works from any lookup.
    """
    anchors: Dict[Tuple[str, str], float] = {}
    for website in websites:
        for network in networks:
            values = sorted(lookup(website, network, stack).si
                            for stack in stacks)
            anchors[(website, network)] = values[len(values) // 2]
    return anchors


# -- A/B engine ---------------------------------------------------------------


@dataclass(slots=True)
class AbDraws:
    """Raw randomness of one A/B block, in contract order."""

    start: int
    traits: TraitBlock
    flags: np.ndarray          # (7, n) bool
    indices: np.ndarray        # (n, V) pool indices
    left_u: np.ndarray         # (n, V)
    detect_u: np.ndarray       # (n, V)
    same_u: np.ndarray         # (n, V)
    guess_u: np.ndarray        # (n, V)
    confuse_u: np.ndarray      # (n, V)
    conf_u: np.ndarray         # (n, V)
    conf_noise: np.ndarray     # (n, V) N(0, 0.08)
    rush_answer: np.ndarray    # (n, V) ints 0..2
    rush_conf: np.ndarray      # (n, V)
    rush_dur_u: np.ndarray     # (n, V)
    replays: np.ndarray        # (n, V) Poisson
    decision_noise: np.ndarray  # (n, V) N(0, 0.35)
    events: Optional[EventDraws]


@dataclass(slots=True)
class AbBlock:
    """One computed A/B block: everything a session or aggregate needs."""

    start: int
    traits: TraitBlock
    flags: np.ndarray        # (7, n) bool
    rusher: np.ndarray       # (n,) bool
    indices: np.ndarray      # (n, V)
    left_is_a: np.ndarray    # (n, V) bool
    votes: np.ndarray        # (n, V) int8, condition coordinates
    answers: np.ndarray      # (n, V) int8, screen coordinates
    confidence: np.ndarray   # (n, V)
    replays: np.ndarray      # (n, V) int
    durations: np.ndarray    # (n, V)
    events: Optional[EventDraws]

    @property
    def size(self) -> int:
        return int(self.rusher.size)


class AbEngine:
    """Per-(group, plan) A/B study machinery shared by all code paths."""

    def __init__(
        self,
        group: str,
        plan: Optional[StudyPlan] = None,
        params: PerceptionParams = DEFAULT_PARAMS,
        lookup: Optional[Callable[[str, str, str], ConditionStats]] = None,
        block_size: int = STUDY_BLOCK,
    ):
        if lookup is None:
            raise ValueError("AbEngine needs a condition lookup")
        self.group = group
        self.behavior = GROUPS[group]
        self.plan = plan if plan is not None else StudyPlan()
        self.params = params
        self.block_size = block_size
        self.pool: List[AbCondition] = self.plan.ab_pool(group)
        if not self.pool:
            raise ValueError("A/B condition pool is empty")
        self.videos = min(AB_VIDEO_COUNTS[group], len(self.pool))

        stats_a = [lookup(c.website, c.network, c.stack_a)
                   for c in self.pool]
        stats_b = [lookup(c.website, c.network, c.stack_b)
                   for c in self.pool]
        self.signed = np.array(
            [evidence(a.si, b.si, params)
             for a, b in zip(stats_a, stats_b)], dtype=float)
        self.magnitude = np.abs(self.signed)
        self.p_confusion = confusion_probability_np(self.magnitude, params)
        self.video_len = np.array(
            [max(a.video_duration, b.video_duration)
             for a, b in zip(stats_a, stats_b)], dtype=float)
        fast_bonus = np.array(
            [1.3 if c.network in ("DSL", "LTE") else 0.7
             for c in self.pool], dtype=float)
        self.lam = (self.behavior.replay_rate
                    / (1.0 + 2.0 * self.magnitude)) * fast_bonus

    def draw(self, rng: np.random.Generator, start: int, size: int,
             with_events: bool = True) -> AbDraws:
        """Draw one block following the contract (see module docstring)."""
        shape = (size, self.videos)
        traits = draw_trait_block(rng, self.behavior, size)
        flags = draw_violation_block(rng, self.behavior, "ab",
                                     traits.diligence)
        perm = rng.permuted(
            np.tile(np.arange(len(self.pool)), (size, 1)), axis=1)
        indices = perm[:, :self.videos]
        left_u = rng.random(shape)
        vote_u = rng.random((4,) + shape)
        conf_u = rng.random(shape)
        conf_noise = rng.normal(0.0, 0.08, shape)
        rush_answer = rng.integers(0, 3, shape)
        rush_conf = rng.random(shape)
        rush_dur_u = rng.random(shape)
        replays = rng.poisson(self.lam[indices])
        decision_noise = rng.normal(0.0, 0.35, shape)
        events = draw_event_block(rng, size, self.videos) \
            if with_events else None
        return AbDraws(
            start=start, traits=traits, flags=flags, indices=indices,
            left_u=left_u, detect_u=vote_u[0], same_u=vote_u[1],
            guess_u=vote_u[2], confuse_u=vote_u[3], conf_u=conf_u,
            conf_noise=conf_noise, rush_answer=rush_answer,
            rush_conf=rush_conf, rush_dur_u=rush_dur_u, replays=replays,
            decision_noise=decision_noise, events=events,
        )

    def blocks(
        self,
        participants: int,
        seed: int,
        shard: Tuple[int, int] = (0, 1),
        with_events: bool = True,
        compute: Optional[Callable[[AbDraws, "AbEngine"], AbBlock]] = None,
    ) -> Iterator[AbBlock]:
        """Yield computed blocks of this study, in participant order."""
        if compute is None:
            compute = compute_ab_block
        index, step = _check_shard(shard)
        entropy = study_entropy(seed, "ab", self.group)
        for b, start, size in _block_spans(participants, self.block_size):
            if b % step != index:
                continue
            rng = block_rng(entropy, b)
            yield compute(self.draw(rng, start, size, with_events), self)


def compute_ab_block(draws: AbDraws, engine: AbEngine) -> AbBlock:
    """Vectorized A/B votes for a whole block at once."""
    params = engine.params
    indices = draws.indices
    signed = engine.signed[indices]
    magnitude = engine.magnitude[indices]
    left_is_a = draws.left_u < 0.5

    p_detect = detection_probability_np(
        magnitude, draws.traits.jnd_threshold[:, None], params)
    detected = draws.detect_u < p_detect
    undetected = ~detected
    same_und = undetected & (draws.same_u < params.undetected_same_prob)
    guess_a = undetected & ~same_und & (draws.guess_u < 0.5)
    confused = detected & (draws.confuse_u < engine.p_confusion[indices])
    vote_a_detected = detected & ((signed > 0) ^ confused)

    votes = np.full(indices.shape, VOTE_B, dtype=np.int8)
    votes[same_und] = VOTE_SAME
    votes[vote_a_detected | guess_a] = VOTE_A

    confidence = np.where(
        detected,
        np.maximum(0.0, np.minimum(
            1.0, 0.4 + 0.5 * magnitude + draws.conf_noise)),
        np.where(same_und, 0.3 + 0.4 * draws.conf_u, 0.4 * draws.conf_u),
    )
    decision = np.exp(np.log(engine.behavior.decision_time_ab)
                      + draws.decision_noise)
    durations = engine.video_len[indices] * (1 + draws.replays) + decision

    answers = np.where(
        votes == VOTE_SAME, ANSWER_SAME,
        np.where((votes == VOTE_A) == left_is_a,
                 ANSWER_LEFT, ANSWER_RIGHT),
    ).astype(np.int8)

    rusher = rusher_mask(draws.flags)
    rush = rusher[:, None]
    rush_answers = draws.rush_answer.astype(np.int8)
    rush_votes = np.where(
        rush_answers == ANSWER_SAME, VOTE_SAME,
        np.where((rush_answers == ANSWER_LEFT) == left_is_a,
                 VOTE_A, VOTE_B),
    ).astype(np.int8)

    return AbBlock(
        start=draws.start,
        traits=draws.traits,
        flags=draws.flags,
        rusher=rusher,
        indices=indices,
        left_is_a=left_is_a,
        votes=np.where(rush, rush_votes, votes),
        answers=np.where(rush, rush_answers, answers),
        confidence=np.where(rush, draws.rush_conf, confidence),
        replays=np.where(rush, 0, draws.replays),
        durations=np.where(rush, 1.0 + 3.0 * draws.rush_dur_u, durations),
        events=draws.events,
    )


# -- rating engine ------------------------------------------------------------


@dataclass(slots=True)
class RatingDraws:
    """Raw randomness of one rating block, in contract order."""

    start: int
    traits: TraitBlock
    flags: np.ndarray                     # (7, n) bool
    indices: Tuple[np.ndarray, ...]       # per context, (n, take)
    speed_noise: np.ndarray               # (n, V)
    quality_noise: np.ndarray             # (n, V)
    rush_speed: np.ndarray                # (n, V) ints 10..70
    rush_quality: np.ndarray              # (n, V) ints 10..70
    rush_dur_u: np.ndarray                # (n, V)
    replays: np.ndarray                   # (n, V) Poisson
    decision_noise: np.ndarray            # (n, V) N(0, 0.35)
    events: Optional[EventDraws]


@dataclass(slots=True)
class RatingBlock:
    """One computed rating block."""

    start: int
    traits: TraitBlock
    flags: np.ndarray         # (7, n) bool
    rusher: np.ndarray        # (n,) bool
    indices: Tuple[np.ndarray, ...]
    speed: np.ndarray         # (n, V) quantized scores
    quality: np.ndarray       # (n, V)
    replays: np.ndarray       # (n, V) int
    durations: np.ndarray     # (n, V)
    events: Optional[EventDraws]

    @property
    def size(self) -> int:
        return int(self.rusher.size)


@dataclass(slots=True)
class RatingContextTable:
    """Per-condition rating model inputs for one context pool."""

    context: str
    take: int
    pool: List[RatingCondition]
    base: np.ndarray            # noise-free opinion incl. appeal
    stall: np.ndarray
    video_len: np.ndarray


class RatingEngine:
    """Per-(group, plan) rating study machinery shared by all paths."""

    def __init__(
        self,
        group: str,
        plan: Optional[StudyPlan] = None,
        params: PerceptionParams = DEFAULT_PARAMS,
        lookup: Optional[Callable[[str, str, str], ConditionStats]] = None,
        block_size: int = STUDY_BLOCK,
    ):
        if lookup is None:
            raise ValueError("RatingEngine needs a condition lookup")
        self.group = group
        self.behavior = GROUPS[group]
        self.plan = plan if plan is not None else StudyPlan()
        self.params = params
        self.block_size = block_size
        self.noise_scale = params.rating_noise_sd \
            * self.behavior.noise_multiplier

        pools = {context: self.plan.rating_pool(group, context)
                 for context in RATING_VIDEO_COUNTS[group]}
        stacks = list(self.plan.stacks)
        anchors: Dict[Tuple[str, str], float] = {}
        for pool in pools.values():
            for c in pool:
                if (c.website, c.network) not in anchors:
                    values = sorted(lookup(c.website, c.network, stack).si
                                    for stack in stacks)
                    anchors[(c.website, c.network)] = values[len(values) // 2]
        self.tables: List[RatingContextTable] = []
        for context, count in RATING_VIDEO_COUNTS[group].items():
            pool = pools[context]
            if not pool:
                raise ValueError(f"rating pool for {context!r} is empty")
            stats = [lookup(c.website, c.network, c.stack) for c in pool]
            si = np.array([s.si for s in stats], dtype=float)
            anchor = np.array(
                [anchors[(c.website, c.network)] for c in pool], dtype=float)
            salience = 1.0 / (1.0 + np.maximum(anchor, 0.0)
                              / params.appeal_salience_scale)
            appeal = np.array(
                [website_appeal(c.website, params)
                 + condition_appeal(c.website, c.network, params)
                 for c in pool], dtype=float)
            base = true_opinion_np(si, context, params, anchor) \
                + salience * appeal
            stall = stall_score_np(np.array([s.fvc for s in stats]),
                                   np.array([s.lvc for s in stats]))
            video_len = np.array([s.video_duration for s in stats],
                                 dtype=float)
            self.tables.append(RatingContextTable(
                context=context, take=min(count, len(pool)), pool=pool,
                base=base, stall=stall, video_len=video_len,
            ))
        self.videos = sum(table.take for table in self.tables)

    def draw(self, rng: np.random.Generator, start: int, size: int,
             with_events: bool = True) -> RatingDraws:
        """Draw one block following the contract (see module docstring)."""
        shape = (size, self.videos)
        traits = draw_trait_block(rng, self.behavior, size)
        flags = draw_violation_block(rng, self.behavior, "rating",
                                     traits.diligence)
        indices = tuple(
            rng.permuted(np.tile(np.arange(len(table.pool)), (size, 1)),
                         axis=1)[:, :table.take]
            for table in self.tables
        )
        if self.behavior.heavy_tailed:
            speed_noise = rng.standard_t(2, shape) * self.noise_scale
            quality_noise = rng.standard_t(2, shape) * self.noise_scale
        else:
            speed_noise = rng.normal(0.0, self.noise_scale, shape)
            quality_noise = rng.normal(0.0, self.noise_scale, shape)
        rush_speed = rng.integers(10, 71, shape)
        rush_quality = rng.integers(10, 71, shape)
        rush_dur_u = rng.random(shape)
        replays = rng.poisson(0.25 * self.behavior.replay_rate, shape)
        decision_noise = rng.normal(0.0, 0.35, shape)
        events = draw_event_block(rng, size, self.videos) \
            if with_events else None
        return RatingDraws(
            start=start, traits=traits, flags=flags, indices=indices,
            speed_noise=speed_noise, quality_noise=quality_noise,
            rush_speed=rush_speed, rush_quality=rush_quality,
            rush_dur_u=rush_dur_u, replays=replays,
            decision_noise=decision_noise, events=events,
        )

    def blocks(
        self,
        participants: int,
        seed: int,
        shard: Tuple[int, int] = (0, 1),
        with_events: bool = True,
        compute: Optional[Callable[["RatingDraws", "RatingEngine"],
                                   RatingBlock]] = None,
    ) -> Iterator[RatingBlock]:
        """Yield computed blocks of this study, in participant order."""
        if compute is None:
            compute = compute_rating_block
        index, step = _check_shard(shard)
        entropy = study_entropy(seed, "rating", self.group)
        for b, start, size in _block_spans(participants, self.block_size):
            if b % step != index:
                continue
            rng = block_rng(entropy, b)
            yield compute(self.draw(rng, start, size, with_events), self)


def compute_rating_block(draws: RatingDraws,
                         engine: RatingEngine) -> RatingBlock:
    """Vectorized rating scores for a whole block at once."""
    params = engine.params
    base = np.concatenate(
        [table.base[idx]
         for table, idx in zip(engine.tables, draws.indices)], axis=1)
    stall = np.concatenate(
        [table.stall[idx]
         for table, idx in zip(engine.tables, draws.indices)], axis=1)
    video_len = np.concatenate(
        [table.video_len[idx]
         for table, idx in zip(engine.tables, draws.indices)], axis=1)

    bias = draws.traits.rating_bias[:, None]
    speed = quantize_score(base + bias + draws.speed_noise)
    quality = quantize_score(
        base + bias - params.quality_stall_penalty * stall
        + draws.quality_noise)
    decision = np.exp(np.log(engine.behavior.decision_time_rating)
                      + draws.decision_noise)
    durations = video_len * (1 + draws.replays) + decision

    rusher = rusher_mask(draws.flags)
    rush = rusher[:, None]
    return RatingBlock(
        start=draws.start,
        traits=draws.traits,
        flags=draws.flags,
        rusher=rusher,
        indices=draws.indices,
        speed=np.where(rush, draws.rush_speed.astype(float), speed),
        quality=np.where(rush, draws.rush_quality.astype(float), quality),
        replays=np.where(rush, 0, draws.replays),
        durations=np.where(rush, 1.0 + 3.0 * draws.rush_dur_u, durations),
        events=draws.events,
    )
