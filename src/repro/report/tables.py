"""Plain-text renderers: regenerate every table and figure as ASCII."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.ab import AbShares
from repro.analysis.agreement import ConditionAgreement
from repro.analysis.correlation import CorrelationHeatmap
from repro.analysis.rating import RatingCell
from repro.analysis.streaming import GridReport
from repro.netem.profiles import NETWORKS
from repro.study.design import scale_label
from repro.study.filtering import FilterFunnel
from repro.transport.config import STACKS


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    columns = [list(map(str, col)) for col in
               zip(*([headers] + [list(r) for r in rows]))]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def grid_cell_text(report: GridReport, row, col) -> str:
    """One pivot cell: ``mean ±half*`` (``*`` = Welch p < alpha vs the
    baseline column); ``-`` for an empty cell."""
    stat = report.cell(row, col)
    if stat is None:
        return "-"
    return f"{stat.ci.mean:.2f} ±{stat.ci.halfwidth:.2f}{stat.mark}"


def grid_headers_and_rows(report: GridReport):
    """Headers + body rows shared by the ASCII and markdown renderers."""
    columns = report.columns()
    headers = [*report.row_axes] + [str(c) for c in columns]
    rows = []
    for row_key in report.row_keys():
        cells = [grid_cell_text(report, row_key, col) for col in columns]
        rows.append([str(v) for v in row_key] + cells)
    return headers, rows


def grid_caption(report: GridReport) -> str:
    """Table 1/2-style caption describing the pivot."""
    baseline = report.baseline_column()
    marks = f"; * = Welch p < {report.alpha:g} vs {baseline}" \
        if baseline is not None else ""
    return (f"{report.metric} mean ±{report.confidence:.0%} CI by "
            f"{' x '.join(report.row_axes)} (rows) x {report.col_axis} "
            f"(columns){marks}")


def grid_degraded_note(report: GridReport) -> Optional[str]:
    """Degraded-coverage footer text, or None for a complete report.

    ``missing`` is duck-typed so reports deserialized without coverage
    metadata (and older GridReport pickles) render unchanged.
    """
    missing = getattr(report, "missing", None)
    if not missing:
        return None
    expected = getattr(report, "expected", None)
    shown = ", ".join(missing[:4])
    if len(missing) > 4:
        shown += f", ... ({len(missing) - 4} more)"
    total = f" of {expected} expected" if expected is not None else ""
    return (f"DEGRADED: {len(missing)} condition(s){total} have no "
            f"recording (crashed or quarantined workers): {shown}")


def render_grid(report: GridReport) -> str:
    """Table 1/2-style pivot of a campaign grid (see
    :class:`~repro.analysis.streaming.GridReport`).

    A report whose ``mark_coverage`` recorded missing conditions gains a
    DEGRADED footer; complete reports render exactly as before.
    """
    if report.is_empty:
        return "(no recorded conditions to report)"
    headers, rows = grid_headers_and_rows(report)
    rendered = grid_caption(report) + "\n" + render_table(headers, rows)
    note = grid_degraded_note(report)
    if note is not None:
        rendered += "\n" + note
    return rendered


def render_table1() -> str:
    """Table 1: the protocol configurations."""
    rows = [(s.name, s.description) for s in STACKS]
    return "Table 1: protocol configurations\n" + \
        render_table(("Protocol", "Description"), rows)


def render_table2() -> str:
    """Table 2: the network configurations."""
    rows = []
    for profile in NETWORKS:
        row = profile.table_row()
        rows.append((row["Network"], row["Uplink"], row["Downlink"],
                     row["min. RTT"], row["Loss"], row["Queue"]))
    return "Table 2: network configurations\n" + render_table(
        ("Network", "Uplink", "Downlink", "min. RTT", "Loss", "Queue"), rows)


def render_table3(funnels: Sequence[FilterFunnel],
                  reference: Optional[Mapping[Tuple[str, str],
                                              Sequence[int]]] = None) -> str:
    """Table 3: participation after each filter rule.

    ``reference`` optionally adds the paper's numbers for comparison.
    """
    headers = ["Group", "Study", "-", "R1", "R2", "R3", "R4", "R5", "R6",
               "R7"]
    rows: List[List[object]] = []
    for funnel in funnels:
        rows.append([funnel.group, funnel.study] + funnel.as_row())
        if reference is not None:
            ref = reference.get((funnel.group, funnel.study))
            if ref is not None:
                rows.append(["  (paper)", funnel.study] + list(ref))
    return "Table 3: participation and conformance filtering\n" + \
        render_table(headers, rows)


def _bar(share: float, width: int = 20) -> str:
    filled = int(round(share * width))
    return "#" * filled + "." * (width - filled)


def render_figure4(shares: Mapping[Tuple[str, str], AbShares]) -> str:
    """Figure 4: A/B vote shares per pair and network."""
    lines = ["Figure 4: A/B study vote shares "
             "(prefer A | no difference | prefer B)"]
    networks = [p.name for p in NETWORKS]
    pairs = sorted({key[0] for key in shares})
    for network in networks:
        lines.append(f"\n  [{network}]")
        for pair in pairs:
            cell = shares.get((pair, network))
            if cell is None:
                continue
            lines.append(
                f"    {pair:24s} "
                f"A {cell.share_a:5.1%} {_bar(cell.share_a, 12)} | "
                f"= {cell.share_same:5.1%} {_bar(cell.share_same, 12)} | "
                f"B {cell.share_b:5.1%} {_bar(cell.share_b, 12)}   "
                f"(n={cell.total}, replays {cell.mean_replays:.2f})"
            )
    return "\n".join(lines)


def render_figure5(cells: Sequence[RatingCell]) -> str:
    """Figure 5: mean rating + 99% CI per stack in each setting."""
    lines = ["Figure 5: rating study mean votes (99% CI) per setting"]
    contexts = ("work", "free_time", "plane")
    stack_order = [s.name for s in STACKS]
    for context in contexts:
        networks = sorted({c.network for c in cells if c.context == context})
        for network in networks:
            lines.append(f"\n  [{context} / {network}]")
            for stack in stack_order:
                cell = next((c for c in cells if c.context == context
                             and c.network == network and c.stack == stack),
                            None)
                if cell is None:
                    continue
                lines.append(
                    f"    {stack:9s} {cell.mean:5.1f} "
                    f"[{cell.ci.lower:5.1f},{cell.ci.upper:5.1f}] "
                    f"({scale_label(cell.mean)}, n={cell.ci.n})"
                )
    return "\n".join(lines)


def render_figure3(rows: Sequence[ConditionAgreement]) -> str:
    """Figure 3: per-condition agreement of the three groups."""
    lines = ["Figure 3: rating votes over lab-tested conditions "
             "(ordered by lab mean)",
             f"{'condition':44s} {'lab mean[CI]':22s} "
             f"{'µWorker mean[CI]':22s} {'inet med':9s} agree"]
    for row in rows:
        website, network, stack = row.condition
        label = f"{website}/{network}/{stack}"
        lab = (f"{row.lab.mean:5.1f} [{row.lab.lower:5.1f},"
               f"{row.lab.upper:5.1f}]") if row.lab else "-"
        mw = (f"{row.microworker.mean:5.1f} [{row.microworker.lower:5.1f},"
              f"{row.microworker.upper:5.1f}]") if row.microworker else "-"
        inet = f"{row.internet_median:6.1f}" if row.internet_median \
            is not None else "-"
        agree = {"True": "yes", "False": "NO", "None": "?"}[
            str(row.microworker_within_lab_ci)]
        lines.append(f"{label:44s} {lab:22s} {mw:22s} {inet:9s} {agree}")
    return "\n".join(lines)


def render_figure6(heatmap: CorrelationHeatmap) -> str:
    """Figure 6: Pearson r heatmap, metrics x networks per stack."""
    lines = ["Figure 6: Pearson correlation of technical metrics with "
             "user ratings (more negative = better)"]
    networks = [p.name for p in NETWORKS if p.name in heatmap.networks]
    for stack in heatmap.stacks:
        lines.append(f"\n  [{stack}]")
        lines.append("    " + "metric".ljust(6)
                     + "".join(n.rjust(8) for n in networks))
        for metric in heatmap.metrics:
            cells = []
            for network in networks:
                r = heatmap.r(stack, metric, network)
                cells.append(f"{r:8.2f}" if r is not None else "       -")
            lines.append("    " + metric.ljust(6) + "".join(cells))
    return "\n".join(lines)
