"""ASCII rendering of the paper's tables and figures."""

from repro.report.markdown import md_grid, md_table
from repro.report.tables import (
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_grid,
    render_table,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "md_grid",
    "md_table",
    "render_grid",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
]
