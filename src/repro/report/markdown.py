"""Markdown renderers for the paper's artifacts.

The ASCII renderers in :mod:`repro.report.tables` target terminals; these
produce GitHub-flavoured markdown for READMEs, lab notebooks and CI
summaries.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from repro.analysis.ab import AbShares
from repro.analysis.correlation import CorrelationHeatmap
from repro.analysis.rating import RatingCell
from repro.analysis.streaming import GridReport
from repro.netem.profiles import NETWORKS
from repro.study.design import scale_label
from repro.study.filtering import FilterFunnel
from repro.transport.config import STACKS


def md_table(headers: Sequence[str],
             rows: Sequence[Sequence[object]]) -> str:
    """A GitHub-flavoured markdown table."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    sep = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(str(cell) for cell in row) + " |"
            for row in rows]
    return "\n".join([head, sep] + body)


def md_grid(report: GridReport) -> str:
    """Markdown twin of :func:`repro.report.tables.render_grid`."""
    from repro.report.tables import (
        grid_caption,
        grid_degraded_note,
        grid_headers_and_rows,
    )

    if report.is_empty:
        return "_(no recorded conditions to report)_"
    headers, rows = grid_headers_and_rows(report)
    rendered = f"### {grid_caption(report)}\n\n" + md_table(headers, rows)
    note = grid_degraded_note(report)
    if note is not None:
        rendered += f"\n\n_{note}_"
    return rendered


def md_table1() -> str:
    rows = [(s.name, s.description) for s in STACKS]
    return "### Table 1 — protocol configurations\n\n" + \
        md_table(("Protocol", "Description"), rows)


def md_table2() -> str:
    rows = []
    for profile in NETWORKS:
        row = profile.table_row()
        rows.append((row["Network"], row["Uplink"], row["Downlink"],
                     row["min. RTT"], row["Loss"], row["Queue"]))
    return "### Table 2 — network configurations\n\n" + md_table(
        ("Network", "Uplink", "Downlink", "min. RTT", "Loss", "Queue"),
        rows)


def md_table3(funnels: Sequence[FilterFunnel]) -> str:
    headers = ["Group", "Study", "-", "R1", "R2", "R3", "R4", "R5", "R6",
               "R7"]
    rows = [[f.group, f.study] + f.as_row() for f in funnels]
    return "### Table 3 — participation and filtering\n\n" + \
        md_table(headers, rows)


def md_figure4(shares: Mapping[Tuple[str, str], AbShares]) -> str:
    headers = ("Pair", "Network", "prefer A", "no diff", "prefer B",
               "n", "replays")
    rows = []
    for network in [p.name for p in NETWORKS]:
        for pair in sorted({key[0] for key in shares}):
            cell = shares.get((pair, network))
            if cell is None:
                continue
            rows.append((pair, network, f"{cell.share_a:.1%}",
                         f"{cell.share_same:.1%}", f"{cell.share_b:.1%}",
                         cell.total, f"{cell.mean_replays:.2f}"))
    return "### Figure 4 — A/B vote shares\n\n" + md_table(headers, rows)


def md_figure5(cells: Sequence[RatingCell]) -> str:
    headers = ("Context", "Network", "Stack", "Mean", "99% CI", "Label",
               "n")
    rows = []
    for cell in cells:
        rows.append((cell.context, cell.network, cell.stack,
                     f"{cell.mean:.1f}",
                     f"[{cell.ci.lower:.1f}, {cell.ci.upper:.1f}]",
                     scale_label(cell.mean), cell.ci.n))
    return "### Figure 5 — rating means\n\n" + md_table(headers, rows)


def md_figure6(heatmap: CorrelationHeatmap) -> str:
    networks = [p.name for p in NETWORKS if p.name in heatmap.networks]
    sections = ["### Figure 6 — Pearson r (metric vs votes)"]
    for stack in heatmap.stacks:
        rows = []
        for metric in heatmap.metrics:
            row = [metric]
            for network in networks:
                r = heatmap.r(stack, metric, network)
                row.append(f"{r:.2f}" if r is not None else "-")
            rows.append(row)
        sections.append(f"\n**{stack}**\n\n" +
                        md_table(["metric"] + networks, rows))
    return "\n".join(sections)
