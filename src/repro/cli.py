"""Command-line interface: ``python -m repro <command>``.

Commands
--------
tables            print Table 1 and Table 2
load SITE         load one corpus site over every network and stack
sweep             record the named-site grid (populates the disk cache)
campaign          run a declarative, resumable campaign over a process pool
study             Table 3 + Figures 3-6; shardable over a campaign dir
                  (``--shard I:K``), warm query server (``--serve``)
sites             list the 36 corpus sites with their characteristics
export SITE PATH  write a corpus site as HAR-flavoured JSON
lint              determinism & hot-path static analysis (simlint)

``campaign`` is the scale-out entry point: arbitrary axes (sites,
networks incl. ``--loss-sweep`` derived profiles, stacks, seeds), live
progress, a worker failure policy, and exact resume — re-running the
same spec skips every already-recorded condition. ``campaign --report``
streams the recorded summaries through the incremental accumulators and
renders a Table 1/2-style pivot (mean ± CI per cell, Welch significance
marks); with ``--campaign-dir`` it reports post-hoc on a finished
campaign directory without re-running anything.

Campaigns also scale *out*: ``campaign --workers N`` runs N cooperative
lease-claiming workers locally, and ``campaign --join DIR`` joins an
existing campaign directory from any host that mounts it — workers
never simulate a condition twice and each flushes a mergeable partial
aggregate (see ``repro.testbed.distributed`` and
``docs/architecture.md``). ``--report --campaign-dir DIR
--from-partials`` merges those per-worker shards instead of re-reading
every summary.

And they are chaos-hardened: ``campaign --supervise N`` runs N workers
under a supervisor that respawns crashes with capped backoff and
quarantines conditions that keep killing workers;
``--inject-faults PLAN`` arms a deterministic fault plan (crashes,
heartbeat stalls, torn manifest writes, lease storms — see
``repro.testbed.faults``); ``campaign --status DIR`` prints a one-shot
health report over a live or finished campaign directory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from statistics import fmean
from typing import List, Optional, Tuple

from repro.analysis.streaming import GRID_AXES, GridReport
from repro.lint.cli import add_lint_arguments
from repro.lint.cli import run as run_lint_cli
from repro.browser.engine import load_page
from repro.browser.metrics import VisualMetrics
from repro.netem.middlebox import MIDDLEBOX_PRESETS
from repro.netem.profiles import NETWORKS, network_by_name, with_loss
from repro.report import (
    md_grid,
    render_grid,
    render_table,
    render_table1,
    render_table2,
)
from repro.study.design import StudyPlan
from repro.testbed import faults
from repro.testbed.campaign import (
    Campaign,
    CampaignSpec,
    ProgressPrinter,
    pool_context,
)
from repro.testbed.distributed import (
    LeaseConfig,
    default_worker_id,
    join_campaign,
    merge_partial_reports,
    run_worker,
)
from repro.testbed.supervisor import (
    Supervisor,
    campaign_status,
    render_status,
)
from repro.testbed.harness import Testbed
from repro.testbed.store import StaleCampaignError, SummaryStore
from repro.transport.config import STACKS
from repro.web.corpus import CORPUS_SITE_NAMES, build_corpus, build_site
from repro.web.io import save_website

#: Sites used by the quick `sweep` / `study` commands.
DEFAULT_SITES = [
    "wikipedia.org", "gov.uk", "etsy.com", "spotify.com", "apache.org",
    "wordpress.com",
]

#: Grid-defining `repro campaign` flag defaults, shared between
#: build_parser() and the --join conflict guard (a value equal to its
#: default is treated as "not explicitly requested").
CAMPAIGN_GRID_DEFAULTS = {
    "seeds": [0],
    "paths": ["direct"],
    "middleboxes": ["none"],
    "runs": 5,
    "timeout": 180.0,
    "metric": "PLT",
    "name": "cli-campaign",
}


def _cmd_tables(_: argparse.Namespace) -> int:
    print(render_table1())
    print()
    print(render_table2())
    return 0


def _cmd_sites(_: argparse.Namespace) -> int:
    rows = []
    for site in build_corpus(seed=0):
        summary = site.summary()
        rows.append((summary["name"], summary["objects"],
                     f"{summary['bytes'] / 1000:.0f} kB",
                     summary["hosts"]))
    print(render_table(("site", "objects", "weight", "hosts"), rows))
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    site = build_site(args.site, seed=args.seed)
    print(f"{site.name}: {site.object_count} objects, "
          f"{site.total_bytes / 1000:.0f} kB, {site.host_count} hosts\n")
    rows = []
    for profile in NETWORKS:
        for stack in STACKS:
            result = load_page(site, profile, stack, seed=args.seed)
            m = result.metrics
            rows.append((profile.name, stack.name, f"{m.fvc:.2f}",
                         f"{m.si:.2f}", f"{m.plt:.2f}",
                         "ok" if result.completed else "timeout"))
    print(render_table(("network", "stack", "FVC", "SI", "PLT", "state"),
                       rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    testbed = Testbed(runs=args.runs, seed=args.seed)
    sites = args.sites or DEFAULT_SITES
    summaries = testbed.sweep(sites=sites)
    print(f"recorded {len(summaries)} conditions "
          f"({len(sites)} sites x 4 networks x 5 stacks), "
          f"{args.runs} runs each")
    mean_si = fmean(s.si for s in summaries)
    print(f"mean SI over the grid: {mean_si:.2f} s")
    return 0


def _parse_loss_sweep(entries: List[str]) -> List[object]:
    """Parse ``NETWORK:p1,p2,...`` entries into derived profiles."""
    profiles = []
    for entry in entries:
        try:
            network, rates = entry.split(":", 1)
            parsed = [float(rate) for rate in rates.split(",") if rate]
        except ValueError:
            raise SystemExit(
                f"bad --loss-sweep entry {entry!r}; "
                f"expected NETWORK:p1,p2,... (e.g. DSL:0.01,0.02)")
        try:
            base = network_by_name(network)
        except KeyError as error:
            raise SystemExit(f"repro campaign: error: {error.args[0]}")
        profiles.extend(with_loss(base, rate) for rate in parsed)
    return profiles


def _parse_pivot(pivot: str) -> Tuple[Tuple[str, ...], str]:
    """``axis,...,axis`` → (row axes, column axis); last axis = columns."""
    axes = [axis.strip() for axis in pivot.split(",") if axis.strip()]
    if len(axes) < 2:
        raise SystemExit(
            f"repro campaign: error: --pivot needs at least two axes "
            f"(rows...,columns), got {pivot!r}")
    for axis in axes:
        if axis not in GRID_AXES:
            raise SystemExit(
                f"repro campaign: error: unknown pivot axis {axis!r}; "
                f"expected one of {', '.join(GRID_AXES)}")
    if len(set(axes)) != len(axes):
        raise SystemExit(
            f"repro campaign: error: --pivot axes must be distinct, "
            f"got {pivot!r}")
    return tuple(axes[:-1]), axes[-1]


def _make_report(args: argparse.Namespace) -> GridReport:
    rows, cols = _parse_pivot(args.pivot)
    if args.report_metric not in VisualMetrics.METRIC_NAMES:
        raise SystemExit(
            f"repro campaign: error: unknown metric "
            f"{args.report_metric!r}; expected one of "
            f"{', '.join(VisualMetrics.METRIC_NAMES)}")
    if not 0.0 < args.confidence < 1.0:
        raise SystemExit(
            f"repro campaign: error: --confidence must be strictly "
            f"between 0 and 1, got {args.confidence:g}")
    return GridReport(rows=rows, cols=cols, metric=args.report_metric,
                      confidence=args.confidence)


def _print_report(report: GridReport, fmt: str) -> None:
    if fmt == "md":
        print(md_grid(report))
    elif fmt == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(render_grid(report))


def _worker_entry(campaign_dir: str, cache_dir: Optional[str],
                  worker_id: str, lease: LeaseConfig,
                  report_args: argparse.Namespace,
                  run_kwargs: dict) -> None:
    """Child cooperative worker (``--workers N`` spawns N-1 of these)."""
    campaign = join_campaign(campaign_dir, cache_dir=cache_dir)
    report = _make_report(report_args)
    result = run_worker(campaign, worker_id=worker_id, lease=lease,
                        report=report, **run_kwargs)
    sys.exit(0 if result.ok else 1)


def _lease_config(args: argparse.Namespace) -> LeaseConfig:
    try:
        return LeaseConfig(ttl_s=args.lease_ttl,
                           heartbeat_s=args.lease_heartbeat,
                           poll_s=args.lease_poll)
    except ValueError as error:
        raise SystemExit(f"repro campaign: error: {error}")


def _parse_fault_plan(text: str) -> "faults.FaultPlan":
    try:
        return faults.FaultPlan.parse(text)
    except (ValueError, OSError, json.JSONDecodeError) as error:
        raise SystemExit(
            f"repro campaign: error: bad --inject-faults plan: {error}")


def _report_merged(args: argparse.Namespace, campaign: Campaign,
                   info) -> None:
    """Render the merged (possibly degraded) post-run report."""
    try:
        merged = merge_partial_reports(campaign.campaign_dir,
                                       report=_make_report(args),
                                       cache_dir=args.cache_dir)
    except (StaleCampaignError, ValueError) as error:
        # E.g. shards left by an earlier run with different report
        # flags. The recordings themselves are fine — fall back to
        # streaming every summary rather than dropping the report
        # after a possibly long run.
        print(f"warning: cannot merge worker partials ({error}); "
              f"reporting from the recorded summaries instead",
              file=sys.stderr)
        merged = _make_report(args)
        store = SummaryStore.open(campaign.campaign_dir,
                                  cache_dir=args.cache_dir)
        merged.consume(store)
    if info is sys.stdout:
        print()
    _print_report(merged, args.format)


def _cmd_campaign_supervised(args: argparse.Namespace,
                             campaign: Campaign, info) -> int:
    """Supervised execution: ``--supervise N`` (+ ``--inject-faults``)."""
    lease = _lease_config(args)
    workers = args.supervise
    if workers < 1:
        raise SystemExit(
            f"repro campaign: error: --supervise must be at least 1, "
            f"got {workers}")
    plan = faults.FaultPlan()
    if args.inject_faults:
        plan = _parse_fault_plan(args.inject_faults)
    processes = args.processes
    if processes is None and workers > 1:
        processes = max(1, ((os.cpu_count() or 2) - 1) // workers)
    run_kwargs = dict(
        processes=processes,
        batch_size=args.batch_size,
        failure_policy=args.failure_policy,
        claim_chunk=args.claim_chunk,
    )
    campaign.write_spec()
    print(f"supervising {workers} worker(s) over "
          f"{campaign.campaign_dir}"
          + (f", faults: {plan.describe()}" if plan else ""),
          file=info)
    supervisor = Supervisor(
        campaign.campaign_dir,
        workers=workers,
        cache_dir=args.cache_dir,
        plan=plan,
        lease=lease,
        retry_budget=args.retry_budget,
        max_respawns=args.max_respawns,
        run_kwargs=run_kwargs,
    )
    outcome = supervisor.run()
    print(outcome.describe(), file=info)
    if args.report:
        _report_merged(args, campaign, info)
    return 0 if outcome.ok else 1


def _cmd_campaign_distributed(args: argparse.Namespace,
                              campaign: Campaign, info) -> int:
    """Cooperative lease-claiming execution (--join and/or --workers)."""
    lease = _lease_config(args)
    workers = args.workers if args.workers is not None else 1
    if workers < 1:
        raise SystemExit(
            f"repro campaign: error: --workers must be at least 1, "
            f"got {workers}")
    if args.claim_chunk is not None and args.claim_chunk < 1:
        raise SystemExit(
            f"repro campaign: error: --claim-chunk must be at least 1, "
            f"got {args.claim_chunk}")
    base_id = args.worker_id if args.worker_id is not None \
        else default_worker_id()
    # N workers on one box share the CPUs; an explicit --processes is
    # honoured per worker.
    processes = args.processes
    if processes is None and workers > 1:
        processes = max(1, ((os.cpu_count() or 2) - 1) // workers)
    run_kwargs = dict(
        processes=processes,
        batch_size=args.batch_size,
        failure_policy=args.failure_policy,
        claim_chunk=args.claim_chunk,
    )
    campaign.write_spec()
    print(f"worker {base_id!r} joining campaign dir "
          f"{campaign.campaign_dir} ({workers} local worker"
          f"{'s' if workers != 1 else ''}, lease ttl {lease.ttl_s:g}s)",
          file=info)
    children = []
    ctx = pool_context()
    for index in range(1, workers):
        child = ctx.Process(
            target=_worker_entry,
            args=(str(campaign.campaign_dir), args.cache_dir,
                  f"{base_id}-{index}", lease, args, run_kwargs),
        )
        child.start()
        children.append(child)
    progress = None if args.quiet else ProgressPrinter(stream=info)
    try:
        result = run_worker(
            campaign,
            worker_id=base_id if workers == 1 else f"{base_id}-0",
            lease=lease, report=_make_report(args), progress=progress,
            **run_kwargs)
    except BaseException:
        # Abort/Ctrl-C in this worker must not leave the siblings
        # silently finishing the grid while the interpreter waits on
        # them at exit. SIGINT first: it unwinds the child through its
        # own pool/lease cleanup (a bare terminate() would orphan the
        # child's pool workers mid-simulation).
        import signal

        for child in children:
            if child.is_alive():
                try:
                    os.kill(child.pid, signal.SIGINT)
                except OSError:
                    pass
        for child in children:
            child.join(timeout=10)
        for child in children:
            if child.is_alive():
                child.terminate()
            child.join()
        raise
    failed_children = 0
    for child in children:
        child.join()
        failed_children += child.exitcode != 0
    counts = result.counts
    print(f"done in {result.duration_s:.1f}s: "
          + ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
          + (f"; {failed_children} worker(s) reported failures"
             if failed_children else ""), file=info)
    if not result.ok:
        for failed in result.failed:
            last = (failed.error or "").strip().splitlines()
            print(f"FAILED {failed.condition.label}: "
                  f"{last[-1] if last else 'unknown error'}", file=info)
    if args.report:
        _report_merged(args, campaign, info)
    return 0 if result.ok and not failed_children else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.status is not None:
        # One-shot read-only health report; safe against a live run.
        status = campaign_status(args.status, ttl_s=args.lease_ttl)
        if args.format == "json":
            print(json.dumps(status, indent=2))
        else:
            print(render_status(status))
        return 0
    if args.supervise is not None and args.workers is not None:
        raise SystemExit(
            "repro campaign: error: --supervise conflicts with "
            "--workers; the supervisor spawns and respawns its own "
            "worker subprocesses")
    if args.inject_faults and args.supervise is None:
        # Unsupervised chaos smoke: arm the plan in this process and
        # export it so --workers children (run_worker) pick it up too.
        plan = _parse_fault_plan(args.inject_faults)
        os.environ[faults.PLAN_ENV] = plan.describe()
        faults.install(plan,
                       worker=os.environ.get(faults.WORKER_ENV, "*"))
    if args.campaign_dir is not None:
        # Post-hoc reporting: stream a finished campaign directory's
        # summaries through the accumulators — nothing is re-run.
        report = _make_report(args)
        if args.from_partials:
            try:
                merged = merge_partial_reports(
                    args.campaign_dir, report=report,
                    cache_dir=args.cache_dir,
                    check_behaviour=not args.allow_stale)
            except StaleCampaignError as error:
                raise SystemExit(
                    f"repro campaign: error: {error} (from the CLI: "
                    f"--allow-stale)")
            except ValueError as error:
                raise SystemExit(f"repro campaign: error: {error}")
            _print_report(merged, args.format)
            return 0
        try:
            store = SummaryStore.open(args.campaign_dir,
                                      cache_dir=args.cache_dir,
                                      check_behaviour=not args.allow_stale)
        except StaleCampaignError as error:
            raise SystemExit(
                f"repro campaign: error: {error} (from the CLI: "
                f"--allow-stale)")
        # recorded_count() is the manifest's claim (no summary loads,
        # legacy-manifest-proof); comparing it against what iteration
        # yields detects a wrong/pruned cache directory.
        listed = store.recorded_count()
        fed = 0
        for key, summary in store:
            report.add(key, summary)
            fed += 1
        if listed and not fed:
            print(f"repro campaign: error: manifest lists {listed} "
                  f"recorded conditions but none were found in the "
                  f"cache ({store.cache.directory}) — wrong or pruned "
                  f"--cache-dir?", file=sys.stderr)
            return 1
        if fed < listed:
            print(f"warning: {listed - fed} of {listed} recorded "
                  f"conditions missing from the cache "
                  f"({store.cache.directory}); the report covers the "
                  f"remaining {fed}", file=sys.stderr)
        _print_report(report, args.format)
        return 0
    # With a JSON report, stdout must stay machine-parseable: all
    # progress/banner lines move to stderr.
    info = sys.stderr if args.report and args.format == "json" \
        else sys.stdout
    if args.join is not None:
        _lease_config(args)  # reject bad lease flags before joining
        # The joined directory's spec.json is the single source of
        # truth for the grid — grid flags would silently disagree.
        # (Non-default == explicitly requested; re-passing a default
        # is indistinguishable and harmlessly identical.)
        defaults = CAMPAIGN_GRID_DEFAULTS
        for flag, conflicting in (
                ("--sites", bool(args.sites)),
                ("--networks", bool(args.networks)),
                ("--stacks", bool(args.stacks)),
                ("--loss-sweep", bool(args.loss_sweep)),
                ("--seeds", args.seeds != defaults["seeds"]),
                ("--paths", args.paths != defaults["paths"]),
                ("--middleboxes",
                 args.middleboxes != defaults["middleboxes"]),
                ("--runs", args.runs != defaults["runs"]),
                ("--timeout", args.timeout != defaults["timeout"]),
                ("--metric", args.metric != defaults["metric"]),
                ("--name", args.name != defaults["name"])):
            if conflicting:
                raise SystemExit(
                    f"repro campaign: error: {flag} conflicts with "
                    f"--join; the joined directory's spec.json "
                    f"defines the grid")
        try:
            campaign = join_campaign(args.join, cache_dir=args.cache_dir)
        except (FileNotFoundError, StaleCampaignError,
                ValueError) as error:
            raise SystemExit(f"repro campaign: error: {error}")
        if args.supervise is not None:
            return _cmd_campaign_supervised(args, campaign, info)
        return _cmd_campaign_distributed(args, campaign, info)
    try:
        networks: List[object] = [network_by_name(name)
                                  for name in (args.networks or [])]
    except KeyError as error:
        raise SystemExit(f"repro campaign: error: {error.args[0]}")
    if not networks:
        networks = list(NETWORKS)
    if args.loss_sweep:
        networks.extend(_parse_loss_sweep(args.loss_sweep))
    spec = CampaignSpec(
        sites=args.sites or DEFAULT_SITES,
        networks=networks,
        stacks=args.stacks,
        seeds=args.seeds,
        paths=args.paths,
        middleboxes=args.middleboxes,
        runs=args.runs,
        timeout=args.timeout,
        selection_metric=args.metric,
        name=args.name,
    )
    campaign = Campaign(spec, cache_dir=args.cache_dir)
    total = len(spec.conditions())
    paths_note = f" x {len(spec.paths)} paths" \
        if len(spec.paths) > 1 else ""
    if len(spec.middleboxes) > 1:
        paths_note += f" x {len(spec.middleboxes)} middleboxes"
    print(f"campaign {spec.name!r}: {total} conditions "
          f"({len(spec.sites)} sites x {len(spec.networks)} networks x "
          f"{len(spec.stacks)} stacks x {len(spec.seeds)} seeds"
          f"{paths_note}), {args.runs} runs each", file=info)
    print(f"manifest: {campaign.manifest_path}", file=info)
    if args.supervise is not None:
        return _cmd_campaign_supervised(args, campaign, info)
    if args.workers is not None:
        return _cmd_campaign_distributed(args, campaign, info)
    progress = None if args.quiet else ProgressPrinter(stream=info)
    report = _make_report(args) if args.report else None
    sink = None
    if report is not None:
        # Summaries stream into the accumulators as conditions settle;
        # rendering after the run needs no second pass over the grid.
        sink = lambda condition, summary: \
            report.add(condition.key, summary)  # noqa: E731
    result = campaign.run(
        processes=args.processes,
        failure_policy=args.failure_policy,
        progress=progress,
        batch_size=args.batch_size,
        sink=sink,
    )
    counts = result.counts
    rate = len(result.results) / result.duration_s if result.duration_s else 0
    print(f"done in {result.duration_s:.1f}s ({rate:.1f} conditions/s): "
          + ", ".join(f"{v} {k}" for k, v in sorted(counts.items())),
          file=info)
    if not result.ok:
        for failed in result.failed:
            last = (failed.error or "").strip().splitlines()
            print(f"FAILED {failed.condition.label}: "
                  f"{last[-1] if last else 'unknown error'}", file=info)
        return 1
    if report is not None:
        if info is sys.stdout:
            print()
        _print_report(report, args.format)
    else:
        mean_si = fmean(s.si for _, s in campaign.iter_summaries())
        print(f"mean SI over the grid: {mean_si:.2f} s")
    return 0


def _parse_shard(text: str) -> Tuple[int, int]:
    try:
        index_text, _, step_text = text.partition(":")
        index, step = int(index_text), int(step_text)
    except ValueError:
        raise SystemExit(
            f"repro study: error: --shard must look like I:K, "
            f"got {text!r}")
    if step < 1 or not 0 <= index < step:
        raise SystemExit(
            f"repro study: error: --shard needs 0 <= I < K, "
            f"got {text!r}")
    return index, step


def serve_study_queries(index, in_stream, out_stream) -> int:
    """JSON-lines query loop for ``repro study --serve``.

    One request object per input line; one response object per output
    line, annotated with the measured ``latency_ms``. Blank lines are
    ignored; ``quit`` ends the loop. Returns the number of requests
    answered.
    """
    import time

    answered = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        if line in ("quit", "exit"):
            break
        # simlint: allow[no-wallclock] -- measured serve latency reported to the client, not simulation input
        started = time.perf_counter()
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            response = {"ok": False, "error": f"invalid JSON: {error}"}
        else:
            response = index.query(request)
        response["latency_ms"] = round(
            # simlint: allow[no-wallclock] -- measured serve latency reported to the client, not simulation input
            (time.perf_counter() - started) * 1000.0, 3)
        print(json.dumps(response), file=out_stream, flush=True)
        answered += 1
    return answered


def _study_partial(index, plan, args, shard=(0, 1)):
    from repro.study.pipeline import build_partial

    return build_partial(index, plan, seed=args.seed,
                         participants_scale=args.scale, shard=shard)


def _merged_study_partial(index, plan, args, campaign_dir):
    """Merge flushed study partials; build inline when none exist."""
    from repro.study.pipeline import StudyPartial, merge_partials
    from repro.testbed.store import STUDY_PARTIALS_DIRNAME, SummaryStore

    store = SummaryStore.open(campaign_dir, cache_dir=args.cache_dir)
    paths = store.study_partial_paths()
    if not paths:
        return _study_partial(index, plan, args)
    try:
        return merge_partials([StudyPartial.load(path)
                               for path in paths])
    except ValueError as error:
        raise SystemExit(
            f"repro study: error: cannot merge "
            f"{STUDY_PARTIALS_DIRNAME}/: {error}")


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.study.pipeline import (
        ConditionIndex,
        StudyIndex,
        build_report,
    )
    from repro.testbed.store import (
        STUDY_PARTIALS_DIRNAME,
        StaleCampaignError,
    )

    shard = _parse_shard(args.shard) if args.shard else None
    if shard is not None and not args.campaign_dir:
        raise SystemExit(
            "repro study: error: --shard writes a partial into the "
            "campaign directory; pass --campaign-dir DIR")

    if args.campaign_dir:
        try:
            index = ConditionIndex.from_campaign_dir(
                args.campaign_dir, cache_dir=args.cache_dir)
        except (StaleCampaignError, FileNotFoundError) as error:
            raise SystemExit(f"repro study: error: {error}")
        plan = index.plan()
        if args.sites:
            missing = sorted(set(args.sites) - set(plan.sites))
            if missing:
                raise SystemExit(
                    f"repro study: error: campaign has no recordings "
                    f"for sites: {', '.join(missing)}")
            plan = StudyPlan(sites=list(args.sites),
                             networks=plan.networks,
                             stacks=plan.stacks, pairs=plan.pairs)
    else:
        sites = args.sites or DEFAULT_SITES
        testbed = Testbed(runs=args.runs, seed=args.seed)
        testbed.sweep(sites=sites)
        plan = StudyPlan(sites=sites)
        index = ConditionIndex.from_testbed(testbed, plan)

    if shard is not None:
        partial = _study_partial(index, plan, args, shard=shard)
        worker = args.worker_id or f"shard-{shard[0]}-of-{shard[1]}"
        path = (Path(args.campaign_dir) / STUDY_PARTIALS_DIRNAME /
                f"{worker}.json")
        partial.write(path)
        survivors = sum(row[-1] for _, row in partial.funnels.items())
        print(f"wrote study partial {path} "
              f"(shard {shard[0]}:{shard[1]}, "
              f"{survivors} surviving sessions)")
        return 0

    if args.serve:
        if args.campaign_dir:
            partial = _merged_study_partial(index, plan, args,
                                            args.campaign_dir)
        else:
            partial = _study_partial(index, plan, args)
        study_index = StudyIndex(index, partial)
        print(f"ready: {study_index.conditions} conditions warm; "
              f"one JSON query per line "
              f"(ops: ping/condition/mos/ab; 'quit' ends)",
              flush=True)
        serve_study_queries(study_index, sys.stdin, sys.stdout)
        return 0

    if args.campaign_dir:
        partial = _merged_study_partial(index, plan, args,
                                        args.campaign_dir)
    else:
        partial = _study_partial(index, plan, args)
    print(build_report(partial, index).render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    site = build_site(args.site, seed=args.seed)
    save_website(site, args.path)
    print(f"wrote {site.name} ({site.object_count} objects) to {args.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Perceiving QUIC (CoNEXT 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables 1 and 2")
    sub.add_parser("sites", help="list the 36 corpus sites")

    p_load = sub.add_parser("load", help="load one site everywhere")
    p_load.add_argument("site", choices=list(CORPUS_SITE_NAMES))
    p_load.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser("sweep", help="record the condition grid")
    p_sweep.add_argument("--runs", type=int, default=5)
    p_sweep.add_argument("--seed", type=int, default=3)
    p_sweep.add_argument("--sites", nargs="*", default=None)

    p_campaign = sub.add_parser(
        "campaign",
        help="run a declarative, resumable campaign over a process pool")
    p_campaign.add_argument("--sites", nargs="*", default=None,
                            help="corpus sites (default: the quick six)")
    p_campaign.add_argument("--networks", nargs="*", default=None,
                            help="Table 2 network names (default: all four)")
    p_campaign.add_argument("--stacks", nargs="*", default=None,
                            help="Table 1 stack names (default: all five)")
    p_campaign.add_argument("--seeds", nargs="*", type=int,
                            default=CAMPAIGN_GRID_DEFAULTS["seeds"],
                            help="simulation seeds (extra sweep axis)")
    p_campaign.add_argument("--paths", nargs="*",
                            choices=["direct", "split"],
                            default=CAMPAIGN_GRID_DEFAULTS["paths"],
                            help="path topology modes (extra sweep "
                                 "axis): direct end-to-end transport "
                                 "and/or split-connection proxies at "
                                 "every segment boundary; split needs "
                                 "multi-segment networks, e.g. "
                                 "--networks SAT+LAN (default: direct)")
    p_campaign.add_argument("--middleboxes", nargs="*",
                            choices=[c.name for c in MIDDLEBOX_PRESETS],
                            default=CAMPAIGN_GRID_DEFAULTS["middleboxes"],
                            help="in-path middlebox chain presets "
                                 "(extra sweep axis): none, policer, "
                                 "shaper, jitter, reorder, duplicate, "
                                 "mtu-clamp, ack-decimate, adversarial "
                                 "(default: none)")
    p_campaign.add_argument("--loss-sweep", nargs="*", default=None,
                            metavar="NET:P1,P2",
                            help="derived lossy profiles, e.g. DSL:0.01,0.05")
    p_campaign.add_argument("--runs", type=int,
                            default=CAMPAIGN_GRID_DEFAULTS["runs"],
                            help="page loads recorded per condition "
                                 "(a typical run is selected; default: 5)")
    p_campaign.add_argument("--timeout", type=float,
                            default=CAMPAIGN_GRID_DEFAULTS["timeout"],
                            help="per-load simulated-time budget in "
                                 "seconds (default: 180)")
    p_campaign.add_argument("--metric",
                            default=CAMPAIGN_GRID_DEFAULTS["metric"],
                            help="typical-run selection metric")
    p_campaign.add_argument("--processes", type=int, default=None,
                            help="worker processes (default: CPUs-1; "
                                 "1 = inline)")
    p_campaign.add_argument("--batch-size", type=int, default=None,
                            help="conditions per worker task (default: "
                                 "a few batches per worker)")
    p_campaign.add_argument("--failure-policy", default="retry",
                            choices=["retry", "skip", "abort"],
                            help="what a failed condition does to the "
                                 "run: retry it a few times, record it "
                                 "and move on, or abort the campaign "
                                 "(default: retry)")
    p_campaign.add_argument("--cache-dir", default=None,
                            help="recording cache directory "
                                 "(default: $REPRO_CACHE_DIR or .repro-cache)")
    p_campaign.add_argument("--name",
                            default=CAMPAIGN_GRID_DEFAULTS["name"],
                            help="campaign name (labels the manifest dir)")
    p_campaign.add_argument("--quiet", action="store_true",
                            help="suppress per-condition progress lines")
    p_campaign.add_argument("--report", action="store_true",
                            help="render a Table 1/2-style pivot "
                                 "(mean ± CI, Welch marks) after the run")
    p_campaign.add_argument("--pivot", default="network,stack",
                            metavar="AXES",
                            help="pivot axes, rows...,columns (subset "
                                 "of website,network,stack,seed,path,"
                                 "middleboxes; default: network,stack)")
    p_campaign.add_argument("--format", default="text",
                            choices=["text", "md", "json"],
                            help="report output format")
    p_campaign.add_argument("--report-metric", default="SI",
                            help="metric aggregated in the report "
                                 "(default: SI)")
    p_campaign.add_argument("--confidence", type=float, default=0.99,
                            help="CI level / Welch alpha = 1-confidence "
                                 "(default: 0.99)")
    p_campaign.add_argument("--campaign-dir", default=None,
                            help="report post-hoc on this finished "
                                 "campaign directory (no conditions are "
                                 "run; spec axes are ignored)")
    p_campaign.add_argument("--allow-stale", action="store_true",
                            help="with --campaign-dir: report on a "
                                 "directory recorded under an older "
                                 "SIM_BEHAVIOUR_VERSION instead of "
                                 "refusing (results are not comparable "
                                 "with current simulations)")
    p_campaign.add_argument("--from-partials", action="store_true",
                            help="with --campaign-dir: merge the "
                                 "workers' partials/<worker>.json "
                                 "shards (plus any uncovered summaries) "
                                 "instead of re-reading every summary; "
                                 "requires the shards' pivot config to "
                                 "match the report flags")
    p_campaign.add_argument("--join", default=None, metavar="DIR",
                            help="join an existing campaign directory "
                                 "as a cooperative lease-claiming "
                                 "worker (the grid comes from the "
                                 "directory's spec.json; run from any "
                                 "host that mounts DIR and the cache)")
    p_campaign.add_argument("--workers", type=int, default=None,
                            metavar="N",
                            help="run N cooperative workers on this "
                                 "machine (with or without --join); "
                                 "each claims conditions through the "
                                 "lease protocol and writes its own "
                                 "partial aggregate (default: plain "
                                 "single-worker execution)")
    p_campaign.add_argument("--worker-id", default=None,
                            help="cooperative worker identity stamped "
                                 "on claims, manifest lines and partial "
                                 "files (default: <host>-<pid>)")
    p_campaign.add_argument("--lease-ttl", type=float, default=60.0,
                            metavar="SECONDS",
                            help="seconds without a heartbeat before "
                                 "another worker may reclaim a claimed "
                                 "condition (default: 60)")
    p_campaign.add_argument("--lease-heartbeat", type=float,
                            default=15.0, metavar="SECONDS",
                            help="seconds between heartbeat touches on "
                                 "held claims; must be well below "
                                 "--lease-ttl (default: 15)")
    p_campaign.add_argument("--lease-poll", type=float, default=1.0,
                            metavar="SECONDS",
                            help="seconds between polls of conditions "
                                 "other workers hold (default: 1)")
    p_campaign.add_argument("--claim-chunk", type=int, default=None,
                            metavar="N",
                            help="conditions one worker claims per "
                                 "pass; small chunks share a grid more "
                                 "evenly, large ones amortise claim "
                                 "overhead (default: two rounds of the "
                                 "worker's process pool)")
    p_campaign.add_argument("--supervise", type=int, default=None,
                            metavar="N",
                            help="run N workers under a supervisor "
                                 "that respawns crashed/stalled ones "
                                 "with capped backoff and quarantines "
                                 "conditions that keep killing workers "
                                 "(conflicts with --workers)")
    p_campaign.add_argument("--inject-faults", default=None,
                            metavar="PLAN",
                            help="deterministic chaos plan: "
                                 "'kind:worker@index[:arg]; ...' "
                                 "entries (kinds: crash, stall, "
                                 "torn-write, storm), 'seed:N' for a "
                                 "generated plan, or a .json plan file "
                                 "(see repro.testbed.faults)")
    p_campaign.add_argument("--retry-budget", type=int, default=3,
                            metavar="K",
                            help="with --supervise: worker deaths one "
                                 "condition may cause before it is "
                                 "quarantined as poisoned (default: 3)")
    p_campaign.add_argument("--max-respawns", type=int, default=8,
                            metavar="N",
                            help="with --supervise: respawns allowed "
                                 "per worker slot before the "
                                 "supervisor gives up on it "
                                 "(default: 8)")
    p_campaign.add_argument("--status", default=None, metavar="DIR",
                            help="print a one-shot health report over "
                                 "a campaign directory (done/pending/"
                                 "leased/stale/poisoned counts, "
                                 "per-worker liveness, torn-line "
                                 "warnings; --format json for machine "
                                 "output) and exit")

    p_lint = sub.add_parser(
        "lint",
        help="determinism & hot-path static analysis over the source "
             "tree (simlint); exits non-zero on any unsuppressed "
             "finding")
    add_lint_arguments(p_lint)

    p_study = sub.add_parser(
        "study",
        help="run the perception studies: Table 3 funnel + Figures 3-6, "
             "shardable over a campaign directory, with a warm --serve "
             "query mode")
    p_study.add_argument("--runs", type=int, default=5,
                         help="testbed page loads per condition (ignored "
                              "with --campaign-dir; default: 5)")
    p_study.add_argument("--seed", type=int, default=3)
    p_study.add_argument("--scale", type=float, default=0.2,
                         help="participant count as a fraction of the "
                              "paper's (default: 0.2)")
    p_study.add_argument("--sites", nargs="*", default=None)
    p_study.add_argument("--campaign-dir", default=None,
                         help="aggregate over a recorded campaign "
                              "directory instead of sweeping a fresh "
                              "testbed")
    p_study.add_argument("--cache-dir", default=None,
                         help="recording cache backing --campaign-dir "
                              "(default: the campaign's own cache)")
    p_study.add_argument("--shard", default=None, metavar="I:K",
                         help="process participant blocks b with "
                              "b %% K == I only and write a mergeable "
                              "partial into CAMPAIGN_DIR/study_partials/")
    p_study.add_argument("--worker-id", default=None,
                         help="file stem for the --shard partial "
                              "(default: shard-I-of-K)")
    p_study.add_argument("--serve", action="store_true",
                         help="warm the per-condition index, then answer "
                              "JSON-lines queries from stdin")

    p_export = sub.add_parser("export", help="export a site as JSON")
    p_export.add_argument("site", choices=list(CORPUS_SITE_NAMES))
    p_export.add_argument("path")
    p_export.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_lint(args: argparse.Namespace) -> int:
    return run_lint_cli(args, prog="repro lint")


COMMANDS = {
    "tables": _cmd_tables,
    "sites": _cmd_sites,
    "load": _cmd_load,
    "sweep": _cmd_sweep,
    "campaign": _cmd_campaign,
    "study": _cmd_study,
    "export": _cmd_export,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
