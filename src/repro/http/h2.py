"""HTTP/2 over TCP+TLS 1.3.

All responses of one origin share a single ordered TCP byte stream. The
server-side frame scheduler interleaves DATA frames (16 KiB) of concurrent
responses by priority class with round-robin inside a class — but once a
frame's bytes enter the TCP stream they sit behind every previously
written byte: a single lost segment stalls *all* multiplexed responses
(transport head-of-line blocking). This is the architectural handicap the
paper's QUIC comparison exposes on lossy networks.

The server writes lazily: it keeps at most ``low_water`` bytes of backlog
in the TCP send buffer and refills on writability, so frame interleaving
decisions happen close to transmission time like a real epoll server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.http.base import HttpConnection
from repro.http.messages import (
    FRAME_BYTES,
    REQUEST_BYTES,
    RESPONSE_HEADER_BYTES,
    BodyMarker,
    HeaderMarker,
    HttpRequest,
    RequestMarker,
)
from repro.http.server import OriginServer
from repro.netem.flowid import FlowIdAllocator
from repro.netem.path import NetworkPath
from repro.netem.proxy import SplitTcpConnection
from repro.transport.config import StackConfig
from repro.transport.tcp import TcpConnection


@dataclass
class _ActiveResponse:
    """Server-side state of one response being streamed."""

    request: HttpRequest
    header_written: bool = False
    body_written: int = 0

    @property
    def done(self) -> bool:
        return self.header_written and self.body_written >= self.request.body_bytes


class H2Connection(HttpConnection):
    """Client+server of one HTTP/2-over-TCP connection to an origin."""

    #: Server send-buffer low-water mark: refill frames below this backlog.
    low_water = 64 * 1024

    def __init__(self, path: NetworkPath, stack: StackConfig,
                 server: OriginServer,
                 flow_ids: Optional[FlowIdAllocator] = None):
        super().__init__(path, stack, server, flow_ids=flow_ids)
        # A split path terminates TCP per segment behind a PEP facade;
        # the HTTP layer drives both the same way.
        tcp_cls = (SplitTcpConnection if getattr(path, "split", False)
                   else TcpConnection)
        self._tcp = tcp_cls(
            path, stack,
            on_client_data=self._client_data,
            on_server_data=self._server_data,
            flow_ids=self._flow_ids,
        )
        self._tcp.server_sender.writable_low_water = self.low_water
        self._tcp.server_sender.on_writable = self._fill_server_buffer
        self._responses: List[_ActiveResponse] = []
        self._first_byte_seen: Dict[int, bool] = {}
        self._rr_cursor = 0

    # -- HttpConnection hooks -------------------------------------------------

    def _start_handshake(self) -> None:
        self._tcp.connect(self._on_established)

    def _submit(self, request: HttpRequest) -> None:
        self._tcp.client_write(REQUEST_BYTES, meta=RequestMarker(request))

    def close(self) -> None:
        self._tcp.close()

    @property
    def transport(self):
        """Underlying TCP connection or split-proxy facade (for stats)."""
        return self._tcp

    # -- server side ------------------------------------------------------------

    def _server_data(self, delivered: int, metas: List[object]) -> None:
        for meta in metas:
            if isinstance(meta, RequestMarker):
                request = meta.request
                delay = self._server.processing_delay(request)
                self._loop.call_later(
                    delay, lambda r=request: self._begin_response(r)
                )

    def _begin_response(self, request: HttpRequest) -> None:
        self._responses.append(_ActiveResponse(request))
        self._fill_server_buffer()

    def _pick_response(self) -> Optional[_ActiveResponse]:
        """Priority classes strict-first, round robin within a class."""
        active = [r for r in self._responses if not r.done]
        if not active:
            return None
        top = min(r.request.priority for r in active)
        ring = [r for r in active if r.request.priority == top]
        self._rr_cursor = (self._rr_cursor + 1) % len(ring)
        return ring[self._rr_cursor]

    def _fill_server_buffer(self) -> None:
        """Write frames into the TCP stream until the backlog is at the mark."""
        sender = self._tcp.server_sender
        while sender.backlog < self.low_water:
            response = self._pick_response()
            if response is None:
                break
            self._write_frame(response)
        self._responses = [r for r in self._responses if not r.done]

    def _write_frame(self, response: _ActiveResponse) -> None:
        request = response.request
        if not response.header_written:
            response.header_written = True
            self._tcp.server_write(RESPONSE_HEADER_BYTES,
                                   meta=HeaderMarker(request))
            return
        remaining = request.body_bytes - response.body_written
        frame = min(FRAME_BYTES, remaining)
        response.body_written += frame
        marker = BodyMarker(
            request,
            body_bytes_done=response.body_written,
            is_final=response.body_written >= request.body_bytes,
        )
        self._tcp.server_write(frame, meta=marker)

    # -- client side --------------------------------------------------------------

    def _client_data(self, delivered: int, metas: List[object]) -> None:
        now = self._loop.now
        for meta in metas:
            if isinstance(meta, HeaderMarker):
                events = meta.request.events
                if not self._first_byte_seen.get(meta.request.request_id):
                    self._first_byte_seen[meta.request.request_id] = True
                    if events.on_first_byte is not None:
                        events.on_first_byte(now)
            elif isinstance(meta, BodyMarker):
                events = meta.request.events
                if events.on_progress is not None:
                    events.on_progress(now, meta.body_bytes_done)
                if meta.is_final and events.on_complete is not None:
                    events.on_complete(now)
