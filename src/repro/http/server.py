"""Origin server behaviour (the NGINX / gQUIC-server stand-in).

Mahimahi replays each recorded host from its own server shell; responses
are served from disk with a small, run-to-run varying processing latency.
We model one :class:`OriginServer` per host with an optional jitter RNG so
repeated recordings of the same condition differ the way real testbed
runs do.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.http.messages import HttpRequest


class OriginServer:
    """One replayed origin host."""

    def __init__(self, host: str, jitter_rng: Optional[np.random.Generator] = None,
                 jitter_scale: float = 0.5):
        if jitter_scale < 0:
            raise ValueError("jitter scale must be non-negative")
        self.host = host
        self._rng = jitter_rng
        self._jitter_scale = jitter_scale

    def processing_delay(self, request: HttpRequest) -> float:
        """Server think time before the first response byte is produced.

        The base delay comes from the corpus object; jitter multiplies it
        by a lognormal factor (sigma scaled by ``jitter_scale``) modelling
        disk/OS scheduling noise in the replay shells.
        """
        base = request.server_delay_s
        if self._rng is None or self._jitter_scale == 0:
            return base
        factor = float(self._rng.lognormal(mean=0.0,
                                           sigma=0.35 * self._jitter_scale))
        return base * factor

    def __repr__(self) -> str:
        return f"OriginServer({self.host!r})"
