"""Protocol-agnostic client connection interface used by the browser."""

from __future__ import annotations

import abc
from typing import Callable, List, Optional

from repro.http.messages import HttpRequest
from repro.http.server import OriginServer
from repro.netem.flowid import FlowIdAllocator
from repro.netem.path import NetworkPath
from repro.transport.config import StackConfig


class HttpConnection(abc.ABC):
    """One client connection to one origin (host).

    The browser engine opens one connection per contacted host — the
    paper's multi-server replay makes the number of contacted hosts (and
    therefore handshakes) a first-order QoE factor.

    ``flow_ids`` is the page-load context's :class:`FlowIdAllocator`,
    threaded down to the transport constructor so connection identity is
    deterministic per load; when omitted the transports fall back to the
    path's own allocator (equivalent for the usual one-path-per-load
    layout).
    """

    def __init__(self, path: NetworkPath, stack: StackConfig,
                 server: OriginServer,
                 flow_ids: Optional[FlowIdAllocator] = None):
        self._path = path
        self._loop = path.loop
        self._stack = stack
        self._server = server
        self._flow_ids = flow_ids
        self._established = False
        self._pending: List[HttpRequest] = []
        self._connect_started: Optional[float] = None
        self._established_listeners: List[Callable[[], None]] = []

    # -- lifecycle ---------------------------------------------------------

    @property
    def established(self) -> bool:
        return self._established

    @property
    def connect_started_at(self) -> Optional[float]:
        return self._connect_started

    def connect(self) -> None:
        """Start the transport handshake (idempotent)."""
        if self._connect_started is not None:
            return
        self._connect_started = self._loop.now
        self._start_handshake()

    def request(self, request: HttpRequest) -> None:
        """Issue a request; queued until the connection is up."""
        if not self._established:
            self.connect()
            self._pending.append(request)
            return
        self._submit(request)

    def add_established_listener(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once the handshake completes."""
        if self._established:
            callback()
            return
        self._established_listeners.append(callback)

    def _on_established(self) -> None:
        self._established = True
        pending, self._pending = self._pending, []
        for request in pending:
            self._submit(request)
        listeners, self._established_listeners = \
            self._established_listeners, []
        for callback in listeners:
            callback()

    # -- protocol hooks -------------------------------------------------------

    @abc.abstractmethod
    def _start_handshake(self) -> None:
        """Kick off the transport+crypto handshake."""

    @abc.abstractmethod
    def _submit(self, request: HttpRequest) -> None:
        """Send a request on the established connection."""

    @abc.abstractmethod
    def close(self) -> None:
        """Tear down transport state."""


def open_connection(path: NetworkPath, stack: StackConfig,
                    server: OriginServer,
                    flow_ids: Optional[FlowIdAllocator] = None,
                    ) -> HttpConnection:
    """Create the right connection type for ``stack`` (H2/TCP or H3/QUIC)."""
    # Imported here to avoid a circular import at module load time.
    from repro.http.h2 import H2Connection
    from repro.http.h3 import H3Connection

    if stack.is_quic:
        return H3Connection(path, stack, server, flow_ids=flow_ids)
    return H2Connection(path, stack, server, flow_ids=flow_ids)
