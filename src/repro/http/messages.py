"""HTTP request/response descriptors and resource priorities."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Approximate wire size of a compressed request (headers + pseudo-headers).
REQUEST_BYTES = 350
#: Approximate wire size of compressed response headers.
RESPONSE_HEADER_BYTES = 250
#: DATA frame size used by both mappings (16 KiB, the H2 default).
FRAME_BYTES = 16 * 1024

#: Priority classes, Chromium-style: lower value is fetched more urgently.
PRIORITY_CRITICAL = 0   # HTML documents
PRIORITY_HIGH = 1       # CSS, synchronous JS, fonts
PRIORITY_LOW = 2        # images, async resources

_request_ids = itertools.count(1)


def priority_for(resource_type: str) -> int:
    """Map a resource type to its fetch priority class."""
    if resource_type == "html":
        return PRIORITY_CRITICAL
    if resource_type in ("css", "js", "font"):
        return PRIORITY_HIGH
    return PRIORITY_LOW


@dataclass
class HttpResponseEvents:
    """Client callbacks for the lifetime of one response."""

    on_first_byte: Optional[Callable[[float], None]] = None
    on_progress: Optional[Callable[[float, int], None]] = None
    on_complete: Optional[Callable[[float], None]] = None


@dataclass
class HttpRequest:
    """One resource fetch.

    ``body_bytes`` is the response body size the origin will produce
    (known up front because the testbed replays recorded sites).
    """

    url: str
    body_bytes: int
    resource_type: str = "other"
    server_delay_s: float = 0.002
    events: HttpResponseEvents = field(default_factory=HttpResponseEvents)
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self) -> None:
        if self.body_bytes <= 0:
            raise ValueError("response body must be at least one byte")
        if self.server_delay_s < 0:
            raise ValueError("server delay must be non-negative")

    @property
    def priority(self) -> int:
        return priority_for(self.resource_type)


@dataclass(frozen=True)
class RequestMarker:
    """Meta attached at the end of a request's bytes on the wire."""

    request: HttpRequest


@dataclass(frozen=True)
class HeaderMarker:
    """Meta marking the end of a response's header block."""

    request: HttpRequest


@dataclass(frozen=True)
class BodyMarker:
    """Meta marking cumulative body progress at a frame boundary."""

    request: HttpRequest
    body_bytes_done: int
    is_final: bool
