"""Application layer: HTTP/2 over TCP+TLS and HTTP/3-style mapping on QUIC.

Both mappings expose the same client interface to the browser engine
(:class:`repro.http.base.HttpConnection`), so a page load is protocol
agnostic and the measured differences come from the transports underneath:
HTTP/2 multiplexes all responses onto one ordered TCP byte stream (loss
stalls everything behind it), while HTTP/3 maps each response to its own
QUIC stream (loss only stalls the affected response).
"""

from repro.http.base import HttpConnection, open_connection
from repro.http.h2 import H2Connection
from repro.http.h3 import H3Connection
from repro.http.messages import HttpRequest, HttpResponseEvents, priority_for
from repro.http.server import OriginServer

__all__ = [
    "HttpConnection",
    "open_connection",
    "H2Connection",
    "H3Connection",
    "HttpRequest",
    "HttpResponseEvents",
    "OriginServer",
    "priority_for",
]
