"""HTTP/3-style mapping onto QUIC streams (the gQUIC Web stack).

Each request/response pair lives on its own QUIC stream; the QUIC
packetiser interleaves streams by the same priority policy the H2 frame
scheduler uses, so the only differences between the mappings are the
transport properties themselves (handshake RTTs, HOL blocking, ACK
richness) — exactly the paper's eye-level comparison requirement.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.http.base import HttpConnection
from repro.http.messages import (
    FRAME_BYTES,
    REQUEST_BYTES,
    RESPONSE_HEADER_BYTES,
    BodyMarker,
    HeaderMarker,
    HttpRequest,
    RequestMarker,
)
from repro.http.server import OriginServer
from repro.netem.flowid import FlowIdAllocator
from repro.netem.path import NetworkPath
from repro.netem.proxy import SplitQuicConnection
from repro.transport.config import StackConfig
from repro.transport.quic import QuicConnection


class H3Connection(HttpConnection):
    """Client+server of one HTTP/3-over-QUIC connection to an origin."""

    def __init__(self, path: NetworkPath, stack: StackConfig,
                 server: OriginServer,
                 flow_ids: Optional[FlowIdAllocator] = None):
        super().__init__(path, stack, server, flow_ids=flow_ids)
        # A split path terminates QUIC per segment behind a PEP facade;
        # the HTTP layer drives both the same way.
        quic_cls = (SplitQuicConnection if getattr(path, "split", False)
                    else QuicConnection)
        self._quic = quic_cls(
            path, stack,
            on_client_stream_data=self._client_stream_data,
            on_server_stream_data=self._server_stream_data,
            flow_ids=self._flow_ids,
        )
        self._stream_requests: Dict[int, HttpRequest] = {}
        self._first_byte_seen: Dict[int, bool] = {}

    # -- HttpConnection hooks ------------------------------------------------

    def _start_handshake(self) -> None:
        self._quic.connect(self._on_established)

    def _submit(self, request: HttpRequest) -> None:
        stream_id = self._quic.open_stream(priority=request.priority)
        self._stream_requests[stream_id] = request
        self._quic.client_stream_write(
            stream_id, REQUEST_BYTES, meta=RequestMarker(request), fin=True
        )

    def close(self) -> None:
        self._quic.close()

    @property
    def transport(self):
        """Underlying QUIC connection or split-proxy facade (for stats)."""
        return self._quic

    # -- server side -----------------------------------------------------------

    def _server_stream_data(self, stream_id: int, delivered: int,
                            metas: List[object], fin: bool) -> None:
        for meta in metas:
            if isinstance(meta, RequestMarker):
                request = meta.request
                delay = self._server.processing_delay(request)
                self._loop.call_later(
                    delay,
                    lambda sid=stream_id, r=request: self._respond(sid, r),
                )

    def _respond(self, stream_id: int, request: HttpRequest) -> None:
        """Write the whole response; QUIC packetisation interleaves streams."""
        priority = request.priority
        self._quic.server_stream_write(
            stream_id, RESPONSE_HEADER_BYTES,
            meta=HeaderMarker(request), priority=priority,
        )
        remaining = request.body_bytes
        done = 0
        while remaining > 0:
            frame = min(FRAME_BYTES, remaining)
            remaining -= frame
            done += frame
            marker = BodyMarker(request, body_bytes_done=done,
                                is_final=remaining == 0)
            self._quic.server_stream_write(
                stream_id, frame, meta=marker,
                fin=remaining == 0, priority=priority,
            )

    # -- client side ------------------------------------------------------------

    def _client_stream_data(self, stream_id: int, delivered: int,
                            metas: List[object], fin: bool) -> None:
        now = self._loop.now
        for meta in metas:
            if isinstance(meta, HeaderMarker):
                events = meta.request.events
                if not self._first_byte_seen.get(meta.request.request_id):
                    self._first_byte_seen[meta.request.request_id] = True
                    if events.on_first_byte is not None:
                        events.on_first_byte(now)
            elif isinstance(meta, BodyMarker):
                events = meta.request.events
                if events.on_progress is not None:
                    events.on_progress(now, meta.body_bytes_done)
                if meta.is_final and events.on_complete is not None:
                    events.on_complete(now)
