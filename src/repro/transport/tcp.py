"""TCP + TLS 1.3 connection over the emulated path.

Implements a packet-granular TCP for both directions of one connection:

* 2-RTT connection setup: SYN/SYN-ACK followed by a TLS 1.3 exchange whose
  flights are real (lossable) packets;
* a SACK-scoreboard sender with fast retransmit (RFC 6675 style), RTO with
  exponential backoff, congestion control (Cubic or BBRv1) and optional
  pacing;
* a receiver that delivers a strictly ordered byte stream — the transport
  head-of-line blocking that distinguishes TCP from QUIC — generates
  cumulative ACKs with up to ``max_sack_ranges`` SACK blocks, and models
  Linux-style receive-buffer autotuning (or BDP-tuned buffers for TCP+);
* stock-TCP slow start after idle.

Application data is written as byte counts with opaque ``meta`` markers
attached at write boundaries; the peer's receiver reports markers as the
ordered stream passes them. The HTTP/2 layer builds its framing on top.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.netem.engine import EventLoop, ScheduledEvent
from repro.netem.flowid import FlowIdAllocator
from repro.netem.packet import Packet
from repro.netem.path import NetworkPath
from repro.transport import tls
from repro.transport.cc import make_controller
from repro.transport.config import StackConfig
from repro.transport.pacing import Pacer
from repro.transport.ranges import RangeSet
from repro.transport.rtt import RttEstimator

ACK_PACKET_BYTES = 40
HEADER_BYTES = 40
#: Linux initial receive window before autotuning kicks in.
AUTOTUNE_INITIAL_BYTES = 64 * 1024
AUTOTUNE_MAX_BYTES = 6 * 1024 * 1024
#: Reordering tolerance for SACK-based loss marking (RFC 6675 DupThresh).
DUP_THRESH_BYTES_FACTOR = 3
DELAYED_ACK_TIMEOUT = 0.025


@dataclass(slots=True)
class TcpSegment:
    """Payload carried inside an emulated packet for this connection."""

    kind: str                      # "ctrl" | "data" | "ack"
    direction: str                 # "c2s" | "s2c"
    seq: int = 0
    length: int = 0
    is_retransmit: bool = False
    sent_time: float = 0.0
    ack: int = 0
    sack_blocks: Tuple[Tuple[int, int], ...] = ()
    rwnd: int = 0
    ctrl: str = ""                 # "syn" | "synack" | "hello" | "flight" | "fin_hs"
    ctrl_index: int = 0            # packet index within a multi-packet flight
    ctrl_total: int = 0


@dataclass(slots=True)
class _SentRange:
    """Sender bookkeeping for one transmitted segment.

    Records live in ``TcpSender._sent`` sorted by ``seq`` (unique per
    record) with an already-acked prefix trimmed lazily, so per-ACK
    bookkeeping touches only the records an ACK actually affects
    instead of rescanning the whole in-flight list.
    """

    seq: int
    end: int
    sent_time: float
    retransmitted: bool = False
    delivered_at_send: int = 0
    sampled: bool = False


@dataclass
class SenderStats:
    """Per-direction sender counters (used by the retransmission analyses)."""

    segments_sent: int = 0
    bytes_sent: int = 0
    retransmitted_segments: int = 0
    rto_count: int = 0
    fast_retransmits: int = 0
    loss_events: int = 0


class TcpSender:
    """Reliable byte-stream sender for one direction of the connection."""

    def __init__(
        self,
        loop: EventLoop,
        stack: StackConfig,
        send_packet: Callable[[int, TcpSegment], None],
        direction: str,
        bdp_hint: int,
    ):
        self._loop = loop
        self._stack = stack
        self._send_packet = send_packet
        self._direction = direction
        self.mss = stack.mss
        self.cc = make_controller(
            stack.congestion_control, stack.mss, stack.initial_window_segments
        )
        self.pacer = Pacer(stack.pacing, stack.mss)
        self.rtt = RttEstimator()
        self.stats = SenderStats()

        # Stream state.
        self._stream_len = 0
        self._metas: Dict[int, List[object]] = {}
        self._fin_offset: Optional[int] = None

        # Sequence state.
        self.snd_una = 0
        self.snd_nxt = 0
        self._sacked = RangeSet()
        self._lost = RangeSet()          # ranges marked for retransmission
        self._retx_in_flight = RangeSet()  # retransmitted, not yet acked
        # Sent records sorted by seq, with a parallel key list for
        # bisection and a lazily-advanced head trimming the acked
        # prefix (amortised O(1) per record over a connection).
        self._sent: List[_SentRange] = []
        self._sent_keys: List[int] = []
        self._sent_head = 0
        # The (few) records marked retransmitted, so RACK-style expiry
        # does not rescan every in-flight record.
        self._retx_records: List[_SentRange] = []
        self._peer_rwnd = AUTOTUNE_INITIAL_BYTES

        # Delivery-rate estimation (for BBR).
        self._delivered_bytes = 0

        # Recovery / timers.
        self._in_recovery = False
        self._recovery_point = 0
        self._rto_timer: Optional[ScheduledEvent] = None
        self._rto_backoff = 1
        self._pace_timer: Optional[ScheduledEvent] = None
        self._last_activity: Optional[float] = None

        # Low-water-mark writable signalling for streaming producers.
        self.writable_low_water = 64 * 1024
        self.on_writable: Optional[Callable[[], None]] = None

        self._bdp_hint = bdp_hint

    # -- application interface ---------------------------------------------

    @property
    def backlog(self) -> int:
        """Bytes written but not yet transmitted for the first time."""
        return self._stream_len - self.snd_nxt

    @property
    def all_acked(self) -> bool:
        """True when every written byte has been cumulatively acked."""
        return self.snd_una >= self._stream_len

    def write(self, nbytes: int, meta: Optional[object] = None,
              *, metas: Optional[List[object]] = None) -> None:
        """Append ``nbytes`` to the outgoing stream.

        ``meta`` (if given) is attached at the end offset of this write and
        reported by the peer receiver once the ordered stream reaches it.
        ``metas`` attaches a whole batch at that offset — the relay case,
        where a proxy re-writes bytes whose markers arrived together.
        """
        if nbytes <= 0:
            raise ValueError(f"write size must be positive, got {nbytes}")
        self._maybe_idle_restart()
        self._stream_len += nbytes
        if meta is not None:
            self._metas.setdefault(self._stream_len, []).append(meta)
        if metas:
            self._metas.setdefault(self._stream_len, []).extend(metas)
        self._try_send()

    def pending_metas(self) -> Dict[int, List[object]]:
        """Offset→meta map for everything written so far (receiver setup)."""
        return self._metas

    # -- idle handling -------------------------------------------------------

    def _maybe_idle_restart(self) -> None:
        now = self._loop.now
        if self._last_activity is None:
            self._last_activity = now
            return
        idle = now - self._last_activity
        if idle > self.rtt.rto() and self.snd_una == self.snd_nxt:
            if self._stack.slow_start_after_idle:
                self.cc.on_idle_restart()
            self.pacer.reset_initial_quantum()
        self._last_activity = now

    # -- transmission ----------------------------------------------------------

    def _pipe(self) -> int:
        """SACK-based estimate of bytes currently in the network."""
        outstanding = self.snd_nxt - self.snd_una
        return max(0, outstanding - self._sacked.covered_bytes()
                   - self._lost.covered_bytes())

    def _next_chunk(self) -> Optional[Tuple[int, int, bool]]:
        """(seq, length, is_retransmit) of the next segment, or None."""
        lost = self._lost.first()
        if lost is not None:
            start, end = lost
            return start, min(end - start, self.mss), True
        if self.snd_nxt < self._stream_len:
            if self.snd_nxt - self.snd_una >= self._peer_rwnd:
                return None  # receive-window limited
            length = min(self.mss, self._stream_len - self.snd_nxt)
            return self.snd_nxt, length, False
        return None

    def _try_send(self) -> None:
        if self._pace_timer is not None:
            return  # a pacing-gated send is already scheduled
        while True:
            chunk = self._next_chunk()
            if chunk is None:
                break
            seq, length, is_retx = chunk
            if not is_retx and self._pipe() + length > self.cc.congestion_window():
                break
            if is_retx and self._pipe() + length > self.cc.congestion_window():
                break
            now = self._loop.now
            self.pacer.set_rate(self.cc.pacing_rate(self.rtt.smoothed()))
            release = self.pacer.next_send_time(now, length + HEADER_BYTES)
            if release > now + 1e-12:
                self._pace_timer = self._loop.call_at(release, self._pace_fire)
                return
            self._transmit(seq, length, is_retx)
        self._arm_rto()

    def _pace_fire(self) -> None:
        self._pace_timer = None
        self._try_send()

    def _transmit(self, seq: int, length: int, is_retx: bool) -> None:
        now = self._loop.now
        segment = TcpSegment(
            kind="data",
            direction=self._direction,
            seq=seq,
            length=length,
            is_retransmit=is_retx,
            sent_time=now,
        )
        self.pacer.on_packet_sent(now, length + HEADER_BYTES)
        self.cc.on_packet_sent(now, length, self._pipe())
        self.stats.segments_sent += 1
        self.stats.bytes_sent += length
        self._last_activity = now
        if is_retx:
            self.stats.retransmitted_segments += 1
            self._lost.remove(seq, seq + length)
            self._retx_in_flight.add(seq, seq + length)
            # Mark every record overlapping the retransmitted range: their
            # original send times must no longer produce RTT samples
            # (Karn), even when segment boundaries do not line up. A
            # record spans at most one MSS, so overlaps lie within
            # [seq - mss, seq + length) in key order.
            sent, keys, head = self._sent, self._sent_keys, self._sent_head
            matched = False
            lo = bisect_left(keys, seq - self.mss, head)
            hi = bisect_left(keys, seq + length, head)
            for i in range(lo, hi):
                rec = sent[i]
                if rec.seq < seq + length and rec.end > seq:
                    if not rec.retransmitted:
                        rec.retransmitted = True
                        self._retx_records.append(rec)
                    if rec.seq == seq:
                        rec.sent_time = now
                        matched = True
            if not matched:
                rec = _SentRange(seq, seq + length, now, True,
                                 self._delivered_bytes)
                pos = bisect_left(keys, seq, head)
                keys.insert(pos, seq)
                sent.insert(pos, rec)
                self._retx_records.append(rec)
        else:
            # New data: seq == snd_nxt is above every recorded key, so a
            # plain append keeps the list sorted.
            self._sent.append(
                _SentRange(seq, seq + length, now, False,
                           self._delivered_bytes))
            self._sent_keys.append(seq)
            self.snd_nxt = seq + length
        self._send_packet(length + HEADER_BYTES, segment)

    # -- acknowledgement processing ------------------------------------------

    def on_ack(self, segment: TcpSegment) -> None:
        """Process an ACK segment from the peer."""
        now = self._loop.now
        self._peer_rwnd = max(segment.rwnd, self.mss)
        newly_acked = 0

        previously_sacked_below_ack = 0
        if segment.ack > self.snd_una:
            newly_acked = segment.ack - self.snd_una
            self.snd_una = segment.ack
            before = self._sacked.covered_bytes()
            self._sacked.remove(0, segment.ack)
            previously_sacked_below_ack = before - self._sacked.covered_bytes()
            self._lost.remove(0, segment.ack)
            self._retx_in_flight.remove(0, segment.ack)
            self._rto_backoff = 1

        sack_advanced = False
        sacked_bytes = 0
        new_gaps: List[Tuple[int, int]] = []
        for start, end in segment.sack_blocks:
            # The newly covered intervals (gaps of the current scoreboard
            # within the block) drive both the gained-byte accounting and
            # the incremental delivery sampling below.
            gaps = self._sacked.missing_within(max(start, self.snd_una), end)
            self._sacked.add(max(start, self.snd_una), end)
            self._retx_in_flight.remove(start, end)
            gained = sum(e - s for s, e in gaps)
            if gained > 0:
                sack_advanced = True
                sacked_bytes += gained
                new_gaps.extend(gaps)
        # Delivered-byte accounting for the BBR rate estimator: bytes that
        # were SACKed earlier must not be counted again when the
        # cumulative ACK finally passes them.
        self._delivered_bytes += (newly_acked - previously_sacked_below_ack
                                  + sacked_bytes)

        rtt_sample, delivery_rate = self._samples_for(segment.ack, new_gaps)
        if rtt_sample is not None:
            self.rtt.on_sample(rtt_sample)

        self._prune_acked()

        if newly_acked > 0 or sack_advanced:
            self._detect_losses(now)

        if newly_acked > 0:
            if self._in_recovery and self.snd_una >= self._recovery_point:
                self._in_recovery = False
            self.cc.on_ack(now, newly_acked, rtt_sample, self._pipe(),
                           delivery_rate)

        if self.all_acked:
            self._cancel_rto()
        else:
            self._arm_rto()

        self._try_send()
        self._signal_writable()

    def _samples_for(
        self, ack: int, new_gaps: List[Tuple[int, int]],
    ) -> Tuple[Optional[float], Optional[float]]:
        """(rtt, delivery_rate) samples from segments delivered by this ACK.

        A segment is sampled exactly once: the first time it is covered by
        either the cumulative ACK or a SACK block. Segments that were
        SACKed earlier and are only now passed by the cumulative ACK would
        otherwise yield wildly inflated "flight times". Karn's rule: only
        never-retransmitted segments provide samples.

        Only records this ACK can newly deliver are examined: the key
        prefix below the cumulative ACK, plus records overlapping
        ``new_gaps`` — the intervals the ACK's SACK blocks newly covered.
        A record first fully SACKed now has newly-covered bytes, which lie
        inside one of those gaps; everything else was either sampled by an
        earlier ACK or is still undelivered.
        """
        best_rtt: Optional[float] = None
        best_rate: Optional[float] = None
        now = self._loop.now
        sent, keys, head = self._sent, self._sent_keys, self._sent_head
        spans = [(head, bisect_left(keys, ack, head))]
        spans.extend(
            (bisect_left(keys, gap_start - self.mss, head),
             bisect_left(keys, gap_end, head))
            for gap_start, gap_end in new_gaps
        )
        for lo, hi in spans:
            for i in range(lo, hi):
                rec = sent[i]
                if rec.sampled:
                    continue
                delivered = (rec.end <= ack
                             or self._sacked.contains(rec.seq, rec.end))
                if not delivered:
                    continue
                rec.sampled = True
                if rec.retransmitted:
                    continue
                flight = now - rec.sent_time
                if flight <= 0:
                    continue
                if best_rtt is None or flight < best_rtt:
                    best_rtt = flight
                rate = (self._delivered_bytes - rec.delivered_at_send) / flight
                if best_rate is None or rate > best_rate:
                    best_rate = rate
        return best_rtt, best_rate

    def _prune_acked(self) -> None:
        """Advance past (and periodically drop) cumulatively-acked records.

        Records keep seq order, so the acked prefix is contiguous up to
        the first record straddling ``snd_una``; a few dead records may
        linger behind a straddler until it goes, which is harmless — they
        are already sampled and can never match a Karn or RACK check
        again.
        """
        sent, keys = self._sent, self._sent_keys
        head = self._sent_head
        snd_una = self.snd_una
        n = len(sent)
        while head < n and sent[head].end <= snd_una:
            head += 1
        if head > 64 and head * 2 >= n:
            del sent[:head]
            del keys[:head]
            head = 0
        self._sent_head = head

    def _detect_losses(self, now: float) -> None:
        """RFC 6675-ish: a hole with >= 3 MSS SACKed above it is lost."""
        if not self._sacked:
            return
        self._expire_stale_retransmissions(now)
        highest_sacked = self._sacked.highest()
        threshold = DUP_THRESH_BYTES_FACTOR * self.mss
        newly_lost = 0
        for start, end in self._sacked.missing_within(self.snd_una, highest_sacked):
            sacked_above = self._bytes_sacked_above(end)
            if sacked_above < threshold:
                continue
            # Only mark sub-ranges whose retransmission is not still in
            # flight; re-marking in-flight retransmissions causes a
            # retransmission storm.
            for sub_start, sub_end in self._retx_in_flight.missing_within(
                    start, end):
                before = self._lost.covered_bytes()
                self._lost.add(sub_start, sub_end)
                newly_lost += self._lost.covered_bytes() - before
        if newly_lost > 0:
            self.stats.fast_retransmits += 1
            if not self._in_recovery:
                self._in_recovery = True
                self._recovery_point = self.snd_nxt
                self.stats.loss_events += 1
                self.cc.on_loss_event(now, newly_lost, self._pipe())

    def _bytes_sacked_above(self, offset: int) -> int:
        return sum(max(0, e - max(s, offset)) for s, e in self._sacked)

    def _expire_stale_retransmissions(self, now: float) -> None:
        """RACK-style: a retransmission unacked after ~1.25 srtt was lost.

        Removing it from the in-flight set lets `_detect_losses` mark the
        range lost again instead of waiting for a full (backed-off) RTO.
        """
        if not self._retx_in_flight:
            return
        reorder_window = 1.25 * self.rtt.smoothed() + 0.01
        stale: List[Tuple[int, int]] = []
        live: List[_SentRange] = []
        snd_una = self.snd_una
        for rec in self._retx_records:
            if rec.end <= snd_una:
                continue  # cumulatively acked; drop from the watch list
            live.append(rec)
            if now - rec.sent_time > reorder_window:
                if self._retx_in_flight.contains(rec.seq, rec.end):
                    stale.append((rec.seq, rec.end))
        self._retx_records = live
        for start, end in stale:
            self._retx_in_flight.remove(start, end)

    # -- RTO -----------------------------------------------------------------

    def _arm_rto(self) -> None:
        if self.all_acked and not self._lost:
            return
        self._cancel_rto()
        timeout = self.rtt.rto() * self._rto_backoff
        self._rto_timer = self._loop.call_later(timeout, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.all_acked:
            return
        self.stats.rto_count += 1
        self.stats.loss_events += 1
        self._rto_backoff = min(self._rto_backoff * 2, 64)
        self.cc.on_rto(self._loop.now)
        self._in_recovery = False
        # Everything outstanding is eligible for retransmission; go-back-N
        # from snd_una but honour SACKed ranges.
        resend_end = self.snd_nxt
        self._lost = RangeSet()
        self._retx_in_flight = RangeSet()
        for start, end in self._sacked.missing_within(self.snd_una, resend_end):
            self._lost.add(start, end)
        if not self._lost and self.snd_una < resend_end:
            self._lost.add(self.snd_una, resend_end)
        self._try_send()
        self._arm_rto()

    # -- writable signalling ----------------------------------------------------

    def _signal_writable(self) -> None:
        if self.on_writable is not None and self.backlog < self.writable_low_water:
            self.on_writable()


class TcpReceiver:
    """Ordered-delivery receiver with SACK generation and buffer autotuning."""

    def __init__(
        self,
        loop: EventLoop,
        stack: StackConfig,
        send_ack: Callable[[TcpSegment], None],
        direction: str,
        bdp_hint: int,
        on_data: Callable[[int, List[object]], None],
        metas: Dict[int, List[object]],
    ):
        self._loop = loop
        self._stack = stack
        self._send_ack = send_ack
        self._direction = direction
        self._on_data = on_data
        self._metas = metas
        # Meta offsets are created in ascending order (they key the
        # sender's monotonic stream length), so the dict's insertion
        # order is sorted; a cursor over a cached key list replaces the
        # per-delivery sort of the whole map.
        self._meta_keys: List[int] = []
        self._meta_cursor = 0
        self._received = RangeSet()
        self.delivered = 0
        self._pending_ack_packets = 0
        self._delayed_ack_timer: Optional[ScheduledEvent] = None
        if stack.tuned_buffers:
            self._buffer_cap = max(4 * bdp_hint, 256 * 1024)
            self._autotune = False
        else:
            self._buffer_cap = AUTOTUNE_INITIAL_BYTES
            self._autotune = True
        self._rtt_window_start = 0.0
        self._delivered_in_window = 0

    @property
    def buffer_cap(self) -> int:
        """Current receive buffer (advertised window) in bytes."""
        return self._buffer_cap

    def on_segment(self, segment: TcpSegment) -> None:
        """Process an arriving data segment."""
        start, end = segment.seq, segment.seq + segment.length
        out_of_order = start > self.delivered
        self._received.add(start, end)
        self._deliver_contiguous()
        self._pending_ack_packets += 1
        if out_of_order or self._pending_ack_packets >= 2:
            self._emit_ack()
        elif self._delayed_ack_timer is None:
            self._delayed_ack_timer = self._loop.call_later(
                DELAYED_ACK_TIMEOUT, self._emit_ack
            )

    def _deliver_contiguous(self) -> None:
        new_delivered = self._received.first_gap_after(0)
        if new_delivered <= self.delivered:
            return
        metas: List[object] = []
        keys = self._meta_keys
        if len(keys) != len(self._metas):
            # New writes appended metas; the old keys are a prefix of the
            # refreshed (still ascending) list, so the cursor stays valid.
            keys = self._meta_keys = list(self._metas)
        i = self._meta_cursor
        n = len(keys)
        while i < n and keys[i] <= new_delivered:
            if keys[i] > self.delivered:
                metas.extend(self._metas[keys[i]])
            i += 1
        self._meta_cursor = i
        advanced = new_delivered - self.delivered
        self.delivered = new_delivered
        self._maybe_autotune(advanced)
        self._on_data(self.delivered, metas)

    def _maybe_autotune(self, advanced: int) -> None:
        if not self._autotune:
            return
        now = self._loop.now
        self._delivered_in_window += advanced
        if now - self._rtt_window_start >= 0.1:  # coarse RTT proxy
            if self._delivered_in_window * 2 > self._buffer_cap:
                self._buffer_cap = min(self._buffer_cap * 2, AUTOTUNE_MAX_BYTES)
            self._rtt_window_start = now
            self._delivered_in_window = 0

    def _emit_ack(self) -> None:
        if self._delayed_ack_timer is not None:
            self._delayed_ack_timer.cancel()
            self._delayed_ack_timer = None
        self._pending_ack_packets = 0
        cumulative = self._received.first_gap_after(0)
        blocks = tuple(
            (s, e)
            for s, e in self._received.newest_first(self._stack.max_sack_ranges)
            if e > cumulative
        )
        ack = TcpSegment(
            kind="ack",
            direction=self._direction,
            ack=cumulative,
            sack_blocks=blocks,
            rwnd=self._buffer_cap,
        )
        self._send_ack(ack)


class TcpConnection:
    """Both endpoints of one TCP+TLS1.3 connection over a NetworkPath.

    The flow id — which seeds the handshake-retry jitter and therefore
    affects lossy-network behaviour — comes from the per-load
    :class:`FlowIdAllocator` (``flow_ids``, defaulting to the path's
    own), never from process-global state: a connection's identity is a
    pure function of its position within its page load.
    """

    def __init__(
        self,
        path: NetworkPath,
        stack: StackConfig,
        on_client_data: Callable[[int, List[object]], None],
        on_server_data: Callable[[int, List[object]], None],
        flow_ids: Optional[FlowIdAllocator] = None,
    ):
        if stack.is_quic:
            raise ValueError("TcpConnection requires a TCP stack config")
        self._path = path
        self._loop = path.loop
        self._stack = stack
        allocator = flow_ids if flow_ids is not None else path.flow_ids
        self.flow_id = allocator.next_tcp()

        bdp = path.bdp_bytes()
        self.client_sender = TcpSender(
            self._loop, stack, self._send_c2s, "c2s", bdp
        )
        self.server_sender = TcpSender(
            self._loop, stack, self._send_s2c, "s2c", bdp
        )
        # The client receives s2c data and its ACKs travel back to the
        # server (and vice versa).
        self.client_receiver = TcpReceiver(
            self._loop, stack, self._ack_to_server, "s2c", bdp,
            on_client_data, self.server_sender.pending_metas(),
        )
        self.server_receiver = TcpReceiver(
            self._loop, stack, self._ack_to_client, "c2s", bdp,
            on_server_data, self.client_sender.pending_metas(),
        )

        path.register_client(self.flow_id, self._client_packet)
        path.register_server(self.flow_id, self._server_packet)

        self._established = False
        self._established_at: Optional[float] = None
        self._on_established: Optional[Callable[[], None]] = None
        self._hs_stage = "idle"
        self._hs_timer: Optional[ScheduledEvent] = None
        self._hs_rto = RttEstimator.INITIAL_RTO
        self._hs_attempts = 0
        self._hs_started_at = 0.0
        self._flight_received = 0
        self._syn_sent_at = 0.0

    # -- public API ------------------------------------------------------------

    @property
    def established(self) -> bool:
        return self._established

    @property
    def established_at(self) -> Optional[float]:
        """Simulated time when the client could first send a request."""
        return self._established_at

    def connect(self, on_established: Callable[[], None]) -> None:
        """Begin the 2-RTT TCP+TLS1.3 handshake."""
        if self._hs_stage != "idle":
            raise RuntimeError("connect() already called")
        self._on_established = on_established
        self._hs_stage = "syn_sent"
        self._send_hs_client("syn", tls.TCP_CONTROL_PACKET_BYTES)
        self._syn_sent_at = self._loop.now
        self._arm_hs_timer()

    def client_write(self, nbytes: int, meta: Optional[object] = None,
                     *, metas: Optional[List[object]] = None) -> None:
        """Write request bytes from the client (after establishment)."""
        self._require_established()
        self.client_sender.write(nbytes, meta, metas=metas)

    def server_write(self, nbytes: int, meta: Optional[object] = None,
                     *, metas: Optional[List[object]] = None) -> None:
        """Write response bytes from the server."""
        self._require_established()
        self.server_sender.write(nbytes, meta, metas=metas)

    def _require_established(self) -> None:
        if not self._established:
            raise RuntimeError("connection not yet established")

    # -- handshake -----------------------------------------------------------------

    def _send_hs_client(self, ctrl: str, size: int) -> None:
        segment = TcpSegment(kind="ctrl", direction="c2s", ctrl=ctrl,
                             sent_time=self._loop.now)
        self._path.send_to_server(Packet(size=size, payload=segment,
                                         flow_id=self.flow_id))

    def _send_hs_server(self, ctrl: str, size: int, index: int = 0,
                        total: int = 1) -> None:
        segment = TcpSegment(kind="ctrl", direction="s2c", ctrl=ctrl,
                             ctrl_index=index, ctrl_total=total,
                             sent_time=self._loop.now)
        self._path.send_to_client(Packet(size=size, payload=segment,
                                         flow_id=self.flow_id))

    def _send_server_flight(self) -> None:
        total_bytes = tls.TCP_TLS13.server_flight_bytes
        mss = self._stack.mss
        npackets = (total_bytes + mss - 1) // mss
        remaining = total_bytes
        for index in range(npackets):
            size = min(mss, remaining) + HEADER_BYTES
            remaining -= min(mss, remaining)
            self._send_hs_server("flight", size, index, npackets)

    def _hs_jitter(self) -> float:
        """Per-connection, per-attempt timer jitter (see the QUIC twin).

        The kernel's SYN retransmission timer carries scheduling jitter in
        practice; modelling it prevents artificial lock-step retry storms
        across a page's parallel connections.
        """
        self._hs_attempts += 1
        phase = (self.flow_id * 2654435761 + self._hs_attempts * 40503) \
            % 1000
        return 0.75 + 0.5 * (phase / 1000.0)

    def _arm_hs_timer(self) -> None:
        if self._hs_timer is not None:
            self._hs_timer.cancel()
        self._hs_timer = self._loop.call_later(
            self._hs_rto * self._hs_jitter(), self._hs_timeout)

    def _hs_timeout(self) -> None:
        self._hs_timer = None
        if self._established:
            return
        self._hs_rto = min(self._hs_rto * 2, 8.0)
        if self._hs_stage == "syn_sent":
            self._send_hs_client("syn", tls.TCP_CONTROL_PACKET_BYTES)
        elif self._hs_stage == "hello_sent":
            self._send_hs_client("hello", tls.CLIENT_HELLO_BYTES)
        elif self._hs_stage == "flight_sent":
            self._flight_received = 0
            self._send_server_flight()
        self._arm_hs_timer()

    def _handle_hs_at_server(self, segment: TcpSegment) -> None:
        if segment.ctrl == "syn":
            self._send_hs_server("synack", tls.TCP_CONTROL_PACKET_BYTES)
        elif segment.ctrl == "hello":
            if self._hs_stage != "established":
                self._hs_stage = "flight_sent"
                self._send_server_flight()
                self._arm_hs_timer()
        elif segment.ctrl == "fin_hs":
            pass  # client Finished; server already treats the session as up

    def _handle_hs_at_client(self, segment: TcpSegment) -> None:
        if segment.ctrl == "synack" and self._hs_stage == "syn_sent":
            rtt = self._loop.now - self._syn_sent_at
            self.client_sender.rtt.on_sample(rtt)
            self._hs_stage = "hello_sent"
            self._hs_rto = max(self.client_sender.rtt.rto(), 0.2)
            self._send_hs_client("hello", tls.CLIENT_HELLO_BYTES)
            self._arm_hs_timer()
        elif segment.ctrl == "flight":
            self._flight_received += 1
            if self._flight_received >= segment.ctrl_total and not self._established:
                self._send_hs_client("fin_hs", tls.CLIENT_FINISHED_BYTES)
                self._complete_handshake()

    def _complete_handshake(self) -> None:
        self._established = True
        self._established_at = self._loop.now
        self._hs_stage = "established"
        if self._hs_timer is not None:
            self._hs_timer.cancel()
            self._hs_timer = None
        # Seed the server's RTT estimate from the handshake exchange.
        self.server_sender.rtt.on_sample(
            max(self._path.min_rtt, (self._loop.now - self._syn_sent_at) / 2)
        )
        if self._on_established is not None:
            self._on_established()

    # -- packet plumbing --------------------------------------------------------------

    def _send_c2s(self, size: int, segment: TcpSegment) -> None:
        self._path.send_to_server(Packet(size=size, payload=segment,
                                         flow_id=self.flow_id))

    def _send_s2c(self, size: int, segment: TcpSegment) -> None:
        self._path.send_to_client(Packet(size=size, payload=segment,
                                         flow_id=self.flow_id))

    def _ack_to_server(self, segment: TcpSegment) -> None:
        """ACK generated at the client (for s2c data) travels to the server."""
        self._path.send_to_server(Packet(size=ACK_PACKET_BYTES, payload=segment,
                                         flow_id=self.flow_id))

    def _ack_to_client(self, segment: TcpSegment) -> None:
        """ACK generated at the server (for c2s data) travels to the client."""
        self._path.send_to_client(Packet(size=ACK_PACKET_BYTES, payload=segment,
                                         flow_id=self.flow_id))

    def _client_packet(self, packet: Packet) -> None:
        """Packets arriving at the client."""
        segment: TcpSegment = packet.payload
        if segment.kind == "ctrl":
            self._handle_hs_at_client(segment)
        elif segment.kind == "data":
            self.client_receiver.on_segment(segment)
        elif segment.kind == "ack":
            self.client_sender.on_ack(segment)

    def _server_packet(self, packet: Packet) -> None:
        """Packets arriving at the server."""
        segment: TcpSegment = packet.payload
        if segment.kind == "ctrl":
            self._handle_hs_at_server(segment)
        elif segment.kind == "data":
            self.server_receiver.on_segment(segment)
        elif segment.kind == "ack":
            self.server_sender.on_ack(segment)

    def close(self) -> None:
        """Unregister from the path (no FIN exchange is modelled)."""
        self._path.unregister(self.flow_id)
