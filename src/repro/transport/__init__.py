"""Transport stacks built from scratch: TCP(+TLS) and QUIC.

The paper compares five stack configurations (Table 1):

========== =====================================================
TCP        Stock TCP (Linux): IW10, Cubic, no pacing
TCP+       IW32, pacing, Cubic, tuned buffers, no slow start after idle
TCP+BBR    TCP+, but with BBRv1 as congestion control
QUIC       Stock Google QUIC: IW32, pacing, Cubic
QUIC+BBR   QUIC, but with BBRv1 as congestion control
========== =====================================================

This package implements both protocols at packet granularity over the
:mod:`repro.netem` emulator: handshakes (2-RTT TCP+TLS1.3 vs 1-RTT QUIC),
SACK-based loss recovery, receive-window flow control, idle-restart
behaviour, and — the key architectural difference — ordered-bytestream
delivery for TCP (head-of-line blocking) versus independent stream
delivery for QUIC.
"""

from repro.transport.config import (
    QUIC,
    QUIC_BBR,
    STACKS,
    TCP,
    TCP_BBR,
    TCP_PLUS,
    StackConfig,
    stack_by_name,
)
from repro.netem.flowid import FlowIdAllocator
from repro.transport.quic import QuicConnection
from repro.transport.tcp import TcpConnection

__all__ = [
    "FlowIdAllocator",
    "StackConfig",
    "TCP",
    "TCP_PLUS",
    "TCP_BBR",
    "QUIC",
    "QUIC_BBR",
    "STACKS",
    "stack_by_name",
    "TcpConnection",
    "QuicConnection",
]
