"""TLS 1.3 handshake model.

Chromium in June 2019 did not support TLS 1.3 early-data and TFO is
barely deployable, so the paper compares a 1-RTT QUIC handshake against a
2-RTT TCP+TLS 1.3 setup. We model the handshake flights as real packets
(so they are subject to loss and serialisation on slow links) using
representative flight sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: TCP SYN / SYN-ACK / pure ACK wire size.
TCP_CONTROL_PACKET_BYTES = 40

#: TLS 1.3 ClientHello wire size (with typical extensions).
CLIENT_HELLO_BYTES = 350

#: TLS 1.3 server flight: ServerHello + EncryptedExtensions + Certificate
#: (+chain) + CertificateVerify + Finished. Realistic certificate chains
#: put this at 2-3 packets.
SERVER_FLIGHT_BYTES = 3400

#: Client Finished (can be coalesced with the first request flight).
CLIENT_FINISHED_BYTES = 80

#: QUIC client Initial: gQUIC pads the first packet to full size to
#: mitigate amplification.
QUIC_INITIAL_BYTES = 1350

#: QUIC server handshake flight (REJ/SHLO + certs), also 2-3 packets.
QUIC_SERVER_FLIGHT_BYTES = 3400


@dataclass(frozen=True)
class HandshakeProfile:
    """Packet sizes of each handshake flight for one protocol family."""

    client_first_bytes: int
    server_flight_bytes: int
    client_final_bytes: int
    rtts_before_request: int

    @property
    def label(self) -> str:
        return f"{self.rtts_before_request}-RTT"


TCP_TLS13 = HandshakeProfile(
    client_first_bytes=TCP_CONTROL_PACKET_BYTES,   # SYN
    server_flight_bytes=SERVER_FLIGHT_BYTES,       # (after SYNACK) TLS flight
    client_final_bytes=CLIENT_FINISHED_BYTES,
    rtts_before_request=2,
)

QUIC_CRYPTO = HandshakeProfile(
    client_first_bytes=QUIC_INITIAL_BYTES,
    server_flight_bytes=QUIC_SERVER_FLIGHT_BYTES,
    client_final_bytes=0,                          # coalesced with request
    rtts_before_request=1,
)
