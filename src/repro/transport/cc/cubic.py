"""CUBIC congestion control (RFC 8312) with fast convergence.

This is the default algorithm of both the Linux TCP stack and Google
QUIC at the time of the paper, so it is what four of the five Table 1
stacks run.
"""

from __future__ import annotations

from typing import Optional

from repro.transport.cc.base import CongestionController

#: CUBIC scaling constant (RFC 8312 recommends 0.4).
CUBIC_C = 0.4
#: Multiplicative decrease factor.
BETA_CUBIC = 0.7
#: HyStart: do not exit slow start below this window.
HYSTART_LOW_WINDOW_SEGMENTS = 16
#: HyStart delay threshold floor (seconds).
HYSTART_DELAY_FLOOR = 0.004


class Cubic(CongestionController):
    """CUBIC with HyStart delay detection and fast convergence.

    Linux ships HyStart enabled by default: slow start exits once the RTT
    rises measurably above its floor, *before* the doubling window
    overflows a shallow bottleneck queue. Without it, IW32 stacks drown
    12 ms buffers (the paper's DSL) in their second slow-start round.
    """

    def __init__(self, mss: int, initial_window_segments: int = 10):
        super().__init__(mss, initial_window_segments)
        self.ssthresh: float = float("inf")
        self._w_max: float = 0.0
        self._k: float = 0.0
        self._epoch_start: Optional[float] = None
        self._last_loss_time: Optional[float] = None
        self._acked_bytes_in_round = 0
        self._base_rtt: float = float("inf")
        self.hystart_exits = 0

    # -- events -------------------------------------------------------------

    def on_ack(self, now: float, acked_bytes: int, rtt_sample: Optional[float],
               bytes_in_flight: int,
               delivery_rate: Optional[float] = None) -> None:
        if acked_bytes <= 0:
            return
        if rtt_sample is not None and rtt_sample > 0:
            self._base_rtt = min(self._base_rtt, rtt_sample)
        if self.cwnd < self.ssthresh:
            if self._hystart_should_exit(rtt_sample):
                self.hystart_exits += 1
                self.ssthresh = float(self.cwnd)
                self._begin_epoch(now)
                return
            # Slow start: one MSS per acked MSS (byte counting).
            self.cwnd += acked_bytes
            if self.cwnd >= self.ssthresh:
                self.cwnd = int(self.ssthresh)
                self._begin_epoch(now)
            return
        if self._epoch_start is None:
            self._begin_epoch(now)
        rtt = rtt_sample if rtt_sample else 0.1
        target = self._window_at(now - self._epoch_start + rtt)
        if target > self.cwnd:
            # Grow towards target within one RTT.
            self.cwnd += int(
                max(1.0, (target - self.cwnd) / max(self.cwnd, 1) * acked_bytes)
            )
        else:
            # TCP-friendly region / plateau: grow slowly (1 MSS / 100 acks).
            self._acked_bytes_in_round += acked_bytes
            if self._acked_bytes_in_round >= 100 * self.mss:
                self.cwnd += self.mss
                self._acked_bytes_in_round = 0

    def on_loss_event(self, now: float, lost_bytes: int,
                      bytes_in_flight: int) -> None:
        # At most one window reduction per round trip (loss event, not per
        # packet): ignore losses within ~one srtt of the previous event.
        if self._last_loss_time is not None and now - self._last_loss_time < 0.05:
            return
        self._last_loss_time = now
        current = float(self.congestion_window())
        if current < self._w_max:
            # Fast convergence: release bandwidth for newer flows.
            self._w_max = current * (1.0 + BETA_CUBIC) / 2.0
        else:
            self._w_max = current
        self.cwnd = max(int(current * BETA_CUBIC), 2 * self.mss)
        self.ssthresh = max(float(self.cwnd), 2.0 * self.mss)
        self._epoch_start = None

    def on_rto(self, now: float) -> None:
        self.ssthresh = max(self.congestion_window() * BETA_CUBIC, 2.0 * self.mss)
        self.cwnd = self.mss
        self._epoch_start = None
        self._last_loss_time = now

    def _hystart_should_exit(self, rtt_sample: Optional[float]) -> bool:
        """Delay-increase detection (the HyStart 'Delay' heuristic)."""
        if rtt_sample is None or self._base_rtt == float("inf"):
            return False
        if self.cwnd < HYSTART_LOW_WINDOW_SEGMENTS * self.mss:
            return False
        threshold = self._base_rtt + max(HYSTART_DELAY_FLOOR,
                                         self._base_rtt / 8.0)
        return rtt_sample > threshold

    # -- cubic window function ------------------------------------------------

    def _begin_epoch(self, now: float) -> None:
        self._epoch_start = now
        self._acked_bytes_in_round = 0
        w_max_segments = max(self._w_max, float(self.cwnd)) / self.mss
        cwnd_segments = self.cwnd / self.mss
        self._k = ((w_max_segments - cwnd_segments) / CUBIC_C) ** (1.0 / 3.0) \
            if w_max_segments > cwnd_segments else 0.0

    def _window_at(self, t: float) -> float:
        """W_cubic(t) in bytes."""
        w_max_segments = max(self._w_max, float(self.cwnd)) / self.mss
        segments = CUBIC_C * (t - self._k) ** 3 + w_max_segments
        return segments * self.mss

    # -- pacing --------------------------------------------------------------

    def pacing_rate(self, smoothed_rtt: float) -> Optional[float]:
        """Linux-style Cubic pacing: 2x cwnd/srtt in slow start, 1.2x after."""
        if smoothed_rtt <= 0:
            return None
        gain = 2.0 if self.cwnd < self.ssthresh else 1.2
        return gain * self.congestion_window() / smoothed_rtt

    @property
    def name(self) -> str:
        return "cubic"
