"""BBRv1 congestion control (Cardwell et al.), model-based.

The paper uses BBRv1 for the TCP+BBR and QUIC+BBR stacks ("BBRv2 was not
yet available at the time of testing"). This implementation follows the
published v1 design: a windowed-max bottleneck-bandwidth filter, a
windowed-min RTT filter, the STARTUP / DRAIN / PROBE_BW / PROBE_RTT state
machine, and gain-based pacing. Because BBR is rate- not loss-based, it
keeps its window through the random loss of the in-flight networks — the
behaviour behind the paper's "BBR again makes the difference in the plane
environment" findings.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.transport.cc.base import CongestionController

STARTUP_GAIN = 2.885  # 2/ln(2)
DRAIN_GAIN = 1.0 / STARTUP_GAIN
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
CWND_GAIN = 2.0
MIN_RTT_WINDOW = 10.0  # seconds
BW_FILTER_LEN = 10     # round trips
PROBE_RTT_DURATION = 0.2
MIN_PIPE_SEGMENTS = 4


class WindowedMaxFilter:
    """Max of samples over the last ``window`` rounds."""

    def __init__(self, window: int):
        self._window = window
        self._samples: Deque[Tuple[int, float]] = deque()

    def update(self, round_count: int, value: float) -> None:
        while self._samples and self._samples[0][0] <= round_count - self._window:
            self._samples.popleft()
        while self._samples and self._samples[-1][1] <= value:
            self._samples.pop()
        self._samples.append((round_count, value))

    def get(self) -> float:
        return self._samples[0][1] if self._samples else 0.0


class BbrV1(CongestionController):
    """BBR version 1."""

    def __init__(self, mss: int, initial_window_segments: int = 32):
        super().__init__(mss, initial_window_segments)
        self._state = "STARTUP"
        self._pacing_gain = STARTUP_GAIN
        self._cwnd_gain = STARTUP_GAIN
        self._btl_bw = WindowedMaxFilter(BW_FILTER_LEN)
        self._min_rtt: float = float("inf")
        self._min_rtt_stamp: float = 0.0
        self._min_rtt_expired = False
        self._probe_rtt_done_stamp: Optional[float] = None
        self._round_count = 0
        self._next_round_delivered = 0
        self._delivered = 0
        self._full_bw: float = 0.0
        self._full_bw_count = 0
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        self._prior_cwnd = 0

    # -- state inspection (used by tests) ------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def bottleneck_bandwidth(self) -> float:
        """Current bandwidth estimate, bytes/second."""
        return self._btl_bw.get()

    @property
    def min_rtt_estimate(self) -> float:
        return self._min_rtt

    # -- events ----------------------------------------------------------------

    def on_ack(self, now: float, acked_bytes: int, rtt_sample: Optional[float],
               bytes_in_flight: int,
               delivery_rate: Optional[float] = None) -> None:
        if acked_bytes <= 0:
            return
        self._delivered += acked_bytes

        # PROBE_RTT eligibility is decided on the *pre-update* filter age
        # (Linux checks filter_expired before refreshing the estimate).
        self._min_rtt_expired = (self._min_rtt != float("inf")
                                 and now - self._min_rtt_stamp
                                 > MIN_RTT_WINDOW)
        if rtt_sample is not None and rtt_sample > 0:
            if rtt_sample <= self._min_rtt or self._min_rtt_expired:
                self._min_rtt = rtt_sample
                self._min_rtt_stamp = now
        if delivery_rate is not None and delivery_rate > 0:
            self._btl_bw.update(self._round_count, delivery_rate)
        elif rtt_sample is not None and rtt_sample > 0:
            # Fallback when the transport provides no rate sample.
            self._btl_bw.update(self._round_count,
                                acked_bytes / max(rtt_sample, 1e-6))

        # Round accounting: a round ends once everything that was in
        # flight at the start of the round has been delivered (one RTT of
        # data), matching BBR's packet-conservation round trips.
        if self._delivered >= self._next_round_delivered:
            self._round_count += 1
            self._next_round_delivered = self._delivered + max(
                bytes_in_flight, self.mss
            )
            self._check_full_pipe()

        self._advance_state_machine(now, bytes_in_flight)
        self._set_cwnd()

    def on_loss_event(self, now: float, lost_bytes: int,
                      bytes_in_flight: int) -> None:
        # BBRv1 mostly ignores loss; it only reacts to actual RTOs.
        return

    def on_rto(self, now: float) -> None:
        self._prior_cwnd = self.congestion_window()
        self.cwnd = self.mss

    def on_idle_restart(self) -> None:
        # BBR does not collapse the window after idle; pacing resumes at
        # the estimated bottleneck rate.
        return

    # -- state machine -----------------------------------------------------------

    def _check_full_pipe(self) -> None:
        if self._state != "STARTUP":
            return
        bw = self._btl_bw.get()
        if bw > self._full_bw * 1.25:
            self._full_bw = bw
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= 3:
            self._state = "DRAIN"
            self._pacing_gain = DRAIN_GAIN
            self._cwnd_gain = STARTUP_GAIN

    def _advance_state_machine(self, now: float, bytes_in_flight: int) -> None:
        if self._state == "DRAIN":
            if bytes_in_flight <= self._bdp(1.0):
                self._enter_probe_bw(now)
        elif self._state == "PROBE_BW":
            self._maybe_cycle(now, bytes_in_flight)
            if self._min_rtt_expired:
                self._enter_probe_rtt(now)
        elif self._state == "PROBE_RTT":
            if self._probe_rtt_done_stamp is None:
                self._probe_rtt_done_stamp = now + PROBE_RTT_DURATION
            elif now >= self._probe_rtt_done_stamp:
                self._min_rtt_stamp = now
                self._probe_rtt_done_stamp = None
                self._enter_probe_bw(now)

    def _enter_probe_bw(self, now: float) -> None:
        self._state = "PROBE_BW"
        self._cwnd_gain = CWND_GAIN
        self._cycle_index = 2  # start in a neutral phase
        self._pacing_gain = PROBE_BW_GAINS[self._cycle_index]
        self._cycle_stamp = now
        if self._prior_cwnd:
            self.cwnd = max(self.cwnd, self._prior_cwnd)
            self._prior_cwnd = 0

    def _enter_probe_rtt(self, now: float) -> None:
        self._state = "PROBE_RTT"
        self._prior_cwnd = self.congestion_window()
        self._pacing_gain = 1.0
        self._cwnd_gain = 1.0
        self._probe_rtt_done_stamp = None

    def _maybe_cycle(self, now: float, bytes_in_flight: int) -> None:
        rtt = self._min_rtt if self._min_rtt != float("inf") else 0.1
        elapsed = now - self._cycle_stamp
        gain = PROBE_BW_GAINS[self._cycle_index]
        should_advance = elapsed > rtt
        if gain == 0.75:
            # Leave the drain phase as soon as the excess queue is gone.
            should_advance = elapsed > rtt or bytes_in_flight <= self._bdp(1.0)
        if should_advance:
            self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
            self._pacing_gain = PROBE_BW_GAINS[self._cycle_index]
            self._cycle_stamp = now

    # -- window / pacing ------------------------------------------------------------

    def _bdp(self, gain: float) -> float:
        bw = self._btl_bw.get()
        rtt = self._min_rtt
        if bw <= 0 or rtt == float("inf"):
            return float(self.initial_window)
        return gain * bw * rtt

    def _set_cwnd(self) -> None:
        if self._state == "PROBE_RTT":
            self.cwnd = max(MIN_PIPE_SEGMENTS * self.mss, self.mss)
            return
        target = int(self._bdp(self._cwnd_gain))
        target = max(target, MIN_PIPE_SEGMENTS * self.mss)
        if self._full_bw_count >= 3 or self._state != "STARTUP":
            self.cwnd = target
        else:
            # In startup never shrink below what slow-start style growth gives.
            self.cwnd = max(self.cwnd, target)

    def pacing_rate(self, smoothed_rtt: float) -> Optional[float]:
        bw = self._btl_bw.get()
        if bw <= 0:
            # No estimate yet: pace the initial window over the handshake RTT.
            if smoothed_rtt > 0:
                return STARTUP_GAIN * self.initial_window / smoothed_rtt
            return None
        return self._pacing_gain * bw

    @property
    def name(self) -> str:
        return "bbr"
