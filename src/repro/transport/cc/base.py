"""Interface between the loss-recovery machinery and a CC algorithm."""

from __future__ import annotations

import abc
from typing import Optional


class CongestionController(abc.ABC):
    """Congestion-control algorithm driven by sender events.

    The transport calls the ``on_*`` hooks; the controller exposes a
    congestion window in bytes and, optionally, a pacing rate in
    bytes/second. All times are simulator seconds.
    """

    def __init__(self, mss: int, initial_window_segments: int):
        if mss <= 0:
            raise ValueError("mss must be positive")
        if initial_window_segments <= 0:
            raise ValueError("initial window must be positive")
        self.mss = mss
        self.initial_window = initial_window_segments * mss
        self.cwnd = self.initial_window

    # -- events -----------------------------------------------------------

    @abc.abstractmethod
    def on_ack(self, now: float, acked_bytes: int, rtt_sample: Optional[float],
               bytes_in_flight: int,
               delivery_rate: Optional[float] = None) -> None:
        """New data was acknowledged.

        ``delivery_rate`` is a BBR-style sample in bytes/second measured by
        the transport (delivered-bytes delta over the acked packet's
        flight time); rate-based controllers rely on it.
        """

    @abc.abstractmethod
    def on_loss_event(self, now: float, lost_bytes: int,
                      bytes_in_flight: int) -> None:
        """One or more packets were declared lost (a congestion event)."""

    def on_rto(self, now: float) -> None:
        """Retransmission timeout fired: collapse the window."""
        self.cwnd = self.mss

    def on_idle_restart(self) -> None:
        """Connection was idle longer than an RTO (stock TCP resets cwnd)."""
        self.cwnd = min(self.cwnd, self.initial_window)

    def on_packet_sent(self, now: float, size: int,
                       bytes_in_flight: int) -> None:
        """A packet left the sender (BBR tracks this; Cubic ignores it)."""

    # -- queries ------------------------------------------------------------

    def can_send(self, bytes_in_flight: int) -> bool:
        """True when the window allows at least one more segment."""
        return bytes_in_flight + self.mss <= self.congestion_window()

    def congestion_window(self) -> int:
        """Current window in bytes."""
        return max(self.cwnd, self.mss)

    def pacing_rate(self, smoothed_rtt: float) -> Optional[float]:
        """Bytes/second pacing rate, or None to let the pacer derive one."""
        return None

    @property
    def name(self) -> str:
        return type(self).__name__.lower()
