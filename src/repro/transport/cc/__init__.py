"""Congestion-control algorithms shared by the TCP and QUIC stacks."""

from repro.transport.cc.base import CongestionController
from repro.transport.cc.bbr import BbrV1
from repro.transport.cc.cubic import Cubic

__all__ = ["CongestionController", "Cubic", "BbrV1", "make_controller"]


def make_controller(name: str, mss: int, initial_window_segments: int):
    """Factory: build a controller by algorithm name ("cubic" or "bbr")."""
    lowered = name.lower()
    if lowered == "cubic":
        return Cubic(mss=mss, initial_window_segments=initial_window_segments)
    if lowered in ("bbr", "bbrv1", "bbr1"):
        return BbrV1(mss=mss, initial_window_segments=initial_window_segments)
    raise ValueError(f"unknown congestion controller {name!r}")
