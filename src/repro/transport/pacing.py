"""Packet pacing.

The paper's TCP+ matches gQUIC's pacing behaviour "with Linux's defaults
of an initial quantum of ten and a refill quantum of two segments": the
pacer may burst ten segments at connection start, afterwards it releases
packets in bursts of at most two segments at the pacing rate. Stock TCP
disables pacing and sends entire windows back-to-back.
"""

from __future__ import annotations

from typing import Optional


class Pacer:
    """Token-style pacer gating when the next packet may leave.

    The transport asks :meth:`next_send_time` before each transmission and
    reports each send with :meth:`on_packet_sent`.
    """

    def __init__(self, enabled: bool, mss: int,
                 initial_quantum_segments: int = 10,
                 refill_quantum_segments: int = 2):
        self.enabled = enabled
        self.mss = mss
        self._initial_quantum = initial_quantum_segments * mss
        self._quantum = refill_quantum_segments * mss
        self._budget = float(self._initial_quantum)
        self._last_update: Optional[float] = None
        self._rate: Optional[float] = None

    @property
    def rate(self) -> Optional[float]:
        """Most recently configured pacing rate (bytes/second)."""
        return self._rate

    def set_rate(self, rate: Optional[float]) -> None:
        """Update the pacing rate (None disables rate accumulation)."""
        self._rate = rate if rate and rate > 0 else None

    def _refill(self, now: float) -> None:
        if self._last_update is None:
            self._last_update = now
            return
        if self._rate is not None:
            self._budget += (now - self._last_update) * self._rate
            cap = max(self._quantum, self._initial_quantum)
            self._budget = min(self._budget, float(cap))
        self._last_update = now

    def next_send_time(self, now: float, size: int) -> float:
        """Earliest time a packet of ``size`` bytes may be sent.

        Returns ``now`` when sending is allowed immediately.
        """
        if not self.enabled or self._rate is None:
            return now
        self._refill(now)
        if self._budget >= size:
            return now
        deficit = size - self._budget
        return now + deficit / self._rate

    def on_packet_sent(self, now: float, size: int) -> None:
        """Account a transmission against the budget."""
        if not self.enabled:
            return
        self._refill(now)
        self._budget -= size

    def reset_initial_quantum(self) -> None:
        """Restore the start-of-connection burst allowance (after idle)."""
        self._budget = float(self._initial_quantum)
        self._last_update = None
