"""QUIC connection (gQUIC-style) over the emulated path.

Implements the transport behaviours the paper credits for QUIC's edge:

* **1-RTT handshake**: the client sends a padded Initial, the server
  answers with its crypto flight, and the client may issue requests one
  RTT after starting (versus TCP+TLS 1.3's two RTTs);
* **independent streams**: stream frames from different streams are
  packetised together but delivered independently, so a lost packet only
  stalls the streams with frames inside it — no transport-level
  head-of-line blocking;
* **large ACK ranges**: ACK frames report (practically) every received
  packet-number range, where TCP is limited to 3 SACK blocks, letting the
  sender keep its scoreboard accurate under heavy loss (DA2GC/MSS);
* IW32 + pacing defaults and pluggable Cubic / BBRv1 congestion control.

Loss detection follows QUIC's packet-number based design: packet
threshold 3, time threshold 9/8 RTT, and a PTO probe timer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.netem.engine import EventLoop, ScheduledEvent
from repro.netem.flowid import FlowIdAllocator
from repro.netem.packet import Packet
from repro.netem.path import NetworkPath
from repro.transport import tls
from repro.transport.cc import make_controller
from repro.transport.config import StackConfig
from repro.transport.pacing import Pacer
from repro.transport.ranges import RangeSet
from repro.transport.rtt import RttEstimator

PACKET_OVERHEAD = 40          # UDP/IP + QUIC short header + AEAD tag
ACK_PACKET_BYTES = 50
PACKET_THRESHOLD = 3
TIME_THRESHOLD = 9.0 / 8.0
DELAYED_ACK_TIMEOUT = 0.025
MAX_PTO_BACKOFF = 64


@dataclass(slots=True)
class StreamChunk:
    """A contiguous span of one stream carried inside a packet."""

    stream_id: int
    offset: int
    length: int
    fin: bool = False


@dataclass(slots=True)
class QuicPacketPayload:
    """Payload of an emulated packet belonging to a QUIC connection."""

    kind: str                     # "ctrl" | "data" | "ack"
    direction: str                # "c2s" | "s2c"
    pkt_num: int = 0
    chunks: Tuple[StreamChunk, ...] = ()
    sent_time: float = 0.0
    ack_ranges: Tuple[Tuple[int, int], ...] = ()   # half-open pkt-num ranges
    max_data: int = 0
    ctrl: str = ""
    ctrl_index: int = 0
    ctrl_total: int = 0


@dataclass(slots=True)
class _SentPacket:
    pkt_num: int
    chunks: Tuple[StreamChunk, ...]
    size: int
    sent_time: float
    is_probe: bool = False
    delivered_at_send: int = 0


@dataclass(slots=True)
class _SendStream:
    """Sender-side state of one stream."""

    stream_id: int
    priority: int
    write_len: int = 0
    next_offset: int = 0                      # next never-sent byte
    fin_offset: Optional[int] = None
    metas: Dict[int, List[object]] = field(default_factory=dict)
    acked: RangeSet = field(default_factory=RangeSet)
    lost: RangeSet = field(default_factory=RangeSet)  # to retransmit

    def has_data(self) -> bool:
        return bool(self.lost) or self.next_offset < self.write_len


@dataclass(slots=True)
class _RecvStream:
    """Receiver-side reassembly state of one stream."""

    stream_id: int
    received: RangeSet = field(default_factory=RangeSet)
    delivered: int = 0
    fin_offset: Optional[int] = None
    fin_delivered: bool = False
    # Cursor over the peer's (ascending-by-construction) meta offsets;
    # replaces a per-delivery sort of the whole map.
    meta_keys: List[int] = field(default_factory=list)
    meta_cursor: int = 0


@dataclass
class QuicSenderStats:
    """Counters mirrored from the TCP sender for comparative analyses."""

    packets_sent: int = 0
    bytes_sent: int = 0
    retransmitted_packets: int = 0
    pto_count: int = 0
    loss_events: int = 0


StreamDataCallback = Callable[[int, int, List[object], bool], None]


class QuicEndpoint:
    """One side (client or server) of a QUIC connection."""

    def __init__(
        self,
        loop: EventLoop,
        stack: StackConfig,
        send: Callable[[int, QuicPacketPayload], None],
        direction: str,
        bdp_hint: int,
        on_stream_data: StreamDataCallback,
        peer_metas: Callable[[int], Dict[int, List[object]]],
    ):
        self._loop = loop
        self._stack = stack
        self._send = send
        self._direction = direction
        self.mss = stack.mss
        self.cc = make_controller(
            stack.congestion_control, stack.mss, stack.initial_window_segments
        )
        self.pacer = Pacer(stack.pacing, stack.mss)
        self.rtt = RttEstimator()
        self.stats = QuicSenderStats()
        self._on_stream_data = on_stream_data
        self._peer_metas = peer_metas

        self.send_streams: Dict[int, _SendStream] = {}
        self.recv_streams: Dict[int, _RecvStream] = {}
        self._stream_order: List[int] = []
        self._rr_cursor = 0
        # Cached round-robin ring: top-priority streams with data, in
        # open order. Rebuilt only when a stream's has_data()/priority
        # membership may have changed.
        self._ring: Optional[List[int]] = None

        self._next_pkt_num = 1
        #: Outstanding packets keyed by packet number. Insertion order is
        #: ascending (numbers are allocated monotonically and never
        #: reinserted), which loss detection exploits to stop scanning at
        #: ``largest_acked``.
        self._sent: Dict[int, _SentPacket] = {}
        #: Packet numbers already processed from ACK frames. QUIC ACKs
        #: re-report (nearly) the whole received history every time;
        #: tracking what was handled keeps ACK processing proportional to
        #: the *newly* acked packets only.
        self._acked_pkts = RangeSet()
        self._largest_acked = 0
        self._bytes_in_flight = 0
        self._delivered_bytes = 0      # acked wire bytes (BBR rate samples)
        self._recovery_start = -1.0    # congestion-event epoch (QUIC recovery)
        self._pto_timer: Optional[ScheduledEvent] = None
        self._pto_backoff = 1
        self._pace_timer: Optional[ScheduledEvent] = None

        # Connection-level flow control.
        self._flow_cap = max(4 * bdp_hint, 256 * 1024)
        self._peer_max_data = self._flow_cap
        self._sent_stream_bytes = 0
        self._delivered_total = 0

        # ACK generation.
        self._received_pkts = RangeSet()
        self._ack_pending = 0
        self._ack_timer: Optional[ScheduledEvent] = None

    # -- stream API -------------------------------------------------------

    def open_stream(self, stream_id: int, priority: int = 1) -> None:
        """Create sender-side state for a stream."""
        if stream_id in self.send_streams:
            raise ValueError(f"stream {stream_id} already open")
        self.send_streams[stream_id] = _SendStream(stream_id, priority)
        self._stream_order.append(stream_id)
        self._ring = None

    def stream_write(self, stream_id: int, nbytes: int,
                     meta: Optional[object] = None, fin: bool = False,
                     *, metas: Optional[List[object]] = None) -> None:
        """Append bytes (and optionally FIN) to a send stream.

        ``metas`` attaches a whole batch of markers at the write's end
        offset — the relay case, where a split proxy re-writes bytes
        whose markers arrived together.
        """
        stream = self.send_streams.get(stream_id)
        if stream is None:
            self.open_stream(stream_id)
            stream = self.send_streams[stream_id]
        if nbytes < 0:
            raise ValueError("write size must be non-negative")
        if stream.fin_offset is not None:
            raise RuntimeError(f"stream {stream_id} already finished")
        stream.write_len += nbytes
        if meta is not None:
            stream.metas.setdefault(stream.write_len, []).append(meta)
        if metas:
            stream.metas.setdefault(stream.write_len, []).extend(metas)
        if fin:
            stream.fin_offset = stream.write_len
        self._ring = None
        self.try_send()

    def send_metas(self, stream_id: int) -> Dict[int, List[object]]:
        """Offset→meta map of a send stream (peer receiver reads this)."""
        stream = self.send_streams.get(stream_id)
        return stream.metas if stream is not None else {}

    # -- packetisation -------------------------------------------------------

    def _active_ring(self) -> List[int]:
        """Top-priority streams with data, in open order (cached)."""
        ring = self._ring
        if ring is None:
            top: Optional[int] = None
            ring = []
            streams = self.send_streams
            for sid in self._stream_order:
                stream = streams[sid]
                if not stream.has_data():
                    continue
                if top is None or stream.priority < top:
                    top = stream.priority
                    ring = [sid]
                elif stream.priority == top:
                    ring.append(sid)
            self._ring = ring
        return ring

    def _pick_stream(self) -> Optional[_SendStream]:
        """Strict priority classes, round robin inside a class."""
        ring = self._active_ring()
        if not ring:
            return None
        self._rr_cursor = (self._rr_cursor + 1) % len(ring)
        return self.send_streams[ring[self._rr_cursor]]

    def _fill_packet(self) -> Tuple[Tuple[StreamChunk, ...], int]:
        """Assemble stream chunks for one packet (<= mss payload bytes)."""
        chunks: List[StreamChunk] = []
        budget = self.mss
        while budget > 0:
            stream = self._pick_stream()
            if stream is None:
                break
            chunk = self._chunk_from(stream, budget)
            if chunk is None:
                break
            chunks.append(chunk)
            budget -= chunk.length
            if chunk.length == 0:  # pure-FIN frame
                break
        payload_bytes = sum(c.length for c in chunks)
        return tuple(chunks), payload_bytes

    def _chunk_from(self, stream: _SendStream, budget: int) -> Optional[StreamChunk]:
        # Retransmissions first.
        lost = stream.lost.first()
        if lost is not None:
            start, end = lost
            length = min(end - start, budget)
            stream.lost.remove(start, start + length)
            if not stream.has_data():
                self._ring = None
            fin = (stream.fin_offset is not None
                   and start + length == stream.fin_offset)
            return StreamChunk(stream.stream_id, start, length, fin)
        if stream.next_offset < stream.write_len:
            if self._sent_stream_bytes >= self._peer_max_data:
                return None  # connection flow-control limited
            length = min(budget, stream.write_len - stream.next_offset,
                         self._peer_max_data - self._sent_stream_bytes)
            if length <= 0:
                return None
            offset = stream.next_offset
            stream.next_offset += length
            if offset + length >= stream.write_len:
                self._ring = None
            self._sent_stream_bytes += length
            fin = (stream.fin_offset is not None
                   and stream.next_offset == stream.fin_offset)
            return StreamChunk(stream.stream_id, offset, length, fin)
        if (stream.fin_offset is not None
                and stream.next_offset == stream.fin_offset == stream.write_len
                and stream.write_len == 0):
            # Empty stream closed immediately: emit a pure FIN.
            stream.fin_offset = None  # only once
            return StreamChunk(stream.stream_id, 0, 0, True)
        return None

    def try_send(self) -> None:
        """Transmit as much as window, flow control and pacing allow."""
        if self._pace_timer is not None:
            return
        while True:
            # Ring non-empty iff any stream has data (it holds the
            # top-priority subset of streams with data).
            if not self._active_ring():
                break
            if self._bytes_in_flight + self.mss > self.cc.congestion_window():
                break
            now = self._loop.now
            self.pacer.set_rate(self.cc.pacing_rate(self.rtt.smoothed()))
            release = self.pacer.next_send_time(now, self.mss + PACKET_OVERHEAD)
            if release > now + 1e-12:
                self._pace_timer = self._loop.call_at(release, self._pace_fire)
                return
            chunks, payload_bytes = self._fill_packet()
            if not chunks:
                break
            self._transmit(chunks, payload_bytes)
        self._arm_pto()

    def _pace_fire(self) -> None:
        self._pace_timer = None
        self.try_send()

    def _transmit(self, chunks: Tuple[StreamChunk, ...], payload_bytes: int,
                  is_probe: bool = False) -> None:
        now = self._loop.now
        pkt_num = self._next_pkt_num
        self._next_pkt_num += 1
        size = payload_bytes + PACKET_OVERHEAD
        payload = QuicPacketPayload(
            kind="data",
            direction=self._direction,
            pkt_num=pkt_num,
            chunks=chunks,
            sent_time=now,
        )
        self._sent[pkt_num] = _SentPacket(pkt_num, chunks, size, now, is_probe,
                                          self._delivered_bytes)
        self._bytes_in_flight += size
        self.pacer.on_packet_sent(now, size)
        self.cc.on_packet_sent(now, size, self._bytes_in_flight)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += payload_bytes
        self._send(size, payload)

    # -- ACK processing ---------------------------------------------------------

    def on_ack_frame(self, payload: QuicPacketPayload) -> None:
        """Handle an ACK from the peer."""
        now = self._loop.now
        if payload.max_data:
            self._peer_max_data = max(self._peer_max_data, payload.max_data)
        newly_acked: List[_SentPacket] = []
        largest_newly = 0
        acked_pkts = self._acked_pkts
        for lo, hi in payload.ack_ranges:
            # An ACK frame re-reports everything ever received; only the
            # never-before-seen sub-ranges can hold outstanding packets.
            for gap_lo, gap_hi in acked_pkts.missing_within(lo, hi):
                for pkt_num in range(gap_lo, gap_hi):
                    sent = self._sent.pop(pkt_num, None)
                    if sent is None:
                        continue
                    newly_acked.append(sent)
                    if pkt_num > largest_newly:
                        largest_newly = pkt_num
            acked_pkts.add(lo, hi)
        if not newly_acked:
            return
        self._largest_acked = max(self._largest_acked, largest_newly)
        self._pto_backoff = 1

        acked_bytes = 0
        rtt_sample: Optional[float] = None
        delivery_rate: Optional[float] = None
        for sent in newly_acked:
            self._bytes_in_flight -= sent.size
            acked_bytes += sent.size
            for chunk in sent.chunks:
                stream = self.send_streams.get(chunk.stream_id)
                if stream is not None and chunk.length:
                    stream.acked.add(chunk.offset, chunk.offset + chunk.length)
                    if stream.lost:
                        stream.lost.remove(chunk.offset,
                                           chunk.offset + chunk.length)
                        if not stream.has_data():
                            self._ring = None
        self._bytes_in_flight = max(0, self._bytes_in_flight)
        self._delivered_bytes += acked_bytes
        for sent in newly_acked:
            flight = now - sent.sent_time
            if flight <= 0 or sent.is_probe:
                continue
            if sent.pkt_num == largest_newly:
                rtt_sample = flight
            rate = (self._delivered_bytes - sent.delivered_at_send) / flight
            if delivery_rate is None or rate > delivery_rate:
                delivery_rate = rate
        if rtt_sample is not None:
            self.rtt.on_sample(rtt_sample)

        self._detect_losses(now)
        self.cc.on_ack(now, acked_bytes, rtt_sample, self._bytes_in_flight,
                       delivery_rate)

        if self._sent:
            self._arm_pto()
        else:
            self._cancel_pto()
        self.try_send()

    def _detect_losses(self, now: float) -> None:
        if not self._sent or self._largest_acked == 0:
            return
        delay = TIME_THRESHOLD * max(self.rtt.smoothed(0.1), self.rtt.latest_rtt)
        largest = self._largest_acked
        lost: List[_SentPacket] = []
        # Outstanding packets iterate in ascending packet-number order
        # (monotonic allocation, dict insertion order), so everything at
        # or above largest_acked can be skipped in one break: each ACK
        # examines only the packets below largest_acked once.
        for pkt_num, sent in self._sent.items():
            if pkt_num >= largest:
                break
            if (largest - pkt_num >= PACKET_THRESHOLD
                    or now - sent.sent_time >= delay):
                lost.append(sent)
        if not lost:
            return
        lost_bytes = 0
        latest_lost_send = 0.0
        for sent in lost:
            del self._sent[sent.pkt_num]
            self._bytes_in_flight -= sent.size
            lost_bytes += sent.size
            latest_lost_send = max(latest_lost_send, sent.sent_time)
            self._requeue(sent)
        self._bytes_in_flight = max(0, self._bytes_in_flight)
        self.stats.retransmitted_packets += len(lost)
        # One congestion event per recovery episode (RFC 9002): only a
        # packet sent after the previous episode began starts a new one.
        if latest_lost_send > self._recovery_start:
            self._recovery_start = now
            self.stats.loss_events += 1
            self.cc.on_loss_event(now, lost_bytes, self._bytes_in_flight)

    def _requeue(self, sent: _SentPacket) -> None:
        """Queue a lost packet's stream data for retransmission."""
        for chunk in sent.chunks:
            stream = self.send_streams.get(chunk.stream_id)
            if stream is None:
                continue
            if chunk.length == 0 and chunk.fin:
                stream.fin_offset = stream.write_len  # re-emit pure FIN
                continue
            start, end = chunk.offset, chunk.offset + chunk.length
            for gap_start, gap_end in stream.acked.missing_within(start, end):
                stream.lost.add(gap_start, gap_end)
                self._ring = None

    # -- PTO --------------------------------------------------------------------

    def _arm_pto(self) -> None:
        if not self._sent:
            return
        self._cancel_pto()
        pto = (self.rtt.smoothed() + max(4 * self.rtt.rttvar, 0.001)
               + DELAYED_ACK_TIMEOUT) * self._pto_backoff
        pto = max(pto, RttEstimator.MIN_RTO)
        self._pto_timer = self._loop.call_later(pto, self._on_pto)

    def _cancel_pto(self) -> None:
        if self._pto_timer is not None:
            self._pto_timer.cancel()
            self._pto_timer = None

    def _on_pto(self) -> None:
        self._pto_timer = None
        if not self._sent:
            return
        self.stats.pto_count += 1
        self._pto_backoff = min(self._pto_backoff * 2, MAX_PTO_BACKOFF)
        if self._pto_backoff >= 4:
            # Persistent timeouts: congestion signal, and flush the whole
            # outstanding set so recovery does not serialise one packet
            # per (exponentially backed-off) PTO.
            self.cc.on_rto(self._loop.now)
            self.stats.loss_events += 1
            outstanding = list(self._sent.values())
            self._sent.clear()
            self._bytes_in_flight = 0
            for sent in outstanding:
                self.stats.retransmitted_packets += 1
                self._requeue(sent)
        else:
            # Declare the oldest outstanding packet lost and resend it.
            # Send times are monotonic in insertion order, so the first
            # entry is the oldest (min() returned the first minimum too).
            oldest = next(iter(self._sent.values()))
            del self._sent[oldest.pkt_num]
            self._bytes_in_flight = max(0, self._bytes_in_flight - oldest.size)
            self.stats.retransmitted_packets += 1
            self._requeue(oldest)
        self.try_send()
        # A PTO probe is never blocked by the congestion window (RFC 9002);
        # if the window gated try_send, force one probe out to restart the
        # ACK clock.
        if self._bytes_in_flight + self.mss > self.cc.congestion_window():
            chunks, payload_bytes = self._fill_packet()
            if chunks:
                self._transmit(chunks, payload_bytes, is_probe=True)
        self._arm_pto()

    # -- receive path --------------------------------------------------------------

    def on_data_packet(self, payload: QuicPacketPayload) -> None:
        """Handle an incoming short-header packet with stream frames."""
        first_time = not self._received_pkts.contains_point(payload.pkt_num)
        self._received_pkts.add(payload.pkt_num, payload.pkt_num + 1)
        if first_time:
            for chunk in payload.chunks:
                self._receive_chunk(chunk)
        self._ack_pending += 1
        if self._ack_pending >= 2 or len(self._received_pkts) > 1:
            self._emit_ack()
        elif self._ack_timer is None:
            self._ack_timer = self._loop.call_later(
                DELAYED_ACK_TIMEOUT, self._emit_ack
            )

    def _receive_chunk(self, chunk: StreamChunk) -> None:
        stream = self.recv_streams.get(chunk.stream_id)
        if stream is None:
            stream = _RecvStream(chunk.stream_id)
            self.recv_streams[chunk.stream_id] = stream
        if chunk.length:
            stream.received.add(chunk.offset, chunk.offset + chunk.length)
        if chunk.fin:
            stream.fin_offset = chunk.offset + chunk.length
        self._deliver_stream(stream)

    def _deliver_stream(self, stream: _RecvStream) -> None:
        new_delivered = stream.received.first_gap_after(0)
        fin_now = (stream.fin_offset is not None
                   and new_delivered >= stream.fin_offset
                   and not stream.fin_delivered)
        if new_delivered <= stream.delivered and not fin_now:
            return
        metas_map = self._peer_metas(stream.stream_id)
        metas: List[object] = []
        keys = stream.meta_keys
        if len(keys) != len(metas_map):
            # Meta offsets key the peer's monotonic write length, so the
            # dict's insertion order is ascending and old keys are a
            # prefix of the refreshed list: the cursor stays valid.
            keys = stream.meta_keys = list(metas_map)
        i = stream.meta_cursor
        n = len(keys)
        while i < n and keys[i] <= new_delivered:
            if keys[i] > stream.delivered:
                metas.extend(metas_map[keys[i]])
            i += 1
        stream.meta_cursor = i
        advanced = new_delivered - stream.delivered
        stream.delivered = new_delivered
        self._delivered_total += advanced
        if fin_now:
            stream.fin_delivered = True
        self._on_stream_data(stream.stream_id, stream.delivered, metas, fin_now)

    def _emit_ack(self) -> None:
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        if self._ack_pending == 0:
            return
        self._ack_pending = 0
        ranges = tuple(
            (s, e) for s, e in
            self._received_pkts.newest_first(self._stack.max_sack_ranges)
        )
        payload = QuicPacketPayload(
            kind="ack",
            direction=self._direction,
            ack_ranges=ranges,
            max_data=self._delivered_total + self._flow_cap,
        )
        self._send(ACK_PACKET_BYTES, payload)

    # -- introspection ----------------------------------------------------------------

    @property
    def bytes_in_flight(self) -> int:
        return self._bytes_in_flight

    def all_acked(self) -> bool:
        """True when no packets are outstanding and no data is queued."""
        return not self._sent and not self._active_ring()


class QuicConnection:
    """Both endpoints of one QUIC connection over a NetworkPath.

    Flow-id identity is per-load, not process-global — see the TCP twin.
    """

    def __init__(
        self,
        path: NetworkPath,
        stack: StackConfig,
        on_client_stream_data: StreamDataCallback,
        on_server_stream_data: StreamDataCallback,
        flow_ids: Optional[FlowIdAllocator] = None,
    ):
        if not stack.is_quic:
            raise ValueError("QuicConnection requires a QUIC stack config")
        self._path = path
        self._loop = path.loop
        self._stack = stack
        allocator = flow_ids if flow_ids is not None else path.flow_ids
        self.flow_id = allocator.next_quic()

        bdp = path.bdp_bytes()
        self.client = QuicEndpoint(
            self._loop, stack, self._send_c2s, "c2s", bdp,
            on_client_stream_data,
            lambda sid: self.server.send_metas(sid),
        )
        self.server = QuicEndpoint(
            self._loop, stack, self._send_s2c, "s2c", bdp,
            on_server_stream_data,
            lambda sid: self.client.send_metas(sid),
        )
        path.register_client(self.flow_id, self._client_packet)
        path.register_server(self.flow_id, self._server_packet)

        self._established = False
        self._established_at: Optional[float] = None
        self._on_established: Optional[Callable[[], None]] = None
        self._hs_stage = "idle"
        self._hs_timer: Optional[ScheduledEvent] = None
        # gQUIC retransmits crypto packets far more aggressively than the
        # kernel's 1 s SYN timer (500 ms handshake timeout).
        self._hs_rto = 0.5
        self._hs_attempts = 0
        self._hs_started_at = 0.0
        self._flight_received = 0
        self._next_stream_id = 0

    # -- public API --------------------------------------------------------------

    @property
    def established(self) -> bool:
        return self._established

    @property
    def established_at(self) -> Optional[float]:
        return self._established_at

    def connect(self, on_established: Callable[[], None]) -> None:
        """Begin the QUIC crypto handshake.

        With a 0-RTT stack the connection is usable immediately: requests
        ride alongside the resumption Initial, the way gQUIC serves
        repeat visitors. Otherwise the client waits one RTT for the
        server's crypto flight.
        """
        if self._hs_stage != "idle":
            raise RuntimeError("connect() already called")
        self._on_established = on_established
        self._hs_stage = "initial_sent"
        self._hs_started_at = self._loop.now
        self._send_hs_client()
        if self._stack.zero_rtt:
            self._complete_handshake()
            return
        self._arm_hs_timer()

    def open_stream(self, priority: int = 1) -> int:
        """Client opens a new bidirectional stream; returns its id."""
        self._require_established()
        stream_id = self._next_stream_id
        self._next_stream_id += 4
        self.client.open_stream(stream_id, priority)
        return stream_id

    def client_stream_write(self, stream_id: int, nbytes: int,
                            meta: Optional[object] = None,
                            fin: bool = False, *,
                            metas: Optional[List[object]] = None) -> None:
        self._require_established()
        self.client.stream_write(stream_id, nbytes, meta, fin, metas=metas)

    def server_stream_write(self, stream_id: int, nbytes: int,
                            meta: Optional[object] = None,
                            fin: bool = False, priority: int = 1, *,
                            metas: Optional[List[object]] = None) -> None:
        self._require_established()
        if stream_id not in self.server.send_streams:
            self.server.open_stream(stream_id, priority)
        self.server.stream_write(stream_id, nbytes, meta, fin, metas=metas)

    def _require_established(self) -> None:
        if not self._established:
            raise RuntimeError("connection not yet established")

    # -- handshake ------------------------------------------------------------------

    def _send_hs_client(self) -> None:
        payload = QuicPacketPayload(kind="ctrl", direction="c2s", ctrl="initial",
                                    sent_time=self._loop.now)
        self._path.send_to_server(Packet(size=tls.QUIC_INITIAL_BYTES,
                                         payload=payload, flow_id=self.flow_id))

    def _send_server_flight(self) -> None:
        total = tls.QUIC_CRYPTO.server_flight_bytes
        mss = self._stack.mss
        npackets = (total + mss - 1) // mss
        remaining = total
        for index in range(npackets):
            size = min(mss, remaining) + PACKET_OVERHEAD
            remaining -= min(mss, remaining)
            payload = QuicPacketPayload(kind="ctrl", direction="s2c",
                                        ctrl="flight", ctrl_index=index,
                                        ctrl_total=npackets,
                                        sent_time=self._loop.now)
            self._path.send_to_client(Packet(size=size, payload=payload,
                                             flow_id=self.flow_id))

    def _hs_jitter(self) -> float:
        """Deterministic per-connection, per-attempt timer jitter.

        Concurrent handshakes of one page load would otherwise retry in
        lock-step, overflow the shared queue together and back off
        together (synchronised retry storms).
        """
        self._hs_attempts += 1
        phase = (self.flow_id * 2654435761 + self._hs_attempts * 40503) \
            % 1000
        return 0.75 + 0.5 * (phase / 1000.0)

    def _arm_hs_timer(self) -> None:
        if self._hs_timer is not None:
            self._hs_timer.cancel()
        self._hs_timer = self._loop.call_later(
            self._hs_rto * self._hs_jitter(), self._hs_timeout)

    def _hs_timeout(self) -> None:
        self._hs_timer = None
        if self._established:
            return
        self._hs_rto = min(self._hs_rto * 2, 4.0)
        if self._hs_stage == "initial_sent":
            self._send_hs_client()
        elif self._hs_stage == "flight_sent":
            self._flight_received = 0
            self._send_server_flight()
        self._arm_hs_timer()

    def _handle_hs_at_server(self, payload: QuicPacketPayload) -> None:
        if payload.ctrl == "initial" and self._hs_stage in ("initial_sent",
                                                            "flight_sent"):
            self._hs_stage = "flight_sent"
            self._send_server_flight()
            self._arm_hs_timer()

    def _handle_hs_at_client(self, payload: QuicPacketPayload) -> None:
        if payload.ctrl == "flight":
            self._flight_received += 1
            if (self._flight_received >= payload.ctrl_total
                    and not self._established):
                self._complete_handshake()

    def _complete_handshake(self) -> None:
        self._established = True
        self._established_at = self._loop.now
        self._hs_stage = "established"
        if self._hs_timer is not None:
            self._hs_timer.cancel()
            self._hs_timer = None
        rtt = self._loop.now - self._hs_started_at
        self.client.rtt.on_sample(max(rtt, self._path.min_rtt))
        self.server.rtt.on_sample(max(rtt / 2, self._path.min_rtt))
        if self._on_established is not None:
            self._on_established()

    # -- packet plumbing -----------------------------------------------------------

    def _send_c2s(self, size: int, payload: QuicPacketPayload) -> None:
        self._path.send_to_server(Packet(size=size, payload=payload,
                                         flow_id=self.flow_id))

    def _send_s2c(self, size: int, payload: QuicPacketPayload) -> None:
        self._path.send_to_client(Packet(size=size, payload=payload,
                                         flow_id=self.flow_id))

    def _client_packet(self, packet: Packet) -> None:
        payload: QuicPacketPayload = packet.payload
        if payload.kind == "ctrl":
            self._handle_hs_at_client(payload)
        elif payload.kind == "data":
            self.client.on_data_packet(payload)
        elif payload.kind == "ack":
            self.client.on_ack_frame(payload)

    def _server_packet(self, packet: Packet) -> None:
        payload: QuicPacketPayload = packet.payload
        if payload.kind == "ctrl":
            self._handle_hs_at_server(payload)
        elif payload.kind == "data":
            self.server.on_data_packet(payload)
        elif payload.kind == "ack":
            self.server.on_ack_frame(payload)

    def close(self) -> None:
        """Unregister from the path."""
        self._path.unregister(self.flow_id)
