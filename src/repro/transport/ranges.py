"""Half-open integer range set.

The workhorse behind SACK scoreboards, receive reassembly buffers and
QUIC ACK ranges. Ranges are ``[start, end)`` byte or packet-number
intervals kept sorted and coalesced.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple


class RangeSet:
    """Sorted, coalesced set of half-open integer ranges.

    >>> rs = RangeSet()
    >>> rs.add(0, 10); rs.add(20, 30); rs.add(10, 20)
    >>> list(rs)
    [(0, 30)]
    """

    __slots__ = ("_starts", "_ends", "_covered")

    def __init__(self, ranges: Iterable[Tuple[int, int]] = ()):
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._covered = 0
        for start, end in ranges:
            self.add(start, end)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self._starts, self._ends))

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:
        inner = ", ".join(f"[{s},{e})" for s, e in self)
        return f"RangeSet({inner})"

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging with neighbours."""
        if start >= end:
            return
        # Find all existing ranges overlapping or adjacent to [start, end).
        i = bisect.bisect_left(self._ends, start)
        j = bisect.bisect_right(self._starts, end)
        if i < j:
            start = min(start, self._starts[i])
            end = max(end, self._ends[j - 1])
            for k in range(i, j):
                self._covered -= self._ends[k] - self._starts[k]
        self._covered += end - start
        self._starts[i:j] = [start]
        self._ends[i:j] = [end]

    def remove(self, start: int, end: int) -> None:
        """Delete ``[start, end)`` from the set (splitting as needed)."""
        if start >= end or not self._starts:
            return
        i = bisect.bisect_right(self._ends, start)
        new_starts: List[int] = []
        new_ends: List[int] = []
        k = i
        while k < len(self._starts) and self._starts[k] < end:
            s, e = self._starts[k], self._ends[k]
            self._covered -= min(e, end) - max(s, start)
            if s < start:
                new_starts.append(s)
                new_ends.append(start)
            if e > end:
                new_starts.append(end)
                new_ends.append(e)
            k += 1
        self._starts[i:k] = new_starts
        self._ends[i:k] = new_ends

    def contains(self, start: int, end: int) -> bool:
        """True when the whole of ``[start, end)`` is covered."""
        if start >= end:
            return True
        i = bisect.bisect_right(self._starts, start) - 1
        return i >= 0 and self._ends[i] >= end

    def contains_point(self, value: int) -> bool:
        """True when ``value`` lies inside any range."""
        return self.contains(value, value + 1)

    def missing_within(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Gaps of ``[start, end)`` not covered by the set."""
        gaps: List[Tuple[int, int]] = []
        cursor = start
        starts, ends = self._starts, self._ends
        n = len(starts)
        # Jump straight to the first range that can overlap [start, end).
        i = bisect.bisect_right(ends, start)
        while i < n:
            s, e = starts[i], ends[i]
            if s >= end:
                break
            if s > cursor:
                gaps.append((cursor, min(s, end)))
            cursor = max(cursor, e)
            if cursor >= end:
                break
            i += 1
        if cursor < end:
            gaps.append((cursor, end))
        return gaps

    def covered_bytes(self) -> int:
        """Total number of integers covered (maintained incrementally)."""
        return self._covered

    def first(self) -> Optional[Tuple[int, int]]:
        """Lowest range, or None when empty."""
        if not self._starts:
            return None
        return self._starts[0], self._ends[0]

    def first_gap_after(self, point: int) -> int:
        """Smallest value >= point not in the set (the 'cumulative ack')."""
        i = bisect.bisect_right(self._starts, point) - 1
        if i >= 0 and self._ends[i] > point:
            return self._ends[i]
        return point

    def highest(self) -> int:
        """Largest covered value + 1, or 0 when empty."""
        return self._ends[-1] if self._ends else 0

    def newest_first(self, limit: int) -> List[Tuple[int, int]]:
        """Up to ``limit`` ranges, highest first (TCP SACK block order)."""
        out = list(self)[::-1]
        return out[:limit]
