"""Protocol stack configurations from Table 1 of the paper.

========== =============================================================
TCP        Stock TCP (Linux): IW10, Cubic, no pacing, slow start after
           idle, autotuned (initially small) buffers, 3 SACK blocks.
TCP+       IW32, pacing, Cubic, tuned buffers (sized to the BDP),
           no slow start after idle.
TCP+BBR    TCP+, but with BBRv1 as congestion control.
QUIC       Stock Google QUIC: IW32, pacing, Cubic, 1-RTT handshake,
           independent streams, large ACK ranges.
QUIC+BBR   QUIC, but with BBRv1 as congestion control.
========== =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.util.units import MSS_BYTES


@dataclass(frozen=True)
class StackConfig:
    """One row of Table 1: a fully parameterised Web protocol stack."""

    name: str
    transport: str                 # "tcp" or "quic"
    congestion_control: str        # "cubic" or "bbr"
    initial_window_segments: int
    pacing: bool
    tuned_buffers: bool
    slow_start_after_idle: bool
    max_sack_ranges: int
    description: str = ""
    mss: int = MSS_BYTES
    #: 0-RTT resumption (TLS early-data style). The paper argues real
    #: deployments cannot enable this broadly yet (replay attacks,
    #: Section 3), so no Table 1 stack uses it — it exists for the
    #: future-work ablation: what the studies would compare once 0-RTT
    #: is deployable.
    zero_rtt: bool = False

    def __post_init__(self) -> None:
        if self.transport not in ("tcp", "quic"):
            raise ValueError(f"transport must be tcp or quic, got {self.transport}")
        if self.congestion_control not in ("cubic", "bbr"):
            raise ValueError(
                f"congestion control must be cubic or bbr, got "
                f"{self.congestion_control}"
            )
        if self.initial_window_segments <= 0:
            raise ValueError("initial window must be positive")
        if self.max_sack_ranges <= 0:
            raise ValueError("max SACK ranges must be positive")

    @property
    def is_quic(self) -> bool:
        return self.transport == "quic"

    @property
    def handshake_rtts(self) -> int:
        """RTTs before the first HTTP request can leave the client.

        The paper compares a 1-RTT QUIC handshake against TCP+TLS 1.3
        without TFO or early-data, i.e. 2 RTTs; with 0-RTT resumption the
        request leaves immediately.
        """
        if self.zero_rtt:
            return 0
        return 1 if self.is_quic else 2

    def table_row(self) -> Dict[str, str]:
        """Row for the Table 1 report."""
        return {
            "Protocol": self.name,
            "Description": self.description,
        }


TCP = StackConfig(
    name="TCP",
    transport="tcp",
    congestion_control="cubic",
    initial_window_segments=10,
    pacing=False,
    tuned_buffers=False,
    slow_start_after_idle=True,
    max_sack_ranges=3,
    description="Stock TCP (Linux): IW10, Cubic",
)

TCP_PLUS = StackConfig(
    name="TCP+",
    transport="tcp",
    congestion_control="cubic",
    initial_window_segments=32,
    pacing=True,
    tuned_buffers=True,
    slow_start_after_idle=False,
    max_sack_ranges=3,
    description="IW32, Pacing, Cubic, tuned buffers, no slow start after idle",
)

TCP_BBR = StackConfig(
    name="TCP+BBR",
    transport="tcp",
    congestion_control="bbr",
    initial_window_segments=32,
    pacing=True,
    tuned_buffers=True,
    slow_start_after_idle=False,
    max_sack_ranges=3,
    description="TCP+, but with BBRv1 as congestion control",
)

QUIC = StackConfig(
    name="QUIC",
    transport="quic",
    congestion_control="cubic",
    initial_window_segments=32,
    pacing=True,
    tuned_buffers=True,
    slow_start_after_idle=False,
    max_sack_ranges=256,
    description="Stock Google QUIC: IW 32, Pacing, Cubic",
)

QUIC_BBR = StackConfig(
    name="QUIC+BBR",
    transport="quic",
    congestion_control="bbr",
    initial_window_segments=32,
    pacing=True,
    tuned_buffers=True,
    slow_start_after_idle=False,
    max_sack_ranges=256,
    description="QUIC, but with BBRv1 as congestion control",
)

#: All Table 1 stacks in paper order.
STACKS: Tuple[StackConfig, ...] = (TCP, TCP_PLUS, TCP_BBR, QUIC, QUIC_BBR)

#: Future-work variant (Section 3): QUIC with 0-RTT resumption, as a
#: repeat-visit scenario would see it. Not part of Table 1.
QUIC_0RTT = StackConfig(
    name="QUIC-0RTT",
    transport="quic",
    congestion_control="cubic",
    initial_window_segments=32,
    pacing=True,
    tuned_buffers=True,
    slow_start_after_idle=False,
    max_sack_ranges=256,
    description="QUIC with 0-RTT connection resumption (repeat visit)",
    zero_rtt=True,
)

#: The protocol pairs compared side-by-side in the A/B study (Figure 4).
AB_PAIRS: Tuple[Tuple[StackConfig, StackConfig], ...] = (
    (TCP_PLUS, TCP),
    (QUIC, TCP),
    (QUIC, TCP_PLUS),
    (QUIC_BBR, TCP_BBR),
)

_BY_NAME: Dict[str, StackConfig] = {s.name.upper(): s for s in STACKS}
_BY_NAME[QUIC_0RTT.name.upper()] = QUIC_0RTT


def stack_by_name(name: str) -> StackConfig:
    """Look up a Table 1 stack by name (case-insensitive)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        known = ", ".join(s.name for s in STACKS)
        raise KeyError(f"unknown stack {name!r}; known: {known}") from None
