"""RTT estimation and retransmission timeout per RFC 6298."""

from __future__ import annotations


class RttEstimator:
    """Smoothed RTT / RTT variance tracker with RTO computation.

    Matches the classic TCP estimator (alpha=1/8, beta=1/4) that both the
    Linux stack and Google QUIC's loss detection use.
    """

    #: Linux's minimum RTO (and a good stand-in for QUIC's PTO floor).
    MIN_RTO = 0.2
    MAX_RTO = 60.0
    INITIAL_RTO = 1.0

    def __init__(self):
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self.min_rtt: float = float("inf")
        self.latest_rtt: float = 0.0
        self._has_sample = False

    @property
    def has_sample(self) -> bool:
        """True once at least one RTT sample was taken."""
        return self._has_sample

    def on_sample(self, rtt: float) -> None:
        """Feed a new RTT measurement (seconds, from a non-retransmitted ack)."""
        if rtt <= 0:
            raise ValueError(f"rtt sample must be positive, got {rtt}")
        self.latest_rtt = rtt
        self.min_rtt = min(self.min_rtt, rtt)
        if not self._has_sample:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
            self._has_sample = True
            return
        self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
        self.srtt = 0.875 * self.srtt + 0.125 * rtt

    def rto(self) -> float:
        """Current retransmission timeout."""
        if not self._has_sample:
            return self.INITIAL_RTO
        rto = self.srtt + max(4.0 * self.rttvar, 0.001)
        return min(max(rto, self.MIN_RTO), self.MAX_RTO)

    def smoothed(self, default: float = INITIAL_RTO) -> float:
        """Smoothed RTT, or ``default`` before the first sample."""
        return self.srtt if self._has_sample else default
