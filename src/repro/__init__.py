"""repro: a reproduction of "Perceiving QUIC: Do Users Notice or Even
Care?" (Rüth, Wolsing, Wehrle, Hohlfeld — CoNEXT 2019).

The package rebuilds the paper's entire pipeline from scratch:

* :mod:`repro.netem` — packet-level network emulation (Table 2 profiles);
* :mod:`repro.transport` — TCP+TLS 1.3 and QUIC with Cubic/BBRv1
  (Table 1 stacks);
* :mod:`repro.http` — HTTP/2-over-TCP and HTTP/3-over-QUIC mappings;
* :mod:`repro.web` — the 36-site study corpus;
* :mod:`repro.browser` — page loads, visual-progress curves and the
  FVC/LVC/SI/VC85/PLT metrics;
* :mod:`repro.testbed` — cached condition sweeps;
* :mod:`repro.study` — both user studies with simulated participants and
  the R1-R7 conformance filters;
* :mod:`repro.analysis` / :mod:`repro.report` — the analyses and ASCII
  renderings of Tables 1-3 and Figures 3-6.

Quickstart::

    from repro import Testbed, StudyPlan, run_ab_study, apply_filters
    testbed = Testbed(runs=7)
    plan = StudyPlan(sites=["wikipedia.org", "gov.uk"])
    study = run_ab_study(testbed, group="microworker", plan=plan,
                         participants=50, seed=1)
    kept, funnel = apply_filters(study.sessions, "microworker", "ab")
"""

from repro.analysis import (
    ab_vote_shares,
    agreement_by_condition,
    anova_by_setting,
    behaviour_statistics,
    correlation_heatmap,
    per_website_differences,
    rating_means,
)
from repro.browser import compute_metrics, load_page, record_website
from repro.netem import NETWORKS, NetworkProfile, network_by_name
from repro.study import (
    StudyPlan,
    apply_filters,
    run_ab_study,
    run_rating_study,
)
from repro.testbed import RecordingSummary, Testbed
from repro.transport import STACKS, StackConfig, stack_by_name
from repro.web import build_corpus, build_site

__version__ = "1.0.0"

__all__ = [
    "Testbed",
    "RecordingSummary",
    "StudyPlan",
    "run_ab_study",
    "run_rating_study",
    "apply_filters",
    "ab_vote_shares",
    "rating_means",
    "anova_by_setting",
    "per_website_differences",
    "agreement_by_condition",
    "behaviour_statistics",
    "correlation_heatmap",
    "load_page",
    "record_website",
    "compute_metrics",
    "build_corpus",
    "build_site",
    "NETWORKS",
    "NetworkProfile",
    "network_by_name",
    "STACKS",
    "StackConfig",
    "stack_by_name",
    "__version__",
]
