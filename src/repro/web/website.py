"""Website: a dependency graph of web objects across origins."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.web.objects import WebObject


@dataclass(frozen=True)
class Website:
    """An immutable page model.

    Objects are topologically consistent: every ``parent_id`` refers to an
    object appearing earlier in ``objects``, and exactly one root HTML
    document exists.
    """

    name: str
    objects: Tuple[WebObject, ...]

    def __post_init__(self) -> None:
        if not self.objects:
            raise ValueError("a website needs at least one object")
        roots = [o for o in self.objects if o.is_root]
        if len(roots) != 1:
            raise ValueError(f"expected exactly one root object, got {len(roots)}")
        if not self.objects[0].is_root:
            raise ValueError("the root object must come first")
        ids = {o.object_id for o in self.objects}
        if len(ids) != len(self.objects):
            raise ValueError("duplicate object ids")
        seen = set()
        for obj in self.objects:
            if obj.parent_id is not None and obj.parent_id not in seen:
                raise ValueError(
                    f"object {obj.object_id} references parent "
                    f"{obj.parent_id} that does not precede it"
                )
            seen.add(obj.object_id)

    # -- derived properties --------------------------------------------------

    @property
    def root(self) -> WebObject:
        return self.objects[0]

    @property
    def total_bytes(self) -> int:
        """Page weight in body bytes."""
        return sum(o.size for o in self.objects)

    @property
    def object_count(self) -> int:
        return len(self.objects)

    @property
    def hosts(self) -> Tuple[str, ...]:
        """Distinct contacted hosts, in first-use order."""
        seen: Dict[str, None] = {}
        for obj in self.objects:
            seen.setdefault(obj.host, None)
        return tuple(seen)

    @property
    def host_count(self) -> int:
        return len(self.hosts)

    def objects_by_id(self) -> Dict[int, WebObject]:
        return {o.object_id: o for o in self.objects}

    def children_of(self, object_id: int) -> List[WebObject]:
        return [o for o in self.objects if o.parent_id == object_id]

    def total_render_weight(self) -> float:
        return sum(o.render_weight for o in self.objects)

    def summary(self) -> Dict[str, object]:
        """Compact descriptive record (used in reports and DESIGN docs)."""
        return {
            "name": self.name,
            "objects": self.object_count,
            "bytes": self.total_bytes,
            "hosts": self.host_count,
        }
