"""Resource objects making up a website."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

RESOURCE_TYPES = ("html", "css", "js", "font", "image", "other")


@dataclass(frozen=True)
class WebObject:
    """One fetchable resource of a page.

    Discovery: an object becomes known to the browser once
    ``discovery_fraction`` of its parent's body has been delivered (HTML
    parsing / script execution discovering sub-resources). The root
    document has no parent and is requested at navigation start.

    Rendering: ``render_weight`` is the object's share of the final visual
    appearance. ``progressive`` objects (HTML, images) contribute
    proportionally to received bytes; others contribute all-or-nothing on
    completion. ``render_blocking`` objects gate first paint (stylesheets
    and synchronous scripts in the head).
    """

    object_id: int
    url: str
    host: str
    size: int
    resource_type: str
    parent_id: Optional[int] = None
    discovery_fraction: float = 0.0
    render_weight: float = 0.0
    render_blocking: bool = False
    progressive: bool = False
    server_delay_s: float = 0.002

    def __post_init__(self) -> None:
        if self.resource_type not in RESOURCE_TYPES:
            raise ValueError(f"unknown resource type {self.resource_type!r}")
        if self.size <= 0:
            raise ValueError("object size must be positive")
        if not 0.0 <= self.discovery_fraction <= 1.0:
            raise ValueError("discovery fraction must be in [0, 1]")
        if self.render_weight < 0:
            raise ValueError("render weight must be non-negative")
        if self.parent_id is None and self.resource_type != "html":
            raise ValueError("only the root HTML document may lack a parent")

    @property
    def is_root(self) -> bool:
        return self.parent_id is None
