"""The 36-site study corpus.

Each site is described by a :class:`SiteSpec` (page weight, object count,
host count, structural style) and expanded into a concrete
:class:`~repro.web.website.Website` deterministically from the corpus
seed. Twelve entries are the named sites the paper's evaluation discusses,
with their documented qualitative traits; the remainder span the Alexa/Moz
diversity in size, object count and multi-server spread described in
Wijnants et al. [23] and the authors' testbed paper [24].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.util.rng import spawn_rng
from repro.web.objects import WebObject
from repro.web.website import Website

KB = 1_000


@dataclass(frozen=True)
class SiteSpec:
    """Generator parameters for one synthetic site."""

    name: str
    total_kb: int          # approximate page weight (body bytes)
    n_objects: int         # total object count including the root
    n_hosts: int           # distinct contacted hosts
    html_kb: int           # size of the root document
    image_share: float = 0.55   # fraction of non-root objects that are images
    third_party_share: float = 0.4  # objects served off the primary host
    deep_chains: bool = False       # scripts that discover more resources

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValueError("need at least the root object")
        if self.n_hosts < 1:
            raise ValueError("need at least one host")
        if self.n_hosts > self.n_objects:
            raise ValueError("cannot contact more hosts than objects")


#: The five sites of the controlled lab study (Section 4.1).
LAB_SITE_NAMES = (
    "wikipedia.org", "gov.uk", "etsy.com", "demorgen.be", "nytimes.com",
)

#: Named sites with traits taken from the paper's discussion.
_NAMED_SPECS = (
    SiteSpec("wikipedia.org", total_kb=700, n_objects=22, n_hosts=3,
             html_kb=80, image_share=0.5, third_party_share=0.1),
    SiteSpec("gov.uk", total_kb=350, n_objects=16, n_hosts=2,
             html_kb=40, image_share=0.4, third_party_share=0.1),
    SiteSpec("etsy.com", total_kb=2600, n_objects=110, n_hosts=18,
             html_kb=60, image_share=0.7, third_party_share=0.45),
    SiteSpec("demorgen.be", total_kb=3100, n_objects=130, n_hosts=24,
             html_kb=90, image_share=0.6, third_party_share=0.55,
             deep_chains=True),
    SiteSpec("nytimes.com", total_kb=3400, n_objects=150, n_hosts=26,
             html_kb=120, image_share=0.55, third_party_share=0.5,
             deep_chains=True),
    # "Spotify.com ... the website is small, but the browser has to
    # contact many hosts."
    SiteSpec("spotify.com", total_kb=550, n_objects=40, n_hosts=16,
             html_kb=30, image_share=0.45, third_party_share=0.7),
    # "Apache.org, a relatively small website in terms of size and
    # resources."
    SiteSpec("apache.org", total_kb=280, n_objects=11, n_hosts=2,
             html_kb=35, image_share=0.5, third_party_share=0.1),
    SiteSpec("w3.org", total_kb=320, n_objects=14, n_hosts=2,
             html_kb=45, image_share=0.4, third_party_share=0.1),
    # "Wordpress.com ... a website with few resources, small in size, and
    # less than ten contacted hosts."
    SiteSpec("wordpress.com", total_kb=420, n_objects=18, n_hosts=7,
             html_kb=35, image_share=0.5, third_party_share=0.35),
    SiteSpec("gravatar.com", total_kb=260, n_objects=12, n_hosts=4,
             html_kb=25, image_share=0.5, third_party_share=0.3),
    SiteSpec("google.com", total_kb=380, n_objects=12, n_hosts=3,
             html_kb=50, image_share=0.4, third_party_share=0.2),
    SiteSpec("nature.com", total_kb=1900, n_objects=90, n_hosts=20,
             html_kb=85, image_share=0.55, third_party_share=0.5,
             deep_chains=True),
)

#: Generated fillers spanning the remaining diversity (24 sites).
_FILLER_PARAMS: Tuple[Tuple[int, int, int, int, float, float, bool], ...] = (
    # total_kb, objects, hosts, html_kb, image_share, third_party, deep
    (150, 6, 1, 20, 0.4, 0.0, False),
    (240, 9, 2, 30, 0.45, 0.1, False),
    (400, 20, 5, 40, 0.5, 0.3, False),
    (520, 28, 8, 45, 0.55, 0.35, False),
    (640, 25, 4, 55, 0.5, 0.2, False),
    (760, 35, 10, 50, 0.6, 0.4, False),
    (880, 40, 6, 60, 0.55, 0.3, False),
    (1000, 45, 12, 65, 0.6, 0.45, False),
    (1150, 55, 9, 70, 0.55, 0.35, True),
    (1300, 60, 14, 70, 0.6, 0.5, False),
    (1500, 65, 11, 80, 0.6, 0.4, True),
    (1700, 70, 16, 80, 0.6, 0.5, False),
    (1900, 80, 13, 85, 0.65, 0.45, True),
    (2100, 85, 18, 90, 0.6, 0.5, False),
    (2300, 95, 15, 95, 0.65, 0.45, True),
    (2600, 100, 20, 100, 0.6, 0.55, False),
    (2900, 110, 22, 100, 0.65, 0.5, True),
    (3200, 120, 17, 110, 0.6, 0.5, True),
    (3600, 130, 25, 115, 0.65, 0.55, True),
    (4000, 140, 21, 120, 0.6, 0.5, True),
    (4500, 150, 28, 125, 0.65, 0.55, True),
    (5000, 160, 24, 130, 0.6, 0.5, True),
    (5600, 170, 30, 135, 0.65, 0.6, True),
    (6200, 180, 27, 140, 0.6, 0.55, True),
)


def _filler_specs() -> Tuple[SiteSpec, ...]:
    specs = []
    for index, params in enumerate(_FILLER_PARAMS):
        total_kb, n_objects, n_hosts, html_kb, img, tp, deep = params
        specs.append(SiteSpec(
            name=f"site-{index + 1:02d}.example",
            total_kb=total_kb,
            n_objects=n_objects,
            n_hosts=n_hosts,
            html_kb=html_kb,
            image_share=img,
            third_party_share=tp,
            deep_chains=deep,
        ))
    return tuple(specs)


SITE_SPECS: Tuple[SiteSpec, ...] = _NAMED_SPECS + _filler_specs()
CORPUS_SITE_NAMES: Tuple[str, ...] = tuple(s.name for s in SITE_SPECS)

_SPEC_BY_NAME: Dict[str, SiteSpec] = {s.name: s for s in SITE_SPECS}


def build_site(name: str, seed: int = 0) -> Website:
    """Expand one named spec into a concrete Website, deterministically."""
    try:
        spec = _SPEC_BY_NAME[name]
    except KeyError:
        known = ", ".join(CORPUS_SITE_NAMES[:5]) + ", ..."
        raise KeyError(f"unknown site {name!r}; corpus has {known}") from None
    return _expand(spec, spawn_rng(seed, "corpus", spec.name))


def build_corpus(seed: int = 0) -> List[Website]:
    """Build all 36 corpus sites."""
    return [build_site(name, seed) for name in CORPUS_SITE_NAMES]


# -- expansion ---------------------------------------------------------------


def _expand(spec: SiteSpec, rng: np.random.Generator) -> Website:
    primary = spec.name
    hosts = [primary] + [
        f"cdn{i}.{spec.name}" if i <= max(1, spec.n_hosts // 3)
        else f"thirdparty{i}.example"
        for i in range(1, spec.n_hosts)
    ]

    objects: List[WebObject] = []
    root = WebObject(
        object_id=0,
        url=f"https://{primary}/",
        host=primary,
        size=spec.html_kb * KB,
        resource_type="html",
        parent_id=None,
        render_weight=0.25,
        progressive=True,
        server_delay_s=_delay(rng, base=0.004),
    )
    objects.append(root)

    n_children = spec.n_objects - 1
    if n_children == 0:
        return Website(spec.name, tuple(objects))

    budget = max(spec.total_kb - spec.html_kb, n_children) * KB
    sizes = _split_budget(budget, n_children, rng)
    types = _assign_types(n_children, spec, rng)
    object_hosts = _assign_hosts(types, hosts, spec, rng)

    # Scripts that will discover further resources (deep chains).
    chain_parents: List[int] = []

    for index in range(n_children):
        object_id = index + 1
        rtype = types[index]
        parent_id = 0
        discovery = float(rng.uniform(0.05, 0.95))
        render_blocking = False
        render_weight = 0.0
        progressive = False

        if rtype == "css":
            discovery = float(rng.uniform(0.02, 0.15))
            render_blocking = True
        elif rtype == "js":
            discovery = float(rng.uniform(0.05, 0.4))
            render_blocking = bool(rng.random() < 0.5)
            if spec.deep_chains and rng.random() < 0.4:
                chain_parents.append(object_id)
        elif rtype == "font":
            discovery = float(rng.uniform(0.05, 0.2))
        elif rtype == "image":
            render_weight = float(rng.uniform(0.2, 1.0))
            progressive = True
            # Late-discovered images model below-the-fold content.
            if discovery > 0.7:
                render_weight *= 0.3
        else:  # other (xhr, json, tracking pixels)
            discovery = float(rng.uniform(0.3, 1.0))

        if spec.deep_chains and chain_parents and rtype in ("image", "other"):
            if rng.random() < 0.3:
                parent_id = int(rng.choice(chain_parents))
                discovery = float(rng.uniform(0.5, 1.0))

        objects.append(WebObject(
            object_id=object_id,
            url=f"https://{object_hosts[index]}/r/{object_id}.{rtype}",
            host=object_hosts[index],
            size=sizes[index],
            resource_type=rtype,
            parent_id=parent_id,
            discovery_fraction=discovery,
            render_weight=render_weight,
            render_blocking=render_blocking,
            progressive=progressive,
            server_delay_s=_delay(rng),
        ))

    _add_tail_loads(objects, spec, hosts, rng)
    site = Website(spec.name, tuple(objects))
    _check_expansion(site, spec)
    return site


def _add_tail_loads(objects: List[WebObject], spec: SiteSpec,
                    hosts: List[str], rng: np.random.Generator) -> None:
    """Repurpose late non-visual objects into heavy tail loads.

    Real pages keep transferring (analytics beacons, prefetches, lazy
    bundles) long after the viewport is stable; this is exactly why PLT
    correlates poorly with perception (Figure 6). We inflate a couple of
    the latest-discovered invisible objects so PLT gains a tail that the
    visual metrics do not see.
    """
    candidates = [i for i, obj in enumerate(objects)
                  if obj.resource_type == "other"
                  and obj.discovery_fraction > 0.6
                  and obj.render_weight == 0.0]
    if not candidates:
        return
    n_tail = min(len(candidates), 1 + int(rng.integers(2)))
    picks = rng.choice(candidates, size=n_tail, replace=False)
    # Tail sizes are drawn independently of the page weight: lazy bundles
    # and beacons are a property of the site's tooling, not its visible
    # size — this is precisely what decouples PLT from the visual pace.
    for index in picks:
        obj = objects[int(index)]
        tail_bytes = min(int(rng.lognormal(mean=11.8, sigma=0.8)), 700_000)
        objects[int(index)] = WebObject(
            object_id=obj.object_id,
            url=obj.url,
            host=obj.host,
            size=max(obj.size, tail_bytes),
            resource_type=obj.resource_type,
            parent_id=obj.parent_id,
            discovery_fraction=max(obj.discovery_fraction, 0.85),
            render_weight=0.0,
            render_blocking=False,
            progressive=False,
            server_delay_s=obj.server_delay_s,
        )


def _delay(rng: np.random.Generator, base: float = 0.002) -> float:
    """Deterministic small server think time (Mahimahi serves from disk)."""
    return float(base + rng.uniform(0.0, 0.006))


def _split_budget(budget: int, n: int, rng: np.random.Generator) -> List[int]:
    """Split a byte budget into n lognormal-ish object sizes (>= 400 B)."""
    raw = rng.lognormal(mean=0.0, sigma=1.1, size=n)
    shares = raw / raw.sum()
    sizes = [max(400, int(budget * share)) for share in shares]
    return sizes


def _assign_types(n: int, spec: SiteSpec, rng: np.random.Generator) -> List[str]:
    types: List[str] = []
    n_css = max(1, int(n * 0.08))
    n_js = max(1, int(n * 0.18))
    n_font = max(0, int(n * 0.04))
    n_img = max(1, int(n * spec.image_share))
    for _ in range(n_css):
        types.append("css")
    for _ in range(n_js):
        types.append("js")
    for _ in range(n_font):
        types.append("font")
    while len(types) < n:
        types.append("image" if len(types) < n_css + n_js + n_font + n_img
                     else "other")
    types = types[:n]
    rng.shuffle(types)
    return types


def _assign_hosts(types: List[str], hosts: List[str], spec: SiteSpec,
                  rng: np.random.Generator) -> List[str]:
    """Distribute objects over hosts; every host gets at least one object."""
    n = len(types)
    assignment: List[str] = []
    for rtype in types:
        if len(hosts) == 1 or rng.random() > spec.third_party_share:
            assignment.append(hosts[0])
        else:
            assignment.append(hosts[1 + int(rng.integers(len(hosts) - 1))])
    # Guarantee full host usage so host_count matches the spec.
    missing = [h for h in hosts if h not in set(assignment)]
    if missing and n >= len(hosts):
        slots = rng.choice(n, size=len(missing), replace=False)
        for host, slot in zip(missing, slots):
            assignment[int(slot)] = host
    return assignment


def _check_expansion(site: Website, spec: SiteSpec) -> None:
    """Internal consistency guard for generated sites."""
    if site.object_count != spec.n_objects:
        raise AssertionError(
            f"{spec.name}: expected {spec.n_objects} objects, "
            f"got {site.object_count}"
        )
    if site.host_count > spec.n_hosts:
        raise AssertionError(
            f"{spec.name}: more hosts than specified "
            f"({site.host_count} > {spec.n_hosts})"
        )
