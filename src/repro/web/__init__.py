"""Website models and the 36-site study corpus.

The paper replays 36 real websites chosen (following Wijnants et al. [23])
for high variation in page size, object count and the number of contacted
hosts. The originals cannot be redistributed, so :mod:`repro.web.corpus`
builds 36 deterministic synthetic sites that span the same diversity and
keep the named sites the paper's evaluation discusses, with matching
qualitative traits.
"""

from repro.web.corpus import CORPUS_SITE_NAMES, LAB_SITE_NAMES, build_corpus, build_site
from repro.web.objects import WebObject
from repro.web.website import Website

__all__ = [
    "WebObject",
    "Website",
    "build_corpus",
    "build_site",
    "CORPUS_SITE_NAMES",
    "LAB_SITE_NAMES",
]
