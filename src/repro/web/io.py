"""Serialise websites to and from a HAR-flavoured JSON format.

Mahimahi users record real sites; users of this library may want to feed
their own page descriptions into the testbed. The schema is a pragmatic
subset of a HAR file: one entry per object with url, host, size, type and
the dependency/rendering attributes our browser model needs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.web.objects import WebObject
from repro.web.website import Website

SCHEMA_VERSION = 1


def website_to_dict(site: Website) -> Dict[str, object]:
    """JSON-serialisable description of a website."""
    return {
        "schema": SCHEMA_VERSION,
        "name": site.name,
        "objects": [
            {
                "id": o.object_id,
                "url": o.url,
                "host": o.host,
                "size": o.size,
                "type": o.resource_type,
                "parent": o.parent_id,
                "discovery": o.discovery_fraction,
                "render_weight": o.render_weight,
                "render_blocking": o.render_blocking,
                "progressive": o.progressive,
                "server_delay_s": o.server_delay_s,
            }
            for o in site.objects
        ],
    }


def website_from_dict(data: Dict[str, object]) -> Website:
    """Inverse of :func:`website_to_dict` (validates via the model)."""
    schema = data.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {schema}")
    objects: List[WebObject] = []
    for entry in data["objects"]:  # type: ignore[index]
        objects.append(WebObject(
            object_id=int(entry["id"]),
            url=str(entry["url"]),
            host=str(entry["host"]),
            size=int(entry["size"]),
            resource_type=str(entry["type"]),
            parent_id=None if entry["parent"] is None
            else int(entry["parent"]),
            discovery_fraction=float(entry.get("discovery", 0.0)),
            render_weight=float(entry.get("render_weight", 0.0)),
            render_blocking=bool(entry.get("render_blocking", False)),
            progressive=bool(entry.get("progressive", False)),
            server_delay_s=float(entry.get("server_delay_s", 0.002)),
        ))
    return Website(str(data["name"]), tuple(objects))


def save_website(site: Website, path: Union[str, Path]) -> None:
    """Write a website description to a JSON file."""
    with open(path, "w") as handle:
        json.dump(website_to_dict(site), handle, indent=1)


def load_website(path: Union[str, Path]) -> Website:
    """Read a website description from a JSON file."""
    with open(path) as handle:
        return website_from_dict(json.load(handle))
