"""Unit helpers.

All simulator-internal quantities use SI base units: seconds for time and
bytes for data. These helpers make call sites read like the paper
("25 Mbps downlink", "24 ms RTT") while keeping the internals consistent.
"""

from __future__ import annotations

BYTES_PER_KB = 1_000
BYTES_PER_MB = 1_000_000

#: Ethernet-style maximum transmission unit used by the emulator. Mahimahi
#: shells forward full IP packets; 1500 is the value the paper's testbed saw.
MTU_BYTES = 1500

#: Bytes of TCP/IP (or UDP/IP + QUIC) header overhead assumed per packet.
HEADER_BYTES = 40

#: Maximum segment size: payload bytes per full packet.
MSS_BYTES = MTU_BYTES - HEADER_BYTES


def Mbps(value: float) -> float:
    """Convert megabits/second to bytes/second."""
    return value * 1e6 / 8.0


def bytes_per_second(mbps: float) -> float:
    """Alias of :func:`Mbps`, reads better in some call sites."""
    return Mbps(mbps)


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value / 1e3


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds."""
    return value * 1e3
