"""Deterministic random-number management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` that is derived from an explicit seed.
Components never call the global NumPy RNG; instead, a root seed is split
into independent child streams with :func:`spawn_rng` or the stateful
:class:`SeedSequenceFactory`, so that any part of the pipeline can be rerun
in isolation and still produce identical results.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, None]


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalise an int / SeedSequence / None into a SeedSequence."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_rng(seed: SeedLike, *key: Union[int, str]) -> np.random.Generator:
    """Return a Generator for the child stream identified by ``key``.

    The key is hashed into spawn-key integers, so distinct keys yield
    statistically independent streams while remaining reproducible:

    >>> a = spawn_rng(1, "link", 0)
    >>> b = spawn_rng(1, "link", 0)
    >>> float(a.random()) == float(b.random())
    True
    >>> c = spawn_rng(1, "link", 1)
    >>> float(spawn_rng(1, "link", 0).random()) != float(c.random())
    True
    """
    base = _as_seed_sequence(seed)
    spawn_key = tuple(_key_to_int(part) for part in key)
    child = np.random.SeedSequence(
        entropy=base.entropy,
        spawn_key=base.spawn_key + spawn_key,
    )
    return np.random.default_rng(child)


def _key_to_int(part: Union[int, str]) -> int:
    """Map a key component to a non-negative integer, stably across runs."""
    if isinstance(part, int):
        if part < 0:
            raise ValueError(f"key integers must be non-negative, got {part}")
        return part
    # Stable (non-salted) string hash: FNV-1a over UTF-8 bytes.
    acc = 0xCBF29CE484222325
    for byte in part.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


class SeedSequenceFactory:
    """Hands out independent child RNGs from one root seed.

    Useful when a component needs to create an unknown number of children
    (e.g. one RNG per simulated participant) without coordinating keys:

    >>> factory = SeedSequenceFactory(42)
    >>> r1, r2 = factory.rng(), factory.rng()
    >>> float(r1.random()) != float(r2.random())
    True
    """

    def __init__(self, seed: SeedLike = None):
        self._sequence = _as_seed_sequence(seed)
        self._count = 0

    @property
    def root_entropy(self) -> Optional[object]:
        """Entropy of the root seed (for provenance logging)."""
        return self._sequence.entropy

    def rng(self) -> np.random.Generator:
        """Return the next independent child Generator."""
        child = self._sequence.spawn(1)[0]
        self._count += 1
        return np.random.default_rng(child)

    def rngs(self, n: int) -> Iterable[np.random.Generator]:
        """Return ``n`` independent child Generators."""
        children = self._sequence.spawn(n)
        self._count += n
        return [np.random.default_rng(child) for child in children]

    @property
    def spawned(self) -> int:
        """Number of child streams handed out so far."""
        return self._count
