"""Shared utilities: deterministic RNG management, units, small helpers."""

from repro.util.rng import SeedSequenceFactory, spawn_rng
from repro.util.units import (
    BYTES_PER_KB,
    BYTES_PER_MB,
    MTU_BYTES,
    Mbps,
    bytes_per_second,
    ms,
    seconds_to_ms,
)

__all__ = [
    "SeedSequenceFactory",
    "spawn_rng",
    "BYTES_PER_KB",
    "BYTES_PER_MB",
    "MTU_BYTES",
    "Mbps",
    "bytes_per_second",
    "ms",
    "seconds_to_ms",
]
