"""Figure 6: Pearson correlation of technical metrics with user ratings.

"We calculate Pearson's correlation coefficient of the votes compared to
the technical metrics by first calculating the mean vote for each website
and combining it with the technical metric." High negative values mean
the metric linearly tracks the users' experience; the paper finds SI
best and PLT worst, with magnitudes growing as networks slow down.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import pearson_r
from repro.browser.metrics import VisualMetrics
from repro.study.rating import RatingSession
from repro.testbed.harness import Testbed

#: Row order of the Figure 6 heatmap.
METRIC_ORDER = ("FVC", "SI", "VC85", "LVC", "PLT")


@dataclass
class CorrelationHeatmap:
    """r values indexed by (stack, metric, network)."""

    values: Dict[Tuple[str, str, str], float]
    stacks: Tuple[str, ...]
    networks: Tuple[str, ...]
    metrics: Tuple[str, ...] = METRIC_ORDER

    def r(self, stack: str, metric: str, network: str) -> Optional[float]:
        return self.values.get((stack, metric, network))

    def best_metric(self, stack: str, network: str) -> Optional[str]:
        """Metric with the strongest (most negative) correlation."""
        candidates = [
            (metric, self.values[(stack, metric, network)])
            for metric in self.metrics
            if (stack, metric, network) in self.values
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda kv: kv[1])[0]

    def mean_r_by_metric(self) -> Dict[str, float]:
        """Average r per metric across all cells (overall ranking)."""
        sums: Dict[str, List[float]] = {}
        for (_, metric, _), r in self.values.items():
            sums.setdefault(metric, []).append(r)
        return {metric: fmean(rs) for metric, rs in sums.items()}


def correlation_heatmap(
    sessions: Sequence[RatingSession],
    testbed: Testbed,
    which: str = "speed",
    contexts_for_network: Optional[Dict[str, str]] = None,
) -> CorrelationHeatmap:
    """Compute the Figure 6 heatmap from rating sessions.

    For DSL/LTE the paper uses the free-time votes; plane networks only
    appear in the plane context. ``contexts_for_network`` can override
    that mapping.
    """
    if contexts_for_network is None:
        contexts_for_network = {
            "DSL": "free_time", "LTE": "free_time",
            "DA2GC": "plane", "MSS": "plane",
        }

    votes: Dict[Tuple[str, str, str], List[float]] = {}
    for session in sessions:
        for trial in session.trials:
            network = trial.condition.network
            wanted = contexts_for_network.get(network)
            if wanted is not None and trial.context != wanted:
                continue
            score = trial.speed_score if which == "speed" \
                else trial.quality_score
            votes.setdefault(trial.condition.key, []).append(score)

    stacks = sorted({key[2] for key in votes})
    networks = sorted({key[1] for key in votes})
    values: Dict[Tuple[str, str, str], float] = {}
    for stack in stacks:
        for network in networks:
            sites = sorted({key[0] for key in votes
                            if key[1] == network and key[2] == stack})
            if len(sites) < 2:
                continue
            mean_votes = [fmean(votes[(site, network, stack)])
                          for site in sites]
            for metric in METRIC_ORDER:
                metric_values = [
                    testbed.recording(site, network, stack)
                    .selected_metrics[metric]
                    for site in sites
                ]
                values[(stack, metric, network)] = pearson_r(
                    metric_values, mean_votes)
    return CorrelationHeatmap(
        values=values,
        stacks=tuple(stacks),
        networks=tuple(networks),
    )
