"""Analyses reproducing the paper's tables and figures.

* :mod:`repro.analysis.stats` — CI, normality, ANOVA, Pearson building
  blocks (scipy-backed).
* :mod:`repro.analysis.ab` — Figure 4 vote shares and replay counts.
* :mod:`repro.analysis.rating` — Figure 5 means/CIs, ANOVA significance
  and Section 4.4's per-website differences.
* :mod:`repro.analysis.agreement` — Figure 3 group agreement and the
  Section 4.2 behavioural statistics.
* :mod:`repro.analysis.correlation` — Figure 6 metric-vs-vote Pearson
  heatmap.
* :mod:`repro.analysis.streaming` — mergeable incremental accumulators
  (moments, histogram, per-axis group-by, pivoted grid reports) for
  O(axes)-memory aggregation of streamed campaign summaries.
"""

from repro.analysis.ab import AbShares, ab_vote_shares
from repro.analysis.agreement import (
    ConditionAgreement,
    agreement_by_condition,
    behaviour_statistics,
)
from repro.analysis.correlation import correlation_heatmap
from repro.analysis.rating import (
    RatingCell,
    anova_by_setting,
    per_website_differences,
    rating_means,
)
from repro.analysis.power import (
    minimum_detectable_effect,
    paper_study_power,
    two_sample_power,
)
from repro.analysis.significance import (
    benjamini_hochberg,
    bonferroni,
    expected_false_positives,
)
from repro.analysis.stats import (
    anova_oneway,
    is_normal,
    mean_ci_from_stats,
    mean_confidence_interval,
    pearson_r,
    welch_ttest_p,
    welch_ttest_p_from_stats,
)
from repro.analysis.streaming import (
    AxisAccumulator,
    GridReport,
    StreamingHistogram,
    StreamingMoments,
    anova_from_moments,
    grid_report,
)

__all__ = [
    "ab_vote_shares",
    "AbShares",
    "rating_means",
    "RatingCell",
    "anova_by_setting",
    "per_website_differences",
    "agreement_by_condition",
    "ConditionAgreement",
    "behaviour_statistics",
    "correlation_heatmap",
    "mean_confidence_interval",
    "mean_ci_from_stats",
    "is_normal",
    "anova_oneway",
    "anova_from_moments",
    "pearson_r",
    "welch_ttest_p",
    "welch_ttest_p_from_stats",
    "AxisAccumulator",
    "GridReport",
    "grid_report",
    "StreamingHistogram",
    "StreamingMoments",
    "two_sample_power",
    "minimum_detectable_effect",
    "paper_study_power",
    "bonferroni",
    "benjamini_hochberg",
    "expected_false_positives",
]
