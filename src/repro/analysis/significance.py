"""Pairwise significance testing with multiple-comparison control.

Section 4.4 scans 36 sites x 4 networks x several stack pairs for
significant rating differences — hundreds of tests, where uncorrected
p < 0.1 findings include false positives by construction. This module
provides the corrected variants (Bonferroni and Benjamini-Hochberg) so
users can gauge how robust the per-website findings are.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.analysis.rating import WebsiteDifference


@dataclass(frozen=True)
class CorrectedDifference:
    """A per-website difference with its corrected significance."""

    difference: WebsiteDifference
    adjusted_p: float
    survives: bool


def bonferroni(differences: Sequence[WebsiteDifference], total_tests: int,
               alpha: float = 0.10) -> List[CorrectedDifference]:
    """Bonferroni correction over ``total_tests`` comparisons."""
    if total_tests < 1:
        raise ValueError("total_tests must be positive")
    out = []
    for diff in differences:
        adjusted = min(1.0, diff.p_value * total_tests)
        out.append(CorrectedDifference(diff, adjusted, adjusted < alpha))
    return out


def benjamini_hochberg(differences: Sequence[WebsiteDifference],
                       total_tests: int,
                       alpha: float = 0.10) -> List[CorrectedDifference]:
    """Benjamini-Hochberg FDR control.

    ``total_tests`` is the number of hypotheses examined (including the
    non-significant ones that produced no WebsiteDifference entry);
    unreported tests are treated as p = 1.
    """
    if total_tests < len(differences):
        raise ValueError("total_tests cannot be below the reported count")
    ranked = sorted(differences, key=lambda d: d.p_value)
    survives_upto = -1
    for index, diff in enumerate(ranked):
        threshold = alpha * (index + 1) / total_tests
        if diff.p_value <= threshold:
            survives_upto = index
    out = []
    for index, diff in enumerate(ranked):
        adjusted = min(1.0, diff.p_value * total_tests / (index + 1))
        out.append(CorrectedDifference(diff, adjusted,
                                       index <= survives_upto))
    return out


def expected_false_positives(total_tests: int, alpha: float = 0.10) -> float:
    """How many spurious findings an uncorrected scan would produce."""
    if total_tests < 0:
        raise ValueError("total_tests must be non-negative")
    return total_tests * alpha
