"""Figure 3 (group agreement) and Section 4.2 behavioural statistics."""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean, median
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import MeanCI, is_normal, mean_confidence_interval
from repro.study.ab import AbSession
from repro.study.rating import RatingSession
from repro.study.session import Demographics


@dataclass
class ConditionAgreement:
    """One x-position of Figure 3: a rating condition seen by all groups."""

    condition: Tuple[str, str, str]        # (website, network, stack)
    lab: Optional[MeanCI]
    microworker: Optional[MeanCI]
    internet_median: Optional[float]

    @property
    def microworker_within_lab_ci(self) -> Optional[bool]:
        """The paper's agreement criterion for trusting µWorker votes."""
        if self.lab is None or self.microworker is None:
            return None
        return self.lab.overlaps(self.microworker)

    @property
    def internet_within_lab_ci(self) -> Optional[bool]:
        if self.lab is None or self.internet_median is None:
            return None
        return self.lab.contains(self.internet_median)


def agreement_by_condition(
    lab_sessions: Sequence[RatingSession],
    microworker_sessions: Sequence[RatingSession],
    internet_sessions: Sequence[RatingSession],
    which: str = "speed",
    confidence: float = 0.99,
) -> List[ConditionAgreement]:
    """Figure 3: per lab-tested condition, lab/µWorker mean+CI vs Internet
    median, ordered by the lab mean."""

    def bucket(sessions: Sequence[RatingSession]) -> Dict[Tuple, List[float]]:
        out: Dict[Tuple, List[float]] = {}
        for session in sessions:
            for trial in session.trials:
                score = trial.speed_score if which == "speed" \
                    else trial.quality_score
                out.setdefault(trial.condition.key, []).append(score)
        return out

    lab_votes = bucket(lab_sessions)
    mw_votes = bucket(microworker_sessions)
    inet_votes = bucket(internet_sessions)

    rows: List[ConditionAgreement] = []
    for condition in sorted(lab_votes):
        lab_ci = mean_confidence_interval(lab_votes[condition], confidence) \
            if lab_votes.get(condition) else None
        mw_ci = mean_confidence_interval(mw_votes[condition], confidence) \
            if mw_votes.get(condition) else None
        inet_med = median(inet_votes[condition]) \
            if inet_votes.get(condition) else None
        rows.append(ConditionAgreement(condition, lab_ci, mw_ci, inet_med))
    rows.sort(key=lambda row: row.lab.mean if row.lab else 0.0)
    return rows


@dataclass
class GroupBehaviourStats:
    """Section 4.2 numbers for one group and study."""

    group: str
    study: str
    sessions: int
    mean_seconds_per_video: float
    mean_replays: float
    votes_normal: bool
    demographics: Demographics


def behaviour_statistics(
    sessions: Sequence,
    group: str,
    study: str,
) -> GroupBehaviourStats:
    """Per-video time, replay behaviour, vote normality, demographics."""
    if not sessions:
        raise ValueError("no sessions to analyse")
    per_video = [s.mean_trial_duration for s in sessions]
    if study == "ab":
        replays = [s.mean_replays for s in sessions]
        votes: List[float] = [t.confidence for s in sessions
                              for t in s.trials]
    else:
        replays = [fmean(t.replays for t in s.trials) if s.trials else 0.0
                   for s in sessions]
        votes = [t.speed_score for s in sessions for t in s.trials]
    return GroupBehaviourStats(
        group=group,
        study=study,
        sessions=len(sessions),
        mean_seconds_per_video=fmean(per_video),
        mean_replays=fmean(replays),
        votes_normal=is_normal(votes),
        demographics=Demographics.from_sessions(sessions),
    )
