"""Figure 4: A/B vote shares per protocol pair and network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.study.ab import AbSession, AbTrial


@dataclass
class AbShares:
    """Vote shares for one (pair, network) cell of Figure 4."""

    pair_label: str
    network: str
    votes_a: int
    votes_same: int
    votes_b: int
    mean_replays: float

    @property
    def total(self) -> int:
        return self.votes_a + self.votes_same + self.votes_b

    @property
    def share_a(self) -> float:
        return self.votes_a / self.total if self.total else 0.0

    @property
    def share_same(self) -> float:
        return self.votes_same / self.total if self.total else 0.0

    @property
    def share_b(self) -> float:
        return self.votes_b / self.total if self.total else 0.0

    @property
    def preferred(self) -> str:
        """Which side got more votes ("a", "b" or "same")."""
        best = max(("a", self.votes_a), ("same", self.votes_same),
                   ("b", self.votes_b), key=lambda kv: kv[1])
        return best[0]


def ab_vote_shares(
    sessions: Sequence[AbSession],
    websites: Optional[Iterable[str]] = None,
) -> Dict[Tuple[str, str], AbShares]:
    """Aggregate votes per (pair label, network) across all websites.

    ``websites`` optionally restricts the aggregation (used for the
    per-website drill-downs).
    """
    allowed = set(websites) if websites is not None else None
    cells: Dict[Tuple[str, str], List[AbTrial]] = {}
    for session in sessions:
        for trial in session.trials:
            condition = trial.condition
            if allowed is not None and condition.website not in allowed:
                continue
            key = (condition.pair_label, condition.network)
            cells.setdefault(key, []).append(trial)

    shares: Dict[Tuple[str, str], AbShares] = {}
    for (pair_label, network), trials in cells.items():
        votes = {"a": 0, "same": 0, "b": 0}
        replays = 0
        for trial in trials:
            votes[trial.vote] += 1
            replays += trial.replays
        shares[(pair_label, network)] = AbShares(
            pair_label=pair_label,
            network=network,
            votes_a=votes["a"],
            votes_same=votes["same"],
            votes_b=votes["b"],
            mean_replays=replays / len(trials) if trials else 0.0,
        )
    return shares
