"""Statistical building blocks used by the paper's analyses."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class MeanCI:
    """Sample mean with a symmetric confidence interval."""

    mean: float
    lower: float
    upper: float
    confidence: float
    n: int

    @property
    def halfwidth(self) -> float:
        return (self.upper - self.lower) / 2.0

    def overlaps(self, other: "MeanCI") -> bool:
        return self.lower <= other.upper and other.lower <= self.upper

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def mean_confidence_interval(values: Sequence[float],
                             confidence: float = 0.99) -> MeanCI:
    """Student-t confidence interval for the mean (paper uses 99%)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    mean = float(data.mean())
    if data.size == 1:
        return MeanCI(mean, mean, mean, confidence, 1)
    sem = float(data.std(ddof=1)) / math.sqrt(data.size)
    if sem == 0.0:
        return MeanCI(mean, mean, mean, confidence, int(data.size))
    t_crit = float(scipy_stats.t.ppf((1 + confidence) / 2.0, data.size - 1))
    half = t_crit * sem
    return MeanCI(mean, mean - half, mean + half, confidence, int(data.size))


def is_normal(values: Sequence[float], alpha: float = 0.05) -> bool:
    """Shapiro-Wilk normality check (True = cannot reject normality).

    The paper reports lab and µWorker votes as normally distributed and
    Internet votes as not; this is the test behind that statement.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size < 3:
        return True
    if float(data.std()) == 0.0:
        return True
    # Shapiro-Wilk is defined for n <= 5000; subsample deterministically.
    if data.size > 5000:
        step = data.size // 5000 + 1
        data = data[::step]
    _, p_value = scipy_stats.shapiro(data)
    return bool(p_value > alpha)


@dataclass(frozen=True)
class AnovaResult:
    """One-way ANOVA over k groups."""

    f_statistic: float
    p_value: float
    group_sizes: Tuple[int, ...]

    def significant(self, alpha: float) -> bool:
        return self.p_value < alpha


def anova_oneway(groups: Sequence[Sequence[float]]) -> Optional[AnovaResult]:
    """One-way ANOVA; None when fewer than two non-degenerate groups."""
    usable = [np.asarray(list(g), dtype=float) for g in groups]
    usable = [g for g in usable if g.size >= 2]
    if len(usable) < 2:
        return None
    if all(float(g.std()) == 0.0 for g in usable):
        return None
    f_stat, p_value = scipy_stats.f_oneway(*usable)
    if math.isnan(f_stat):
        return None
    return AnovaResult(
        f_statistic=float(f_stat),
        p_value=float(p_value),
        group_sizes=tuple(g.size for g in usable),
    )


def pearson_r(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient (nan-safe: returns 0 on degeneracy)."""
    ax = np.asarray(list(x), dtype=float)
    ay = np.asarray(list(y), dtype=float)
    if ax.size != ay.size:
        raise ValueError("x and y must have equal length")
    if ax.size < 2 or float(ax.std()) == 0.0 or float(ay.std()) == 0.0:
        return 0.0
    r, _ = scipy_stats.pearsonr(ax, ay)
    return float(r)


def welch_ttest_p(a: Sequence[float], b: Sequence[float]) -> float:
    """Welch's t-test p-value (per-website significance, Section 4.4)."""
    aa = np.asarray(list(a), dtype=float)
    bb = np.asarray(list(b), dtype=float)
    if aa.size < 2 or bb.size < 2:
        return 1.0
    if float(aa.std()) == 0.0 and float(bb.std()) == 0.0:
        return 0.0 if float(aa.mean()) != float(bb.mean()) else 1.0
    _, p = scipy_stats.ttest_ind(aa, bb, equal_var=False)
    return float(p) if not math.isnan(float(p)) else 1.0
