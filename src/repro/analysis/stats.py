"""Statistical building blocks used by the paper's analyses."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class MeanCI:
    """Sample mean with a symmetric confidence interval."""

    mean: float
    lower: float
    upper: float
    confidence: float
    n: int

    @property
    def halfwidth(self) -> float:
        return (self.upper - self.lower) / 2.0

    def overlaps(self, other: "MeanCI") -> bool:
        return self.lower <= other.upper and other.lower <= self.upper

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def mean_ci_from_stats(n: int, mean: float, sd: float,
                       confidence: float = 0.99) -> MeanCI:
    """Student-t CI from sufficient statistics (n, mean, sample sd).

    The moments-based twin of :func:`mean_confidence_interval`, shared
    with the streaming accumulators in :mod:`repro.analysis.streaming`
    so incremental and batch aggregation produce the same interval.
    """
    if n < 1:
        raise ValueError("need at least one value")
    if n == 1:
        return MeanCI(mean, mean, mean, confidence, 1)
    sem = sd / math.sqrt(n)
    if sem == 0.0:
        return MeanCI(mean, mean, mean, confidence, int(n))
    t_crit = float(scipy_stats.t.ppf((1 + confidence) / 2.0, n - 1))
    half = t_crit * sem
    return MeanCI(mean, mean - half, mean + half, confidence, int(n))


def mean_confidence_interval(values: Sequence[float],
                             confidence: float = 0.99) -> MeanCI:
    """Student-t confidence interval for the mean (paper uses 99%)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    mean = float(data.mean())
    sd = float(data.std(ddof=1)) if data.size > 1 else 0.0
    return mean_ci_from_stats(int(data.size), mean, sd, confidence)


def is_normal(values: Sequence[float], alpha: float = 0.05) -> bool:
    """Shapiro-Wilk normality check (True = cannot reject normality).

    The paper reports lab and µWorker votes as normally distributed and
    Internet votes as not; this is the test behind that statement.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size < 3:
        return True
    if float(data.std()) == 0.0:
        return True
    # Shapiro-Wilk is defined for n <= 5000; subsample deterministically.
    if data.size > 5000:
        step = data.size // 5000 + 1
        data = data[::step]
    _, p_value = scipy_stats.shapiro(data)
    return bool(p_value > alpha)


@dataclass(frozen=True)
class AnovaResult:
    """One-way ANOVA over k groups."""

    f_statistic: float
    p_value: float
    group_sizes: Tuple[int, ...]

    def significant(self, alpha: float) -> bool:
        return self.p_value < alpha


def anova_oneway(groups: Sequence[Sequence[float]]) -> Optional[AnovaResult]:
    """One-way ANOVA; None when fewer than two non-degenerate groups."""
    usable = [np.asarray(list(g), dtype=float) for g in groups]
    usable = [g for g in usable if g.size >= 2]
    if len(usable) < 2:
        return None
    if all(float(g.std()) == 0.0 for g in usable):
        return None
    f_stat, p_value = scipy_stats.f_oneway(*usable)
    if math.isnan(f_stat):
        return None
    return AnovaResult(
        f_statistic=float(f_stat),
        p_value=float(p_value),
        group_sizes=tuple(g.size for g in usable),
    )


def pearson_r(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient (nan-safe: returns 0 on degeneracy)."""
    ax = np.asarray(list(x), dtype=float)
    ay = np.asarray(list(y), dtype=float)
    if ax.size != ay.size:
        raise ValueError("x and y must have equal length")
    if ax.size < 2 or float(ax.std()) == 0.0 or float(ay.std()) == 0.0:
        return 0.0
    r, _ = scipy_stats.pearsonr(ax, ay)
    return float(r)


def welch_ttest_p_from_stats(n1: int, mean1: float, var1: float,
                             n2: int, mean2: float, var2: float) -> float:
    """Welch's t-test p-value from sufficient statistics.

    ``var*`` are sample variances (ddof=1). Matches
    :func:`welch_ttest_p` on the same data, but needs only (n, mean,
    variance) per group, so streaming accumulators can compute
    significance marks without retaining raw samples.
    """
    if n1 < 2 or n2 < 2:
        return 1.0
    if var1 == 0.0 and var2 == 0.0:
        return 0.0 if mean1 != mean2 else 1.0
    _, p = scipy_stats.ttest_ind_from_stats(
        mean1, math.sqrt(var1), n1, mean2, math.sqrt(var2), n2,
        equal_var=False)
    return float(p) if not math.isnan(float(p)) else 1.0


def welch_ttest_p(a: Sequence[float], b: Sequence[float]) -> float:
    """Welch's t-test p-value (per-website significance, Section 4.4)."""
    aa = np.asarray(list(a), dtype=float)
    bb = np.asarray(list(b), dtype=float)
    if aa.size < 2 or bb.size < 2:
        return 1.0
    return welch_ttest_p_from_stats(
        int(aa.size), float(aa.mean()), float(aa.var(ddof=1)),
        int(bb.size), float(bb.mean()), float(bb.var(ddof=1)))
