"""Statistical power analysis for study sizing.

The paper's rating study concludes "no significant difference" — a claim
whose strength depends on the study's power: how big an effect could it
actually have detected with ~600 filtered participants? This module
answers that, both analytically (two-sample t approximation) and by
simulation against the library's own vote model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class PowerEstimate:
    """Power of a two-sample comparison."""

    effect_points: float
    per_group_n: int
    vote_sd: float
    alpha: float
    power: float


def two_sample_power(effect_points: float, per_group_n: int,
                     vote_sd: float, alpha: float = 0.01) -> PowerEstimate:
    """Analytic power of a two-sided two-sample t-test.

    ``effect_points`` is the true mean difference on the 10..70 scale,
    ``vote_sd`` the per-vote standard deviation.
    """
    if per_group_n < 2:
        raise ValueError("need at least two votes per group")
    if vote_sd <= 0:
        raise ValueError("vote sd must be positive")
    se = vote_sd * math.sqrt(2.0 / per_group_n)
    ncp = abs(effect_points) / se
    df = 2 * per_group_n - 2
    t_crit = scipy_stats.t.ppf(1 - alpha / 2, df)
    power = float(1 - scipy_stats.nct.cdf(t_crit, df, ncp)
                  + scipy_stats.nct.cdf(-t_crit, df, ncp))
    if math.isnan(power):
        # scipy's noncentral t underflows for large ncp; the normal
        # approximation is excellent there.
        power = float(1 - scipy_stats.norm.cdf(t_crit - ncp)
                      + scipy_stats.norm.cdf(-t_crit - ncp))
    return PowerEstimate(effect_points=effect_points,
                         per_group_n=per_group_n, vote_sd=vote_sd,
                         alpha=alpha, power=min(max(power, 0.0), 1.0))


def minimum_detectable_effect(per_group_n: int, vote_sd: float,
                              alpha: float = 0.01,
                              target_power: float = 0.8) -> float:
    """Smallest scale-point difference detectable with the given power."""
    lo, hi = 0.0, 60.0
    for _ in range(60):
        mid = (lo + hi) / 2
        if mid == 0.0:
            lo = 1e-6
            continue
        if two_sample_power(mid, per_group_n, vote_sd, alpha).power \
                < target_power:
            lo = mid
        else:
            hi = mid
    return hi


def simulated_power(
    effect_points: float,
    per_group_n: int,
    vote_sd: float,
    alpha: float = 0.01,
    trials: int = 400,
    seed: int = 0,
    heavy_tailed: bool = False,
) -> float:
    """Monte-Carlo power against the library's vote noise model."""
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(trials):
        if heavy_tailed:
            a = rng.standard_t(2, per_group_n) * vote_sd
            b = rng.standard_t(2, per_group_n) * vote_sd + effect_points
        else:
            a = rng.normal(0.0, vote_sd, per_group_n)
            b = rng.normal(effect_points, vote_sd, per_group_n)
        _, p = scipy_stats.ttest_ind(a, b, equal_var=False)
        hits += p < alpha
    return hits / trials


def paper_study_power(effect_points: float = 10.0,
                      alpha: float = 0.01) -> Optional[PowerEstimate]:
    """Power of the paper's µWorker rating study for a one-level effect.

    614 filtered participants x 11 work-context votes spread over
    2 networks x 5 stacks gives ~675 votes per (network, stack) cell; a
    10-point effect is one quality level on the scale.
    """
    per_cell = int(614 * 11 / (2 * 5))
    return two_sample_power(effect_points, per_cell, vote_sd=10.0,
                            alpha=alpha)
