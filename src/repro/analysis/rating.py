"""Figure 5 and Section 4.4: rating means, ANOVA and per-site effects."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import (
    AnovaResult,
    MeanCI,
    anova_oneway,
    mean_confidence_interval,
    welch_ttest_p,
)
from repro.study.design import CONTEXTS
from repro.study.rating import RatingSession, RatingTrial

Score = str  # "speed" or "quality"


def _score(trial: RatingTrial, which: Score) -> float:
    if which == "speed":
        return trial.speed_score
    if which == "quality":
        return trial.quality_score
    raise KeyError(f"unknown score {which!r}")


@dataclass
class RatingCell:
    """One bar of Figure 5: (context, network, stack)."""

    context: str
    network: str
    stack: str
    ci: MeanCI

    @property
    def mean(self) -> float:
        return self.ci.mean


def rating_means(
    sessions: Sequence[RatingSession],
    which: Score = "speed",
    confidence: float = 0.99,
) -> List[RatingCell]:
    """Mean vote + CI per (context, network, stack) — the Figure 5 bars."""
    buckets: Dict[Tuple[str, str, str], List[float]] = {}
    for session in sessions:
        for trial in session.trials:
            key = (trial.context, trial.condition.network,
                   trial.condition.stack)
            buckets.setdefault(key, []).append(_score(trial, which))
    cells = []
    for (context, network, stack), values in sorted(buckets.items()):
        cells.append(RatingCell(
            context=context,
            network=network,
            stack=stack,
            ci=mean_confidence_interval(values, confidence),
        ))
    return cells


@dataclass
class SettingAnova:
    """ANOVA across stacks within one (context, network) setting."""

    context: str
    network: str
    result: Optional[AnovaResult]

    def significant(self, alpha: float) -> bool:
        return self.result is not None and self.result.significant(alpha)


def anova_by_setting(
    sessions: Sequence[RatingSession],
    which: Score = "speed",
) -> List[SettingAnova]:
    """Per-setting one-way ANOVA over the protocol stacks.

    The paper: "using a significance level of 99% ... we do not find any
    significant protocol/network configuration"; at 90% three settings
    differ.
    """
    buckets: Dict[Tuple[str, str], Dict[str, List[float]]] = {}
    for session in sessions:
        for trial in session.trials:
            setting = (trial.context, trial.condition.network)
            stacks = buckets.setdefault(setting, {})
            stacks.setdefault(trial.condition.stack, []).append(
                _score(trial, which))
    out = []
    for (context, network), stacks in sorted(buckets.items()):
        out.append(SettingAnova(
            context=context,
            network=network,
            result=anova_oneway(list(stacks.values())),
        ))
    return out


@dataclass
class WebsiteDifference:
    """One significant per-website stack difference (Section 4.4)."""

    website: str
    network: str
    faster_stack: str
    slower_stack: str
    mean_difference: float
    p_value: float


def per_website_differences(
    sessions: Sequence[RatingSession],
    which: Score = "speed",
    alpha: float = 0.10,
    stack_pairs: Optional[Sequence[Tuple[str, str]]] = None,
) -> List[WebsiteDifference]:
    """Websites where one stack is rated significantly better.

    Mirrors the Section 4.4 drill-down: pairwise Welch tests per website
    and network over the Table 1 comparison pairs.
    """
    if stack_pairs is None:
        stack_pairs = (
            ("QUIC", "TCP"), ("QUIC", "TCP+"), ("TCP+", "TCP"),
            ("QUIC+BBR", "TCP+BBR"),
        )
    buckets: Dict[Tuple[str, str, str], List[float]] = {}
    for session in sessions:
        for trial in session.trials:
            key = (trial.condition.website, trial.condition.network,
                   trial.condition.stack)
            buckets.setdefault(key, []).append(_score(trial, which))

    sites = sorted({k[0] for k in buckets})
    networks = sorted({k[1] for k in buckets})
    differences: List[WebsiteDifference] = []
    for website in sites:
        for network in networks:
            for stack_x, stack_y in stack_pairs:
                votes_x = buckets.get((website, network, stack_x))
                votes_y = buckets.get((website, network, stack_y))
                if not votes_x or not votes_y:
                    continue
                p = welch_ttest_p(votes_x, votes_y)
                if p >= alpha:
                    continue
                mean_x = sum(votes_x) / len(votes_x)
                mean_y = sum(votes_y) / len(votes_y)
                faster, slower = (stack_x, stack_y) if mean_x > mean_y \
                    else (stack_y, stack_x)
                differences.append(WebsiteDifference(
                    website=website,
                    network=network,
                    faster_stack=faster,
                    slower_stack=slower,
                    mean_difference=abs(mean_x - mean_y),
                    p_value=p,
                ))
    return differences
