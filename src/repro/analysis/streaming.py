"""Mergeable incremental accumulators for streaming aggregation.

The batch analyses load every sample into memory before computing a
statistic; these accumulators consume a stream of values (or of
``(ConditionKey, RecordingSummary)`` pairs from
:class:`repro.testbed.store.SummaryStore`) and keep only sufficient
statistics, so aggregating an N-condition campaign grid costs O(axes)
memory instead of O(N). Every accumulator has a ``merge()`` that
combines two partial aggregations exactly — the building block for
per-worker partial aggregation when campaign workers are distributed
across hosts.

Equality with the batch layer is part of the contract and is pinned by
tests: :meth:`StreamingMoments.ci` matches
:func:`~repro.analysis.stats.mean_confidence_interval`,
:func:`anova_from_moments` matches
:func:`~repro.analysis.stats.anova_oneway`, and the Welch marks in
:class:`GridReport` match :func:`~repro.analysis.stats.welch_ttest_p`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from scipy import stats as scipy_stats

from repro.analysis.stats import (
    AnovaResult,
    MeanCI,
    mean_ci_from_stats,
    welch_ttest_p_from_stats,
)

#: Pivotable condition axes (mirrors ``repro.testbed.store.CONDITION_AXES``;
#: listed here so the analysis layer stays import-independent of the
#: testbed — report keys are duck-typed on these attribute names).
GRID_AXES = ("website", "network", "stack", "seed", "path",
             "middleboxes")


class StreamingMoments:
    """Count / mean / M2 accumulator (Welford), exactly mergeable.

    ``merge`` uses the parallel (Chan et al.) update, so splitting a
    stream across workers and merging the partials gives the same
    moments as one sequential pass.
    """

    __slots__ = ("count", "mean", "m2")

    def __init__(self, count: int = 0, mean: float = 0.0, m2: float = 0.0):
        self.count = count
        self.mean = mean
        self.m2 = m2

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold another accumulator into this one (returns self)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self.mean, self.m2 = \
                other.count, other.mean, other.m2
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        return self

    def copy(self) -> "StreamingMoments":
        return StreamingMoments(self.count, self.mean, self.m2)

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 below two samples."""
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def ci(self, confidence: float = 0.99) -> MeanCI:
        """Student-t CI, identical to the batch ``mean_confidence_interval``."""
        return mean_ci_from_stats(self.count, self.mean, self.std,
                                  confidence)

    def welch_p(self, other: "StreamingMoments") -> float:
        """Welch's t-test p-value against another group's moments."""
        return welch_ttest_p_from_stats(
            self.count, self.mean, self.variance,
            other.count, other.mean, other.variance)

    def to_json(self) -> Dict[str, float]:
        return {"count": self.count, "mean": self.mean, "m2": self.m2}

    @classmethod
    def from_json(cls, data: Dict[str, float]) -> "StreamingMoments":
        return cls(int(data["count"]), float(data["mean"]),
                   float(data["m2"]))

    def __repr__(self) -> str:
        return (f"StreamingMoments(count={self.count}, "
                f"mean={self.mean:.6g}, m2={self.m2:.6g})")


class StreamingHistogram:
    """Fixed-width binned histogram with mergeable counts.

    Quantiles interpolate linearly inside the hit bin, so the error of
    :meth:`quantile` is bounded by one ``bin_width``; min and max are
    tracked exactly. Two histograms merge exactly when their bin widths
    match.
    """

    __slots__ = ("bin_width", "count", "minimum", "maximum", "_bins")

    def __init__(self, bin_width: float = 0.1):
        if bin_width <= 0.0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._bins: Dict[int, int] = {}

    def add(self, value: float) -> None:
        index = math.floor(value / self.bin_width)
        self._bins[index] = self._bins.get(index, 0) + 1
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        if other.bin_width != self.bin_width:
            raise ValueError(
                f"cannot merge histograms with bin widths "
                f"{self.bin_width} and {other.bin_width}")
        for index, count in other._bins.items():
            self._bins[index] = self._bins.get(index, 0) + count
        self.count += other.count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (error at most one bin width)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            raise ValueError("empty histogram has no quantiles")
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        target = q * self.count
        cumulative = 0
        for index in sorted(self._bins):
            in_bin = self._bins[index]
            if cumulative + in_bin >= target:
                fraction = (target - cumulative) / in_bin
                estimate = (index + fraction) * self.bin_width
                return min(max(estimate, self.minimum), self.maximum)
            cumulative += in_bin
        return self.maximum

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable state; ``from_json`` round-trips exactly."""
        return {
            "bin_width": self.bin_width,
            "count": self.count,
            "minimum": None if math.isinf(self.minimum) else self.minimum,
            "maximum": None if math.isinf(self.maximum) else self.maximum,
            "bins": {str(index): count
                     for index, count in self._bins.items()},
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "StreamingHistogram":
        histogram = cls(bin_width=float(data["bin_width"]))
        histogram.count = int(data["count"])
        minimum, maximum = data.get("minimum"), data.get("maximum")
        histogram.minimum = math.inf if minimum is None else float(minimum)
        histogram.maximum = -math.inf if maximum is None else float(maximum)
        histogram._bins = {int(index): int(count)
                           for index, count in dict(data["bins"]).items()}
        return histogram


class CountTable:
    """Mergeable table of fixed-width integer count vectors.

    Rows are keyed by strings; each row is a vector of ``width``
    non-negative integer counts. Merging adds rows elementwise, so any
    sharding of a count stream merges back to the sequential totals
    exactly — the integer counterpart of :class:`StreamingMoments` used
    by the study pipeline for filter funnels, A/B vote counts and score
    histograms.
    """

    __slots__ = ("width", "rows")

    def __init__(self, width: int):
        if width < 1:
            raise ValueError("width must be positive")
        self.width = int(width)
        self.rows: Dict[str, List[int]] = {}

    def add(self, key: str, index: int, count: int = 1) -> None:
        row = self.rows.get(key)
        if row is None:
            row = self.rows[key] = [0] * self.width
        row[index] += int(count)

    def add_vector(self, key: str, counts: Sequence[int]) -> None:
        if len(counts) != self.width:
            raise ValueError(
                f"expected a vector of width {self.width}, "
                f"got {len(counts)}")
        row = self.rows.get(key)
        if row is None:
            row = self.rows[key] = [0] * self.width
        for index, count in enumerate(counts):
            row[index] += int(count)

    def row(self, key: str) -> Optional[List[int]]:
        counts = self.rows.get(key)
        return list(counts) if counts is not None else None

    def items(self) -> Iterator[Tuple[str, List[int]]]:
        return iter(self.rows.items())

    def __len__(self) -> int:
        return len(self.rows)

    def merge(self, other: "CountTable") -> "CountTable":
        """Fold another table into this one (returns self)."""
        if other.width != self.width:
            raise ValueError(
                f"cannot merge count tables of widths "
                f"{self.width} and {other.width}")
        for key, counts in other.rows.items():
            row = self.rows.get(key)
            if row is None:
                self.rows[key] = list(counts)
            else:
                for index, count in enumerate(counts):
                    row[index] += count
        return self

    def to_json(self) -> Dict[str, object]:
        return {"width": self.width,
                "rows": {key: list(counts)
                         for key, counts in self.rows.items()}}

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "CountTable":
        table = cls(int(data["width"]))
        for key, counts in dict(data["rows"]).items():
            table.add_vector(str(key), [int(c) for c in counts])
        return table


def anova_from_moments(
        groups: Sequence[StreamingMoments]) -> Optional[AnovaResult]:
    """One-way ANOVA from per-group moments; matches ``anova_oneway``.

    Groups below two samples are dropped, and None is returned when
    fewer than two usable groups remain or every group is degenerate —
    the same semantics as the batch function.
    """
    usable = [g for g in groups if g.count >= 2]
    if len(usable) < 2:
        return None
    if all(g.m2 == 0.0 for g in usable):
        return None
    total = sum(g.count for g in usable)
    grand_mean = sum(g.count * g.mean for g in usable) / total
    ss_between = sum(g.count * (g.mean - grand_mean) ** 2 for g in usable)
    ss_within = sum(g.m2 for g in usable)
    df_between = len(usable) - 1
    df_within = total - len(usable)
    f_stat = (ss_between / df_between) / (ss_within / df_within)
    if math.isnan(f_stat):
        return None
    p_value = float(scipy_stats.f.sf(f_stat, df_between, df_within))
    return AnovaResult(
        f_statistic=float(f_stat),
        p_value=p_value,
        group_sizes=tuple(g.count for g in usable),
    )


# -- per-axis group-by -------------------------------------------------------


def _check_axes(names: Sequence[str]) -> Tuple[str, ...]:
    for name in names:
        if name not in GRID_AXES:
            raise ValueError(
                f"unknown condition axis {name!r}; "
                f"expected one of {GRID_AXES}")
    return tuple(names)


class AxisAccumulator:
    """Streaming group-by over condition axes for one metric.

    Feeds each summary's per-run metric samples into a
    :class:`StreamingMoments` keyed by the requested axis values; memory
    is O(distinct groups) regardless of grid size.
    """

    def __init__(self, axes: Sequence[str] = ("network", "stack"),
                 metric: str = "SI"):
        self.axes = _check_axes(axes)
        self.metric = metric
        self.groups: Dict[Tuple[object, ...], StreamingMoments] = {}

    def add(self, key: object, summary: object) -> None:
        """Accumulate one ``(ConditionKey, RecordingSummary)`` pair."""
        group = tuple(getattr(key, axis) for axis in self.axes)
        moments = self.groups.get(group)
        if moments is None:
            moments = self.groups[group] = StreamingMoments()
        moments.add_many(summary.metric_samples(self.metric))

    def consume(self, pairs: Iterable[Tuple[object, object]]) -> None:
        for key, summary in pairs:
            self.add(key, summary)

    def merge(self, other: "AxisAccumulator") -> "AxisAccumulator":
        if other.axes != self.axes or other.metric != self.metric:
            raise ValueError("can only merge identically-configured "
                             "accumulators")
        for group, moments in other.groups.items():
            mine = self.groups.get(group)
            if mine is None:
                self.groups[group] = moments.copy()
            else:
                mine.merge(moments)
        return self

    def anova(self) -> Optional[AnovaResult]:
        """One-way ANOVA across the accumulated groups."""
        return anova_from_moments(list(self.groups.values()))

    def items(self) -> Iterator[Tuple[Tuple[object, ...], StreamingMoments]]:
        return iter(self.groups.items())

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable state: axes/metric plus per-group moments.

        Axis values are strings or ints (see ``ConditionKey``), so the
        JSON round-trip reconstructs group keys exactly — the basis for
        flushing a worker's partial aggregation to disk and merging it
        on another host.
        """
        return {
            "axes": list(self.axes),
            "metric": self.metric,
            "groups": [{"group": list(group), "moments": moments.to_json()}
                       for group, moments in self.groups.items()],
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "AxisAccumulator":
        accumulator = cls(axes=tuple(data["axes"]),
                          metric=str(data["metric"]))
        for entry in data["groups"]:
            accumulator.groups[tuple(entry["group"])] = \
                StreamingMoments.from_json(entry["moments"])
        return accumulator


# -- pivoted grid reports ----------------------------------------------------


@dataclass(frozen=True)
class GridCellStat:
    """One rendered pivot cell: interval plus baseline comparison."""

    ci: MeanCI
    p_vs_baseline: Optional[float]
    alpha: float

    @property
    def significant(self) -> bool:
        """True when Welch's test against the baseline column rejects."""
        return self.p_vs_baseline is not None \
            and self.p_vs_baseline < self.alpha

    @property
    def mark(self) -> str:
        return "*" if self.significant else ""


class GridReport:
    """Streaming Table 1/2-style pivot of campaign axes.

    Rows are the product of ``rows`` axes (e.g. network profile),
    columns the values of the ``cols`` axis (e.g. stack); each cell
    accumulates the per-run samples of ``metric`` into mergeable
    moments, rendered as mean ± CI with a Welch significance mark
    against the ``baseline`` column (default: the first column seen).
    Row and column order follow first appearance in the stream, which
    for a campaign is the spec's deterministic sweep order.
    """

    def __init__(
        self,
        rows: Sequence[str] = ("network",),
        cols: str = "stack",
        metric: str = "SI",
        confidence: float = 0.99,
        baseline: Optional[str] = None,
    ):
        self.row_axes = _check_axes(
            (rows,) if isinstance(rows, str) else rows)
        self.col_axis = _check_axes((cols,))[0]
        if self.col_axis in self.row_axes:
            raise ValueError(
                f"column axis {cols!r} also appears in rows {rows!r}")
        self.metric = metric
        self.confidence = confidence
        self.baseline = baseline
        self._cells: Dict[Tuple[Tuple[object, ...], object],
                          StreamingMoments] = {}
        # Insertion-ordered sets (dict keys) of row tuples / col values.
        self._row_order: Dict[Tuple[object, ...], None] = {}
        self._col_order: Dict[object, None] = {}
        # Degraded-coverage marks (set by mark_coverage): condition
        # labels the campaign spec expects but nothing recorded.
        self.missing: List[str] = []
        self.expected: Optional[int] = None

    @property
    def alpha(self) -> float:
        return 1.0 - self.confidence

    # -- accumulation --------------------------------------------------------

    def add(self, key: object, summary: object) -> None:
        """Accumulate one ``(ConditionKey, RecordingSummary)`` pair."""
        row = tuple(getattr(key, axis) for axis in self.row_axes)
        col = getattr(key, self.col_axis)
        self._row_order.setdefault(row)
        self._col_order.setdefault(col)
        moments = self._cells.get((row, col))
        if moments is None:
            moments = self._cells[(row, col)] = StreamingMoments()
        moments.add_many(summary.metric_samples(self.metric))

    def consume(self, pairs: Iterable[Tuple[object, object]]) \
            -> "GridReport":
        """Drain an iterable of pairs (e.g. a ``SummaryStore``)."""
        for key, summary in pairs:
            self.add(key, summary)
        return self

    def merge(self, other: "GridReport") -> "GridReport":
        """Fold a partial report (another worker's shard) into this one."""
        if (other.row_axes, other.col_axis, other.metric) != \
                (self.row_axes, self.col_axis, self.metric):
            raise ValueError("can only merge identically-configured "
                             "reports")
        for row in other._row_order:
            self._row_order.setdefault(row)
        for col in other._col_order:
            self._col_order.setdefault(col)
        for cell_key, moments in other._cells.items():
            mine = self._cells.get(cell_key)
            if mine is None:
                self._cells[cell_key] = moments.copy()
            else:
                mine.merge(moments)
        return self

    def mark_coverage(self, expected: int,
                      missing: Sequence[str]) -> "GridReport":
        """Record which expected conditions this report does *not* cover.

        Set by degraded-mode mergers (crashed workers, quarantined
        conditions — see ``merge_partial_reports``): ``expected`` is the
        spec's condition count, ``missing`` the labels with no recording
        behind them. Coverage is presentation metadata, not accumulator
        state — it does not survive ``to_state`` and never affects
        ``merge`` identity, so a degraded report still merges and, once
        the gaps are re-simulated, renders byte-identically to a
        fault-free run.
        """
        self.expected = int(expected)
        self.missing = sorted(missing)
        return self

    @property
    def degraded(self) -> bool:
        """True when the report is known to miss expected conditions."""
        return bool(self.missing)

    def reorder(self, keys: Iterable[object]) -> "GridReport":
        """Reorder rows/columns to follow ``keys``' first appearance.

        Merged reports inherit row/column order from whichever shard
        merged first — which for distributed (and especially chaos)
        runs depends on worker timing. Reordering to the campaign
        spec's deterministic sweep order makes the render independent
        of execution history, so a crash-and-recover run is
        byte-identical to a fault-free one. Keys absent from the data
        are ignored; rows/columns the keys don't name keep their
        relative order at the end. Note the default baseline column is
        the *first* column, so reordering also pins which column the
        Welch marks compare against.
        """
        row_order: Dict[Tuple[object, ...], None] = {}
        col_order: Dict[object, None] = {}
        for key in keys:
            row = tuple(getattr(key, axis) for axis in self.row_axes)
            col = getattr(key, self.col_axis)
            if row in self._row_order:
                row_order.setdefault(row)
            if col in self._col_order:
                col_order.setdefault(col)
        for row in self._row_order:
            row_order.setdefault(row)
        for col in self._col_order:
            col_order.setdefault(col)
        self._row_order = row_order
        self._col_order = col_order
        return self

    # -- readout -------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._cells

    def row_keys(self) -> List[Tuple[object, ...]]:
        return list(self._row_order)

    def columns(self) -> List[object]:
        return list(self._col_order)

    def baseline_column(self) -> Optional[object]:
        if self.baseline is not None:
            return self.baseline
        return next(iter(self._col_order), None)

    def moments(self, row: Tuple[object, ...],
                col: object) -> Optional[StreamingMoments]:
        return self._cells.get((row, col))

    def cell(self, row: Tuple[object, ...],
             col: object) -> Optional[GridCellStat]:
        """CI + Welch-vs-baseline for one cell (None when empty)."""
        moments = self._cells.get((row, col))
        if moments is None:
            return None
        baseline = self.baseline_column()
        p: Optional[float] = None
        if baseline is not None and col != baseline:
            base = self._cells.get((row, baseline))
            if base is not None:
                p = moments.welch_p(base)
        return GridCellStat(ci=moments.ci(self.confidence),
                            p_vs_baseline=p, alpha=self.alpha)

    # -- state (de)serialization ---------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """Full internal state as a JSON-serialisable document.

        Unlike :meth:`to_json` (a rendered readout), this round-trips
        the accumulator itself: ``GridReport.from_state(r.to_state())``
        yields a report that accumulates, merges and renders identically
        to ``r``. It is what distributed campaign workers flush to
        ``partials/<worker>.json`` so a leader on another host can
        :meth:`merge` their shards.
        """
        return {
            "row_axes": list(self.row_axes),
            "col_axis": self.col_axis,
            "metric": self.metric,
            "confidence": self.confidence,
            "baseline": self.baseline,
            "row_order": [list(row) for row in self._row_order],
            "col_order": list(self._col_order),
            "cells": [{"row": list(row), "col": col,
                       "moments": moments.to_json()}
                      for (row, col), moments in self._cells.items()],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "GridReport":
        """Rebuild a report from :meth:`to_state` output.

        Axis values are strings or ints (``ConditionKey`` axes), so the
        JSON round-trip reconstructs row/column keys exactly.
        """
        report = cls(
            rows=tuple(state["row_axes"]),
            cols=str(state["col_axis"]),
            metric=str(state["metric"]),
            confidence=float(state["confidence"]),
            baseline=state.get("baseline"),
        )
        for row in state["row_order"]:
            report._row_order.setdefault(tuple(row))
        for col in state["col_order"]:
            report._col_order.setdefault(col)
        for cell in state["cells"]:
            report._cells[(tuple(cell["row"]), cell["col"])] = \
                StreamingMoments.from_json(cell["moments"])
        return report

    def config(self) -> Tuple[Tuple[str, ...], str, str, float]:
        """The identity that decides whether two reports can merge."""
        return (self.row_axes, self.col_axis, self.metric,
                self.confidence)

    def to_json(self) -> Dict[str, object]:
        """JSON document mirroring the rendered pivot."""
        rows_out: List[Dict[str, object]] = []
        for row in self._row_order:
            cells: Dict[str, object] = {}
            for col in self._col_order:
                stat = self.cell(row, col)
                if stat is None:
                    cells[str(col)] = None
                    continue
                cells[str(col)] = {
                    "mean": stat.ci.mean,
                    "lower": stat.ci.lower,
                    "upper": stat.ci.upper,
                    "n": stat.ci.n,
                    "p_vs_baseline": stat.p_vs_baseline,
                    "significant": stat.significant,
                }
            rows_out.append({
                "row": dict(zip(self.row_axes, row)),
                "cells": cells,
            })
        document: Dict[str, object] = {
            "metric": self.metric,
            "confidence": self.confidence,
            "row_axes": list(self.row_axes),
            "col_axis": self.col_axis,
            "baseline": self.baseline_column(),
            "columns": [str(c) for c in self._col_order],
            "rows": rows_out,
        }
        if self.missing:
            # Only a *degraded* report carries the coverage block, so a
            # fully-recovered chaos run stays byte-identical to a
            # fault-free one.
            document["coverage"] = {
                "expected": self.expected,
                "missing": list(self.missing),
            }
        return document


def grid_report(
    pairs: Iterable[Tuple[object, object]],
    rows: Sequence[str] = ("network",),
    cols: str = "stack",
    metric: str = "SI",
    confidence: float = 0.99,
    baseline: Optional[str] = None,
) -> GridReport:
    """Build a :class:`GridReport` by draining an iterable of pairs."""
    report = GridReport(rows=rows, cols=cols, metric=metric,
                        confidence=confidence, baseline=baseline)
    return report.consume(pairs)
