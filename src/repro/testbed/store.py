"""Lazy access to a campaign's recorded summaries.

:class:`SummaryStore` is the streaming bridge between the testbed and
the analysis layer: it iterates ``(ConditionKey, RecordingSummary)``
pairs straight off the campaign manifest and the content-addressed
recording cache, one summary in memory at a time, instead of
materialising the whole grid the way the deprecated
``Campaign.summaries()`` does — new callers want
``Campaign.iter_summaries()`` / ``Campaign.summary_store()``.

Two ways to build one:

* live — :meth:`Campaign.summary_store` binds a store to a campaign
  object whose spec is in memory (keys come from the spec's axis
  product, in deterministic sweep order);
* post-hoc — :meth:`SummaryStore.open` points at a finished campaign
  directory on disk and recovers the keys from ``manifest.jsonl``
  without re-running (or even being able to re-run) any condition.

Either way iteration is lazy: nothing is loaded until the pair is
yielded, and nothing yielded is retained, so per-axis aggregation over
an N-condition grid needs O(axes) memory, not O(N).
"""

from __future__ import annotations

import json
import logging
import os
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.testbed import faults, harness
from repro.testbed.harness import RecordingCache, RecordingSummary

logger = logging.getLogger(__name__)


class StaleCampaignError(ValueError):
    """A campaign dir was recorded under a different SIM_BEHAVIOUR_VERSION.

    Its summaries are not comparable with anything the current simulator
    produces; re-run the campaign (the content-hashed cache keys embed
    the version, so nothing stale is reused) or pass
    ``check_behaviour=False`` to :meth:`SummaryStore.open` to analyse the
    old recordings anyway.
    """

#: Axis names a :class:`ConditionKey` can be pivoted/grouped on.
CONDITION_AXES = ("website", "network", "stack", "seed", "path",
                  "middleboxes")

#: Campaign-directory subdirectory holding per-condition lease files
#: (the distributed claim protocol — see ``repro.testbed.distributed``).
CLAIMS_DIRNAME = "claims"

#: Campaign-directory subdirectory holding per-worker partial
#: aggregates (``<worker>.json``, serialized ``GridReport`` state).
PARTIALS_DIRNAME = "partials"

#: Campaign-directory subdirectory holding per-worker *study* partials
#: (``<worker>.json``, serialized ``repro.study.pipeline.StudyPartial``
#: state): perception-study aggregations computed over the campaign's
#: recorded summaries, sharded by participant block.
STUDY_PARTIALS_DIRNAME = "study_partials"

#: Campaign-directory subdirectory holding per-condition quarantine
#: markers (``<fingerprint>``): conditions the supervisor poisoned
#: after they repeatedly killed workers (see
#: ``repro.testbed.supervisor``). Live workers settle marked
#: conditions as ``poisoned`` instead of retrying them forever.
QUARANTINE_DIRNAME = "quarantine"

#: Manifest statuses that mean "a recording exists for this condition".
#: Owned here (the manifest-reading layer); the campaign orchestrator
#: imports it, so the two can never drift apart. ``shared`` only ever
#: appears in in-memory ConditionResults (a cooperating distributed
#: worker recorded the condition — that worker wrote the manifest line),
#: but it means the same thing: the recording exists.
OK_STATUSES = ("simulated", "cached", "resumed", "shared")

#: Labels end in ``_s<seed>`` (see ``harness.condition_label``).
_SEED_SUFFIX = re.compile(r"_s(\d+)$")


# -- crash-safe record I/O ---------------------------------------------------
#
# Everything a campaign writes incrementally (manifest lines, partial
# aggregates) goes through these helpers: writers stamp a CRC over the
# record's canonical JSON, readers verify it and *skip-and-log* torn or
# corrupt data instead of raising — a killed writer degrades the record,
# never the readers. Records written before the CRC existed carry no
# ``crc`` field and are accepted as-is (legacy).


def record_crc(record: Dict[str, object]) -> str:
    """CRC-32 over the record's canonical JSON, sans the ``crc`` field."""
    body = json.dumps(
        {key: value for key, value in record.items() if key != "crc"},
        sort_keys=True)
    return format(zlib.crc32(body.encode("utf-8")), "08x")


def seal_record(record: Dict[str, object]) -> Dict[str, object]:
    """Return the record with its ``crc`` field stamped."""
    sealed = dict(record)
    sealed["crc"] = record_crc(sealed)
    return sealed


def record_intact(record: Dict[str, object]) -> bool:
    """True when the record carries no CRC (legacy) or it matches."""
    crc = record.get("crc")
    return crc is None or crc == record_crc(record)


def append_record(path: Union[str, Path],
                  record: Dict[str, object]) -> None:
    """Append one checksummed JSON line to an append-only log.

    The line is sealed (:func:`seal_record`), written in a single
    ``write`` + flush so concurrent appenders on a shared filesystem
    interleave whole lines, and routed through the ``manifest-append``
    fault point so chaos tests can tear it mid-write.
    """
    line = json.dumps(seal_record(record)) + "\n"
    faults.fire("manifest-append", path=str(path), line=line)
    # Heal a torn tail first: a writer killed mid-append leaves a
    # truncated line with no newline, and appending straight onto it
    # would glue THIS record into the garbage — corrupting a good
    # record instead of just losing the dead writer's. Starting on a
    # fresh line confines the damage to the torn line itself, which
    # readers skip.
    prefix = ""
    try:
        with open(path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                prefix = "\n"
    except (OSError, ValueError):
        pass  # missing or empty file: nothing to heal
    with open(path, "a") as handle:
        handle.write(prefix + line)
        handle.flush()


def read_jsonl(
    path: Union[str, Path],
    on_skip: Optional[Callable[[int, str], None]] = None,
) -> Iterator[Dict[str, object]]:
    """Yield verified records from an append-only JSON-lines log.

    Blank lines, torn lines (invalid JSON — a killed writer's final
    partial ``write``) and checksum-mismatched lines (bit rot, torn
    tail glued onto a later append) are skipped with a logged warning;
    ``on_skip(line_number, reason)`` additionally observes each skip so
    health reporting can count them. Never raises on bad content.
    """
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                reason = "torn line (invalid JSON)"
                logger.warning("%s:%d: skipping %s", path, number, reason)
                if on_skip is not None:
                    on_skip(number, reason)
                continue
            if not isinstance(record, dict):
                reason = "not a JSON object"
                logger.warning("%s:%d: skipping %s", path, number, reason)
                if on_skip is not None:
                    on_skip(number, reason)
                continue
            if not record_intact(record):
                reason = "checksum mismatch"
                logger.warning("%s:%d: skipping %s", path, number, reason)
                if on_skip is not None:
                    on_skip(number, reason)
                continue
            yield record


@dataclass(frozen=True)
class ConditionKey:
    """Axis coordinates plus cache identity of one recorded condition.

    A deliberately light counterpart to ``campaign.Condition``: it
    carries only what grouping and cache lookup need, so it can be
    reconstructed from a manifest on disk where the full profile/stack
    objects no longer exist.
    """

    website: str
    network: str
    stack: str
    seed: int
    label: str
    fingerprint: str
    #: Path topology mode ("direct" end-to-end, "split" per-segment
    #: proxies); "direct" for every condition recorded before the axis
    #: existed.
    path: str = "direct"
    #: In-path middlebox chain name ("none" when clean); "none" for
    #: every condition recorded before the axis existed.
    middleboxes: str = "none"

    def axis(self, name: str) -> object:
        """Value of one pivot axis (website / network / stack / seed /
        path / middleboxes)."""
        if name not in CONDITION_AXES:
            raise KeyError(
                f"unknown condition axis {name!r}; "
                f"expected one of {CONDITION_AXES}")
        return getattr(self, name)

    def axes(self, names: Sequence[str]) -> Tuple[object, ...]:
        """Tuple of axis values, e.g. a group-by key."""
        return tuple(self.axis(name) for name in names)


def _seed_from_label(label: str) -> int:
    match = _SEED_SUFFIX.search(label)
    return int(match.group(1)) if match else -1


class SummaryStore:
    """Iterates ``(ConditionKey, RecordingSummary)`` pairs lazily.

    ``keys`` fixes the key list up front (live mode: the campaign spec's
    sweep order); without it the keys are recovered from the campaign
    directory's ``manifest.jsonl`` (post-hoc mode), in manifest order
    with later records winning per fingerprint.
    """

    def __init__(
        self,
        cache: Union[RecordingCache, str, Path],
        keys: Optional[Sequence[ConditionKey]] = None,
        campaign_dir: Optional[Union[str, Path]] = None,
    ):
        self.cache = cache if isinstance(cache, RecordingCache) \
            else RecordingCache(cache)
        self.campaign_dir = Path(campaign_dir) \
            if campaign_dir is not None else None
        self._keys = list(keys) if keys is not None else None

    @classmethod
    def open(
        cls,
        campaign_dir: Union[str, Path],
        cache_dir: Optional[Union[str, Path]] = None,
        check_behaviour: bool = True,
    ) -> "SummaryStore":
        """Open a finished campaign directory without re-running anything.

        ``cache_dir`` defaults to the layout ``Campaign`` creates
        (``<cache>/campaigns/<name>-<fingerprint>``), i.e. two levels up
        from the campaign directory.

        Raises :class:`StaleCampaignError` when the directory records a
        ``sim_behaviour`` version (in ``spec.json`` or any manifest
        line) different from the running simulator's — those summaries
        are not comparable with current output. ``check_behaviour=False``
        opens it anyway (e.g. to inspect historical results). Dirs from
        before the version was recorded carry no marker and cannot be
        checked.
        """
        campaign_dir = Path(campaign_dir)
        manifest = campaign_dir / "manifest.jsonl"
        if not manifest.exists():
            raise FileNotFoundError(
                f"no campaign manifest at {manifest}")
        if cache_dir is None:
            cache_dir = campaign_dir.parent.parent
        store = cls(RecordingCache(cache_dir), campaign_dir=campaign_dir)
        if check_behaviour:
            recorded = store.recorded_behaviour_version()
            if recorded is not None and \
                    recorded != harness.SIM_BEHAVIOUR_VERSION:
                raise StaleCampaignError(
                    f"campaign dir {campaign_dir} was recorded under "
                    f"SIM_BEHAVIOUR_VERSION={recorded}, but the current "
                    f"simulator is version "
                    f"{harness.SIM_BEHAVIOUR_VERSION}, so its summaries "
                    f"are not comparable with current output; re-run "
                    f"the campaign, or open with check_behaviour=False "
                    f"to analyse the stale recordings")
        return store

    # -- keys ----------------------------------------------------------------

    @property
    def manifest_path(self) -> Optional[Path]:
        if self.campaign_dir is None:
            return None
        return self.campaign_dir / "manifest.jsonl"

    def _manifest_records(self) -> List[Dict[str, object]]:
        """Latest manifest record per fingerprint, in first-seen order.

        Torn and checksum-failed lines are skipped with a warning (see
        :func:`read_jsonl`) — a worker killed mid-append degrades one
        line, never the whole campaign directory.
        """
        manifest = self.manifest_path
        records: Dict[str, Dict[str, object]] = {}
        if manifest is None or not manifest.exists():
            return []
        for record in read_jsonl(manifest):
            records[str(record.get("fingerprint"))] = record
        return list(records.values())

    def _key_from_record(
            self, record: Dict[str, object]) -> Optional[ConditionKey]:
        label = str(record.get("label", ""))
        fingerprint = str(record.get("fingerprint", ""))
        if not label or not fingerprint:
            return None
        if "website" in record:  # axis fields written since the manifest
            return ConditionKey(  # format gained them
                website=str(record["website"]),
                network=str(record["network"]),
                stack=str(record["stack"]),
                seed=int(record.get("seed", _seed_from_label(label))),
                label=label, fingerprint=fingerprint,
                path=str(record.get("path", "direct")),
                middleboxes=str(record.get("middleboxes", "none")),
            )
        # Legacy manifest line: recover the axes from the summary itself.
        summary = self.cache.load(label, fingerprint)
        if summary is None:
            return None
        return ConditionKey(
            website=summary.website, network=summary.network,
            stack=summary.stack, seed=_seed_from_label(label),
            label=label, fingerprint=fingerprint,
            path=getattr(summary, "path", "direct"),
            middleboxes=getattr(summary, "middleboxes", "none"),
        )

    def keys(self) -> List[ConditionKey]:
        """Every recorded condition's key (no summaries loaded for
        manifests that carry axis fields)."""
        if self._keys is not None:
            return list(self._keys)
        out: List[ConditionKey] = []
        for record in self._manifest_records():
            if record.get("status") not in OK_STATUSES:
                continue
            key = self._key_from_record(record)
            if key is not None:
                out.append(key)
        return out

    def recorded_behaviour_version(self) -> Optional[int]:
        """The ``SIM_BEHAVIOUR_VERSION`` this campaign dir was recorded
        under, or ``None`` when the dir predates version stamping (no
        ``spec.json`` field and no manifest line carries one).

        ``spec.json`` is consulted first (written once per campaign);
        manifest lines are the fallback for dirs whose spec was written
        by an older simulator but whose conditions ran under a newer
        one — any stamped line settles it.
        """
        if self.campaign_dir is None:
            return None
        spec_path = self.campaign_dir / "spec.json"
        if spec_path.exists():
            try:
                spec = json.loads(spec_path.read_text())
            except json.JSONDecodeError:
                spec = {}
            if "sim_behaviour" in spec:
                return int(spec["sim_behaviour"])
        for record in self._manifest_records():
            if "sim_behaviour" in record:
                return int(record["sim_behaviour"])
        return None

    # -- distributed partial aggregates --------------------------------------

    def partial_paths(self) -> List[Path]:
        """Per-worker partial aggregate files, sorted by worker id.

        Workers in a distributed run flush
        ``partials/<worker>.json`` shards (see
        ``repro.testbed.distributed``); an empty list means the
        campaign ran single-host or no worker flushed yet.
        """
        if self.campaign_dir is None:
            return []
        partials = self.campaign_dir / PARTIALS_DIRNAME
        if not partials.is_dir():
            return []
        return sorted(path for path in partials.glob("*.json")
                      if not path.name.startswith("."))

    def load_partial_state(self, path: Path,
                           check_behaviour: bool = True) \
            -> Dict[str, object]:
        """Parse one partial aggregate, checking its behaviour stamp.

        Raises :class:`StaleCampaignError` when the shard was recorded
        under a different ``SIM_BEHAVIOUR_VERSION`` than the running
        simulator (unless ``check_behaviour=False``), and
        ``ValueError`` when the shard is torn (invalid JSON from a
        crashed flush) or fails its checksum — callers that merge
        shards catch that, log, and fall back to the summaries.
        """
        try:
            state = json.loads(Path(path).read_text())
        except json.JSONDecodeError as error:
            raise ValueError(
                f"partial aggregate {path} is torn (invalid JSON: "
                f"{error}); its worker crashed mid-flush") from None
        if not isinstance(state, dict) or not record_intact(state):
            raise ValueError(
                f"partial aggregate {path} failed its checksum; "
                f"skipping the corrupt shard")
        recorded = state.get("sim_behaviour")
        if check_behaviour and recorded is not None and \
                int(recorded) != harness.SIM_BEHAVIOUR_VERSION:
            raise StaleCampaignError(
                f"partial aggregate {path} was recorded under "
                f"SIM_BEHAVIOUR_VERSION={recorded}, but the current "
                f"simulator is version {harness.SIM_BEHAVIOUR_VERSION}")
        return state

    def study_partial_paths(self) -> List[Path]:
        """Per-worker study-pipeline partials, sorted by worker id.

        Written by ``repro study --campaign-dir DIR --shard I:K``; an
        empty list means no study shard has been flushed for this
        campaign yet.
        """
        if self.campaign_dir is None:
            return []
        partials = self.campaign_dir / STUDY_PARTIALS_DIRNAME
        if not partials.is_dir():
            return []
        return sorted(path for path in partials.glob("*.json")
                      if not path.name.startswith("."))

    def recorded_count(self) -> int:
        """How many conditions the manifest says were recorded ok.

        Unlike ``len(self.keys())`` this never loads a summary, so on a
        legacy manifest with an empty/wrong cache it still reports the
        manifest's claim — callers can compare it against what
        iteration actually yields to detect a missing cache.
        """
        if self._keys is not None:
            return len(self._keys)
        return sum(record.get("status") in OK_STATUSES
                   for record in self._manifest_records())

    # -- iteration -----------------------------------------------------------

    def load(self, key: ConditionKey) -> Optional[RecordingSummary]:
        """The summary recorded for one key, or None if missing/pruned."""
        return self.cache.load(key.label, key.fingerprint)

    def iter_summaries(
        self, missing: str = "skip",
    ) -> Iterator[Tuple[ConditionKey, RecordingSummary]]:
        """Yield ``(key, summary)`` pairs one at a time.

        ``missing`` says what to do when a key's recording is absent
        from the cache (pruned, or the condition failed): ``"skip"``
        (default — report on what exists) or ``"raise"`` (KeyError).
        """
        if missing not in ("skip", "raise"):
            raise ValueError(
                f"missing must be 'skip' or 'raise', got {missing!r}")
        for key in self.keys():
            summary = self.load(key)
            if summary is None:
                if missing == "raise":
                    raise KeyError(
                        f"condition {key.label} not recorded yet")
                continue
            yield key, summary

    def __iter__(self) -> Iterator[Tuple[ConditionKey, RecordingSummary]]:
        return self.iter_summaries()

    def __len__(self) -> int:
        return len(self.keys())
