"""Condition sweep harness with a content-addressed JSON disk cache.

Cache-key scheme
----------------
Every recording is stored under a name ending in a *condition
fingerprint*: a SHA-256 hash over the **full** set of parameters that
determine the simulation output — the website and corpus seed, every
field of the network profile and protocol stack (not just their names),
the simulation seed, repetition count, timeout and selection metric,
plus :data:`SIM_BEHAVIOUR_VERSION`.

Changing *any* parameter therefore changes the key, so a stale cache
entry can never be returned for a differently-parameterised condition —
there is no hand-maintained list of key components to forget to update.
The version constant only needs a bump when the simulator's *behaviour*
changes for identical parameters.

Writes go through a per-writer unique temporary file in the cache
directory followed by an atomic :func:`os.replace`, so any number of
concurrent processes may store the same (or different) conditions into
one cache directory without clobbering each other.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from statistics import fmean
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.browser.metrics import VisualCurve
from repro.browser.recorder import record_website
from repro.netem.middlebox import (
    MiddleboxChainSpec,
    MiddleboxesLike,
    resolve_middleboxes,
)
from repro.netem.profiles import NETWORKS, NetworkProfile, network_by_name
from repro.transport.config import STACKS, StackConfig, stack_by_name
from repro.web.corpus import CORPUS_SITE_NAMES, build_site

#: Bump only when simulator behaviour changes for identical parameters.
#: Parameter changes (timeout, loss rate, ...) are captured automatically
#: by the content-hashed condition fingerprint.
#:
#: 13: per-load connection flow ids (handshake-retry jitter no longer
#: depends on process history; repeat runs within one recording now
#: restart the id space, changing lossy-network bytes).
SIM_BEHAVIOUR_VERSION = 13

#: A network axis value: a Table 2 name or any NetworkProfile instance.
NetworkLike = Union[str, NetworkProfile]
#: A stack axis value: a Table 1 name or any StackConfig instance.
StackLike = Union[str, StackConfig]


def resolve_network(network: NetworkLike) -> NetworkProfile:
    """Accept a Table 2 name or a (possibly derived) profile object."""
    if isinstance(network, NetworkProfile):
        return network
    return network_by_name(network)


def resolve_stack(stack: StackLike) -> StackConfig:
    """Accept a Table 1 name or a StackConfig object."""
    if isinstance(stack, StackConfig):
        return stack
    return stack_by_name(stack)


def condition_fingerprint(
    website: str,
    profile: NetworkProfile,
    stack: StackConfig,
    *,
    corpus_seed: int,
    seed: int,
    runs: int,
    timeout: float,
    selection_metric: str,
    path: str = "direct",
    middleboxes: Optional[MiddleboxChainSpec] = None,
) -> str:
    """Content hash identifying one condition's simulation output.

    Hashes a canonical JSON encoding of every parameter the output
    depends on, including all profile fields (segments of a
    :class:`~repro.netem.profiles.SegmentedProfile` recurse) and all
    stack fields. The ``path`` axis only joins the hash for non-direct
    modes, and a middlebox chain only when it has boxes, so every
    pre-existing fingerprint — and with it every cache entry and
    fixture — is untouched.
    """
    params = {
        "sim_behaviour": SIM_BEHAVIOUR_VERSION,
        "website": website,
        "corpus_seed": corpus_seed,
        "network": dataclasses.asdict(profile),
        "network_type": type(profile).__name__,
        "stack": dataclasses.asdict(stack),
        "seed": seed,
        "runs": runs,
        "timeout": timeout,
        "selection_metric": selection_metric,
    }
    if path != "direct":
        params["path"] = path
    if middleboxes is not None and middleboxes.boxes:
        params["middleboxes"] = middleboxes.describe()
    blob = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


def condition_label(website: str, network: str, stack: str,
                    seed: Optional[int] = None,
                    path: str = "direct",
                    middleboxes: str = "none") -> str:
    """Human-readable, filesystem-safe prefix for cache/manifest entries."""
    parts = [website, network, stack]
    if path != "direct":
        parts.append(path)
    if middleboxes != "none":
        parts.append(middleboxes)
    if seed is not None:
        parts.append(f"s{seed}")
    raw = "_".join(parts)
    safe = []
    for char in raw:
        if char.isalnum() or char in "._-":
            safe.append(char)
        elif char == "+":
            safe.append("p")
        else:
            safe.append("-")
    return "".join(safe)


@dataclass
class RecordingSummary:
    """Serializable essence of one condition's recording.

    Carries what the user studies and analyses need: the shown (typical)
    run's visual curve and metrics, per-run metric samples for averaging,
    and transport counters for the retransmission analysis (Section 4.3).
    """

    website: str
    network: str
    stack: str
    runs: int
    selection_metric: str
    selected_metrics: Dict[str, float]
    selected_curve: List[Tuple[float, float]]
    run_metrics: List[Dict[str, float]]
    mean_retransmissions: float
    mean_segments_sent: float
    completed_fraction: float
    path: str = "direct"
    #: Name of the in-path middlebox chain ("none" when clean — every
    #: summary recorded before the axis existed reads back as "none").
    middleboxes: str = "none"

    @property
    def condition_key(self) -> Tuple[str, str, str]:
        return (self.website, self.network, self.stack)

    @property
    def video_duration(self) -> float:
        """Clip length: last visual change plus a one-second tail."""
        return self.selected_metrics["LVC"] + 1.0

    @property
    def fvc(self) -> float:
        return self.selected_metrics["FVC"]

    @property
    def si(self) -> float:
        return self.selected_metrics["SI"]

    def curve(self) -> VisualCurve:
        return VisualCurve(self.selected_curve)

    def mean_metric(self, name: str) -> float:
        return fmean(m[name] for m in self.run_metrics)

    def metric_samples(self, name: str) -> List[float]:
        """Per-run samples of one metric — the unit the streaming
        accumulators (:mod:`repro.analysis.streaming`) aggregate."""
        return [m[name] for m in self.run_metrics]

    def to_json(self) -> Dict[str, object]:
        payload = {
            "website": self.website,
            "network": self.network,
            "stack": self.stack,
            "runs": self.runs,
            "selection_metric": self.selection_metric,
            "selected_metrics": self.selected_metrics,
            "selected_curve": [[t, v] for t, v in self.selected_curve],
            "run_metrics": self.run_metrics,
            "mean_retransmissions": self.mean_retransmissions,
            "mean_segments_sent": self.mean_segments_sent,
            "completed_fraction": self.completed_fraction,
        }
        # Serialized only for non-direct paths: direct summaries stay
        # byte-identical to every pre-path-axis cache file and fixture.
        if self.path != "direct":
            payload["path"] = self.path
        # Same rule for the middlebox chain: clean summaries stay
        # byte-identical to every pre-middlebox cache file and fixture.
        if self.middleboxes != "none":
            payload["middleboxes"] = self.middleboxes
        return payload

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "RecordingSummary":
        return cls(
            website=str(data["website"]),
            network=str(data["network"]),
            stack=str(data["stack"]),
            runs=int(data["runs"]),
            selection_metric=str(data["selection_metric"]),
            selected_metrics={k: float(v) for k, v in
                              dict(data["selected_metrics"]).items()},
            selected_curve=[(float(t), float(v))
                            for t, v in list(data["selected_curve"])],
            run_metrics=[{k: float(v) for k, v in m.items()}
                         for m in list(data["run_metrics"])],
            mean_retransmissions=float(data["mean_retransmissions"]),
            mean_segments_sent=float(data["mean_segments_sent"]),
            completed_fraction=float(data["completed_fraction"]),
            path=str(data.get("path", "direct")),
            middleboxes=str(data.get("middleboxes", "none")),
        )


def default_cache_dir() -> str:
    """Cache directory used when none is given (env-overridable)."""
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


class RecordingCache:
    """Content-addressed, multi-process-safe store of recording summaries.

    Entries are named ``<label>_<fingerprint>.json``; the label is purely
    for humans, the fingerprint (see :func:`condition_fingerprint`) is
    the identity. Stores write a per-writer unique temp file and
    atomically replace, so concurrent writers — even of the *same*
    condition — never observe or produce a torn file.
    """

    def __init__(self, cache_dir: Union[str, Path]):
        self.directory = Path(cache_dir)

    def path_for(self, label: str, fingerprint: str) -> Path:
        return self.directory / f"{label}_{fingerprint}.json"

    def load(self, label: str, fingerprint: str) -> Optional[RecordingSummary]:
        path = self.path_for(label, fingerprint)
        if not path.exists():
            return None
        try:
            with open(path) as handle:
                return RecordingSummary.from_json(json.load(handle))
        except (json.JSONDecodeError, KeyError, ValueError, TypeError):
            return None

    def store(self, label: str, fingerprint: str,
              summary: RecordingSummary) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(label, fingerprint)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=self.directory)
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(summary.to_json(), handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


def produce_summary(
    website: str,
    profile: NetworkProfile,
    stack: StackConfig,
    *,
    corpus_seed: int,
    seed: int,
    runs: int,
    timeout: float,
    selection_metric: str,
    path: str = "direct",
    middleboxes: Optional[MiddleboxesLike] = None,
) -> RecordingSummary:
    """Simulate one condition and summarise it (no caching).

    This is the single producer used by :class:`Testbed`, the parallel
    sweep and the campaign orchestrator, so all of them emit
    byte-identical summaries for identical parameters.

    With ``REPRO_SANITIZE=1`` in the environment, the whole simulation
    runs under the runtime nondeterminism sanitizer
    (:mod:`repro.lint.sanitizer`): any wall-clock read or ambient RNG
    draw reached from a sim-core frame raises instead of silently
    breaking the determinism contract.  The env flag propagates to
    campaign worker processes, so every entry point doubles as a
    sanitizer smoke test.
    """
    from repro.lint.sanitizer import maybe_sanitized

    chain = resolve_middleboxes(middleboxes)
    with maybe_sanitized():
        site = build_site(website, seed=corpus_seed)
        recording = record_website(
            site, profile, stack,
            runs=runs, seed=seed,
            selection_metric=selection_metric,
            timeout=timeout,
            path_mode=path,
            middleboxes=chain if chain.boxes else None,
        )
    selected = recording.selected
    return RecordingSummary(
        website=website,
        network=profile.name,
        stack=stack.name,
        runs=runs,
        selection_metric=selection_metric,
        path=path,
        middleboxes=chain.name if chain.boxes else "none",
        selected_metrics=selected.metrics.as_dict(),
        selected_curve=selected.curve.points,
        run_metrics=[r.metrics.as_dict() for r in recording.runs],
        mean_retransmissions=fmean(
            r.transport.retransmissions for r in recording.runs
        ),
        mean_segments_sent=fmean(
            r.transport.packets_or_segments_sent for r in recording.runs
        ),
        completed_fraction=fmean(
            1.0 if r.completed else 0.0 for r in recording.runs
        ),
    )


class Testbed:
    """Produces and caches recordings for study conditions.

    ``network`` and ``stack`` arguments accept either the paper's Table
    1/2 names or arbitrary :class:`NetworkProfile` / :class:`StackConfig`
    objects (derived loss-sweep profiles, trace-driven profiles, custom
    stacks), so sweeps are not limited to the paper grid.
    """

    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(
        self,
        corpus_seed: int = 0,
        runs: int = 7,
        seed: int = 0,
        cache_dir: Optional[str] = None,
        timeout: float = 180.0,
        selection_metric: str = "PLT",
    ):
        if runs < 1:
            raise ValueError("runs must be at least 1")
        self.corpus_seed = corpus_seed
        self.runs = runs
        self.seed = seed
        self.timeout = timeout
        self.selection_metric = selection_metric
        if cache_dir is None:
            cache_dir = default_cache_dir()
        self.cache = RecordingCache(cache_dir)
        self._memory: Dict[str, RecordingSummary] = {}

    @property
    def cache_dir(self) -> Path:
        return self.cache.directory

    # Backwards-compatible alias (pre-campaign code accessed the private
    # attribute directly).
    @property
    def _cache_dir(self) -> Path:
        return self.cache.directory

    # -- cache plumbing ------------------------------------------------------

    def _fingerprint(self, website: str, profile: NetworkProfile,
                     stack: StackConfig) -> str:
        return condition_fingerprint(
            website, profile, stack,
            corpus_seed=self.corpus_seed, seed=self.seed, runs=self.runs,
            timeout=self.timeout, selection_metric=self.selection_metric,
        )

    def _label(self, website: str, network_name: str,
               stack_name: str) -> str:
        # The seed is part of the label so campaign workers and
        # sequential testbeds name identical conditions identically
        # (the fingerprint is the identity; the label must match too
        # for the layers to share cache files).
        return condition_label(website, network_name, stack_name,
                               seed=self.seed)

    def _cache_path(self, website: str, network: NetworkLike,
                    stack: StackLike) -> Path:
        profile = resolve_network(network)
        stack_cfg = resolve_stack(stack)
        return self.cache.path_for(
            self._label(website, profile.name, stack_cfg.name),
            self._fingerprint(website, profile, stack_cfg))

    # -- recording ----------------------------------------------------------------

    def recording(self, website: str, network: NetworkLike,
                  stack: StackLike) -> RecordingSummary:
        """Recording for one condition (memoised, then disk-cached)."""
        profile = resolve_network(network)
        stack_cfg = resolve_stack(stack)
        fingerprint = self._fingerprint(website, profile, stack_cfg)
        if fingerprint in self._memory:
            return self._memory[fingerprint]
        label = self._label(website, profile.name, stack_cfg.name)
        cached = self.cache.load(label, fingerprint)
        if cached is not None:
            self._memory[fingerprint] = cached
            return cached
        summary = produce_summary(
            website, profile, stack_cfg,
            corpus_seed=self.corpus_seed, seed=self.seed, runs=self.runs,
            timeout=self.timeout, selection_metric=self.selection_metric,
        )
        self.cache.store(label, fingerprint, summary)
        self._memory[fingerprint] = summary
        return summary

    # -- sweeps ---------------------------------------------------------------------

    def sweep(
        self,
        sites: Optional[Sequence[str]] = None,
        networks: Optional[Sequence[NetworkLike]] = None,
        stacks: Optional[Sequence[StackLike]] = None,
    ) -> List[RecordingSummary]:
        """Record every requested condition (defaults: full paper grid)."""
        sites = list(sites) if sites is not None else list(CORPUS_SITE_NAMES)
        networks = list(networks) if networks is not None else \
            [p.name for p in NETWORKS]
        stacks = list(stacks) if stacks is not None else \
            [s.name for s in STACKS]
        out: List[RecordingSummary] = []
        for site in sites:
            for network in networks:
                for stack in stacks:
                    out.append(self.recording(site, network, stack))
        return out

    def index(self) -> Dict[Tuple[str, str, str], RecordingSummary]:
        """All conditions recorded so far, keyed by (site, network, stack)."""
        return {s.condition_key: s for s in self._memory.values()}
