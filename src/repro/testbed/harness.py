"""Condition sweep harness with a JSON disk cache."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from statistics import fmean
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.browser.metrics import VisualCurve, VisualMetrics
from repro.browser.recorder import record_website
from repro.netem.profiles import NETWORKS, NetworkProfile, network_by_name
from repro.transport.config import STACKS, StackConfig, stack_by_name
from repro.web.corpus import CORPUS_SITE_NAMES, build_site

#: Bump when simulator behaviour changes to invalidate stale caches.
CACHE_VERSION = 11


@dataclass
class RecordingSummary:
    """Serializable essence of one condition's recording.

    Carries what the user studies and analyses need: the shown (typical)
    run's visual curve and metrics, per-run metric samples for averaging,
    and transport counters for the retransmission analysis (Section 4.3).
    """

    website: str
    network: str
    stack: str
    runs: int
    selection_metric: str
    selected_metrics: Dict[str, float]
    selected_curve: List[Tuple[float, float]]
    run_metrics: List[Dict[str, float]]
    mean_retransmissions: float
    mean_segments_sent: float
    completed_fraction: float

    @property
    def condition_key(self) -> Tuple[str, str, str]:
        return (self.website, self.network, self.stack)

    @property
    def video_duration(self) -> float:
        """Clip length: last visual change plus a one-second tail."""
        return self.selected_metrics["LVC"] + 1.0

    @property
    def fvc(self) -> float:
        return self.selected_metrics["FVC"]

    @property
    def si(self) -> float:
        return self.selected_metrics["SI"]

    def curve(self) -> VisualCurve:
        return VisualCurve(self.selected_curve)

    def mean_metric(self, name: str) -> float:
        return fmean(m[name] for m in self.run_metrics)

    def to_json(self) -> Dict[str, object]:
        return {
            "website": self.website,
            "network": self.network,
            "stack": self.stack,
            "runs": self.runs,
            "selection_metric": self.selection_metric,
            "selected_metrics": self.selected_metrics,
            "selected_curve": [[t, v] for t, v in self.selected_curve],
            "run_metrics": self.run_metrics,
            "mean_retransmissions": self.mean_retransmissions,
            "mean_segments_sent": self.mean_segments_sent,
            "completed_fraction": self.completed_fraction,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "RecordingSummary":
        return cls(
            website=str(data["website"]),
            network=str(data["network"]),
            stack=str(data["stack"]),
            runs=int(data["runs"]),
            selection_metric=str(data["selection_metric"]),
            selected_metrics={k: float(v) for k, v in
                              dict(data["selected_metrics"]).items()},
            selected_curve=[(float(t), float(v))
                            for t, v in list(data["selected_curve"])],
            run_metrics=[{k: float(v) for k, v in m.items()}
                         for m in list(data["run_metrics"])],
            mean_retransmissions=float(data["mean_retransmissions"]),
            mean_segments_sent=float(data["mean_segments_sent"]),
            completed_fraction=float(data["completed_fraction"]),
        )


class Testbed:
    """Produces and caches recordings for study conditions."""

    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(
        self,
        corpus_seed: int = 0,
        runs: int = 7,
        seed: int = 0,
        cache_dir: Optional[str] = None,
        timeout: float = 180.0,
        selection_metric: str = "PLT",
    ):
        if runs < 1:
            raise ValueError("runs must be at least 1")
        self.corpus_seed = corpus_seed
        self.runs = runs
        self.seed = seed
        self.timeout = timeout
        self.selection_metric = selection_metric
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
        self._cache_dir = Path(cache_dir)
        self._memory: Dict[Tuple[str, str, str], RecordingSummary] = {}

    # -- cache plumbing ------------------------------------------------------

    def _cache_path(self, website: str, network: str, stack: str) -> Path:
        safe_stack = stack.replace("+", "p")
        name = (f"v{CACHE_VERSION}_c{self.corpus_seed}_s{self.seed}_"
                f"r{self.runs}_{self.selection_metric}_"
                f"{website}_{network}_{safe_stack}.json")
        return self._cache_dir / name

    def _load_cached(self, website: str, network: str,
                     stack: str) -> Optional[RecordingSummary]:
        path = self._cache_path(website, network, stack)
        if not path.exists():
            return None
        try:
            with open(path) as handle:
                return RecordingSummary.from_json(json.load(handle))
        except (json.JSONDecodeError, KeyError, ValueError, TypeError):
            return None

    def _store(self, summary: RecordingSummary) -> None:
        self._cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(summary.website, summary.network, summary.stack)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            json.dump(summary.to_json(), handle)
        os.replace(tmp, path)

    # -- recording ----------------------------------------------------------------

    def recording(self, website: str, network: str,
                  stack: str) -> RecordingSummary:
        """Recording for one condition (memoised, then disk-cached)."""
        key = (website, network, stack)
        if key in self._memory:
            return self._memory[key]
        cached = self._load_cached(*key)
        if cached is not None:
            self._memory[key] = cached
            return cached
        summary = self._produce(website, network, stack)
        self._store(summary)
        self._memory[key] = summary
        return summary

    def _produce(self, website: str, network: str,
                 stack: str) -> RecordingSummary:
        site = build_site(website, seed=self.corpus_seed)
        profile = network_by_name(network)
        stack_cfg = stack_by_name(stack)
        recording = record_website(
            site, profile, stack_cfg,
            runs=self.runs, seed=self.seed,
            selection_metric=self.selection_metric,
            timeout=self.timeout,
        )
        selected = recording.selected
        return RecordingSummary(
            website=website,
            network=profile.name,
            stack=stack_cfg.name,
            runs=self.runs,
            selection_metric=self.selection_metric,
            selected_metrics=selected.metrics.as_dict(),
            selected_curve=selected.curve.points,
            run_metrics=[r.metrics.as_dict() for r in recording.runs],
            mean_retransmissions=fmean(
                r.transport.retransmissions for r in recording.runs
            ),
            mean_segments_sent=fmean(
                r.transport.packets_or_segments_sent for r in recording.runs
            ),
            completed_fraction=fmean(
                1.0 if r.completed else 0.0 for r in recording.runs
            ),
        )

    # -- sweeps ---------------------------------------------------------------------

    def sweep(
        self,
        sites: Optional[Sequence[str]] = None,
        networks: Optional[Sequence[str]] = None,
        stacks: Optional[Sequence[str]] = None,
    ) -> List[RecordingSummary]:
        """Record every requested condition (defaults: full paper grid)."""
        sites = list(sites) if sites is not None else list(CORPUS_SITE_NAMES)
        networks = list(networks) if networks is not None else \
            [p.name for p in NETWORKS]
        stacks = list(stacks) if stacks is not None else \
            [s.name for s in STACKS]
        out: List[RecordingSummary] = []
        for site in sites:
            for network in networks:
                for stack in stacks:
                    out.append(self.recording(site, network, stack))
        return out

    def index(self) -> Dict[Tuple[str, str, str], RecordingSummary]:
        """All conditions recorded so far, keyed by (site, network, stack)."""
        return dict(self._memory)
