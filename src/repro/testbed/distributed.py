"""Cooperative multi-host execution of one campaign over a shared dir.

The PR-1 manifest and content-addressed recording cache are share-safe
on a common filesystem (atomic renames, per-writer unique tmp files,
append-only manifest), and the streaming accumulators' exact ``merge()``
makes per-worker partial aggregation safe. This module adds the missing
piece: a **lease-based claim protocol** so any number of worker
processes — on one machine or many hosts mounting the same directory —
can pull conditions from one :class:`~repro.testbed.campaign.CampaignSpec`
grid without ever simulating the same condition twice.

Protocol
--------
Each condition is claimed through a file ``claims/<fingerprint>.lease``
inside the campaign directory:

* **acquire** — ``open(..., O_CREAT | O_EXCL)``: exactly one worker
  wins; the file body records holder id, pid, host and acquire time.
* **heartbeat** — the holder touches the file's mtime every
  ``heartbeat_s`` (a daemon thread, so long simulations keep beating).
* **release** — the holder unlinks the file after the condition's
  manifest line has landed (success or terminal failure).
* **stale reclaim** — a lease whose mtime is older than ``ttl_s``
  belongs to a crashed worker. A reclaimer *renames* it to a unique
  tombstone first (atomic: exactly one reclaimer wins) and then races
  for a fresh ``O_EXCL`` acquire, so a crashed worker's condition is
  re-simulated exactly once.

Workers run the existing claim-aware
:meth:`~repro.testbed.campaign.Campaign.run` work queue: batched page
loads on the per-worker process pool, manifest lines appended exactly as
today. Conditions another live worker holds are polled and settle as
``"shared"`` (the holder wrote the manifest line); everything else about
resume/cache semantics is unchanged. That includes failures: a
condition a peer terminally *failed* (manifest line, no recording)
looks like reclaimable work to the next worker, which applies its own
``failure_policy`` budget — the same "relaunching retries failed
conditions" semantics a single-host re-run has, bounded at one retry
budget per worker.

Each worker also periodically flushes a **partial aggregate** —
``partials/<worker>.json``, the serialized
:class:`~repro.analysis.streaming.GridReport` state over the conditions
*it* simulated — so a leader (or a post-hoc
``repro campaign --report --campaign-dir DIR --from-partials``) can
:func:`merge_partial_reports` the shards into one report without
re-reading every summary. Conditions covered by no partial (resumed or
cached before any worker started, or recorded by a worker that crashed
before flushing) are completed from the
:class:`~repro.testbed.store.SummaryStore`.

Clock caveat: staleness compares the shared filesystem's mtime against
the local clock, so keep ``ttl_s`` comfortably above both the heartbeat
interval and any host clock skew (the 60 s default is fine for NTP-sane
fleets).
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.streaming import GridReport
from repro.testbed import faults, harness
from repro.testbed.campaign import (
    Campaign,
    CampaignResult,
    Condition,
    ProgressCallback,
    SummarySink,
    spec_from_json,
)
from repro.testbed.store import (
    CLAIMS_DIRNAME,
    OK_STATUSES,
    PARTIALS_DIRNAME,
    QUARANTINE_DIRNAME,
    StaleCampaignError,
    SummaryStore,
    seal_record,
)

logger = logging.getLogger(__name__)


def default_worker_id() -> str:
    """``<host>-<pid>``: unique per worker process on a shared mount."""
    return sanitize_worker_id(f"{socket.gethostname()}-{os.getpid()}")


def sanitize_worker_id(worker_id: str) -> str:
    """Make a worker id safe to embed in lease/partial file names.

    Ids become path components (``claims/<fp>.lease.stale-<id>-...``,
    ``partials/<id>.json``); a ``/`` or other special character would
    break tombstone renames and hide partials from discovery.
    """
    safe = "".join(c if c.isalnum() or c in "._-" else "-"
                   for c in worker_id)
    return safe or "worker"


@dataclass(frozen=True)
class LeaseConfig:
    """Tuning for the claim protocol (CLI: ``--lease-ttl`` etc.)."""

    #: Seconds without a heartbeat before a lease counts as stale and
    #: its condition may be reclaimed by another worker.
    ttl_s: float = 60.0
    #: Seconds between mtime touches on held leases.
    heartbeat_s: float = 15.0
    #: Seconds between polls of conditions other workers hold.
    poll_s: float = 1.0

    def __post_init__(self) -> None:
        if self.ttl_s <= 0 or self.heartbeat_s <= 0 or self.poll_s <= 0:
            raise ValueError("lease timings must be positive")
        if self.heartbeat_s >= self.ttl_s:
            raise ValueError(
                f"heartbeat_s ({self.heartbeat_s:g}) must be shorter "
                f"than ttl_s ({self.ttl_s:g}), or every long simulation "
                f"looks crashed")


class LeaseManager:
    """Per-condition claim files with O_EXCL acquire and mtime leases."""

    def __init__(self, campaign_dir: Union[str, Path], worker_id: str,
                 config: Optional[LeaseConfig] = None):
        self.claims_dir = Path(campaign_dir) / CLAIMS_DIRNAME
        self.worker_id = sanitize_worker_id(worker_id)
        self.config = config if config is not None else LeaseConfig()
        self._held: Dict[str, Path] = {}
        self._lock = threading.Lock()

    def path(self, fingerprint: str) -> Path:
        return self.claims_dir / f"{fingerprint}.lease"

    def holds(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._held

    def held_count(self) -> int:
        with self._lock:
            return len(self._held)

    def acquire(self, fingerprint: str) -> bool:
        """Try to claim one condition; idempotent for held leases.

        The lease body is written to a private temp file first and
        published with :func:`os.link` — atomic and exclusive, like
        ``O_CREAT | O_EXCL``, but the lease appears fully formed with a
        fresh mtime. That link *is* the initial heartbeat: a worker
        killed at any point in acquire leaves either no lease at all or
        a complete, attributable one, never an empty husk that blocks
        the condition for a TTL with no holder recorded.
        """
        if self.holds(fingerprint):
            return True
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        path = self.path(fingerprint)
        # Storm fault point: chaos tests plant a ghost stale lease here
        # to force the break_stale/re-acquire path under contention.
        faults.fire("acquire", fingerprint=fingerprint,
                    claims_dir=str(self.claims_dir),
                    ttl_s=self.config.ttl_s)
        tmp = path.with_name(
            f".{path.name}.acquire-{self.worker_id}-"
            # simlint: allow[no-ambient-rng] -- per-writer unique temp name for the atomic publish; never feeds simulation bytes
            f"{uuid.uuid4().hex[:8]}.tmp")
        tmp.write_text(json.dumps({
            "worker": self.worker_id,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            # simlint: allow[no-wallclock] -- lease provenance stamp; staleness is judged by file mtime, humans read this field
            "acquired_at": time.time(),
        }))
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        finally:
            try:
                tmp.unlink()
            except FileNotFoundError:
                pass
        with self._lock:
            self._held[fingerprint] = path
        return True

    def release(self, fingerprint: str) -> None:
        """Drop a held lease without ever deleting someone else's.

        If our heartbeat stalled past ``ttl_s``, a peer may have broken
        the stale lease and re-acquired the same path — a bare unlink
        here would delete *their* live lease and let a third worker
        claim the condition again. Rename-first makes the ownership
        check atomic: we inspect the exact file we took, and restore a
        peer's lease with a no-clobber hard link if one was taken by
        mistake.
        """
        with self._lock:
            path = self._held.pop(fingerprint, None)
        if path is None:
            return
        tombstone = path.with_name(
            f"{path.name}.release-{self.worker_id}-"
            # simlint: allow[no-ambient-rng] -- tombstone names must be unique across racing workers; never feeds simulation bytes
            f"{uuid.uuid4().hex[:8]}")
        try:
            os.rename(path, tombstone)
        except FileNotFoundError:
            return  # reclaimed and already broken; nothing to drop
        try:
            holder = json.loads(tombstone.read_text()).get("worker")
        except (OSError, json.JSONDecodeError):
            # Torn body: our own leases are fully written before being
            # tracked, so this is a peer's in-flight acquire — restore
            # it, never delete it.
            holder = None
        if holder != self.worker_id:
            # A reclaimer's live lease: put it back. link() refuses to
            # clobber, so a lease acquired meanwhile wins instead.
            try:
                os.link(tombstone, path)
            except OSError:
                pass
        try:
            tombstone.unlink()
        except FileNotFoundError:
            pass

    def release_all(self) -> None:
        with self._lock:
            held = list(self._held)
        for fingerprint in held:
            self.release(fingerprint)

    def holder(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The claim file's metadata, or None when unclaimed/torn."""
        try:
            return json.loads(self.path(fingerprint).read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def age_s(self, fingerprint: str) -> Optional[float]:
        """Seconds since the lease's last heartbeat (None: no lease)."""
        try:
            # simlint: allow[no-wallclock] -- lease staleness is real elapsed time since the holder's last heartbeat
            return time.time() - self.path(fingerprint).stat().st_mtime
        except FileNotFoundError:
            return None

    def is_stale(self, fingerprint: str) -> bool:
        age = self.age_s(fingerprint)
        return age is not None and age > self.config.ttl_s

    def break_stale(self, fingerprint: str) -> bool:
        """Remove a stale lease so the condition can be re-claimed.

        Rename-first makes the break atomic: of N workers that all saw
        the lease go stale, exactly one wins the rename (the rest get
        FileNotFoundError) — and the winner still has to race everyone
        through :meth:`acquire` afterwards. Returns True when a stale
        lease was actually broken.
        """
        if not self.is_stale(fingerprint):
            return False
        path = self.path(fingerprint)
        tombstone = path.with_name(
            # simlint: allow[no-ambient-rng] -- tombstone names must be unique across racing workers; never feeds simulation bytes
            f"{path.name}.stale-{self.worker_id}-{uuid.uuid4().hex[:8]}")
        try:
            os.rename(path, tombstone)
        except FileNotFoundError:
            return False  # released, or another worker broke it first
        tombstone.unlink()
        return True

    def heartbeat(self) -> None:
        """Touch every held lease's mtime (called by the beat thread)."""
        # Stall fault point: a True return suppresses this beat, so the
        # held leases age past ttl_s and peers exercise stale reclaim.
        if faults.fire("heartbeat", worker=self.worker_id):
            return
        with self._lock:
            paths = list(self._held.values())
        for path in paths:
            try:
                os.utime(path)
            except FileNotFoundError:
                pass  # lease was force-reclaimed; acquire() wins races


class _HeartbeatThread(threading.Thread):
    """Daemon touching held leases so long simulations keep their claims."""

    def __init__(self, leases: LeaseManager):
        super().__init__(name=f"lease-heartbeat-{leases.worker_id}",
                         daemon=True)
        self._leases = leases
        self._stop = threading.Event()

    def run(self) -> None:
        interval = self._leases.config.heartbeat_s
        while not self._stop.wait(interval):
            self._leases.heartbeat()

    def stop(self) -> None:
        self._stop.set()


class ClaimQueue:
    """The ``claims`` hook :meth:`Campaign.run` drives (see its docs).

    Bridges the campaign's work queue to a :class:`LeaseManager` and an
    optional :class:`PartialAggregator`: ``select`` acquires leases
    (breaking stale ones), ``wait`` is one bounded poll over deferred
    conditions, ``recorded`` feeds the partial aggregate.

    ``claim_chunk`` bounds how many leases one ``select`` pass takes, so
    a fast worker cannot lock the whole remaining grid the moment it
    starts — unclaimed leftovers stay up for grabs and flow back
    through ``wait`` (which returns immediately while anything is
    actionable; it only sleeps ``poll_s`` when every deferred condition
    is genuinely held by a live peer).
    """

    def __init__(self, campaign: Campaign, leases: LeaseManager,
                 partial: Optional["PartialAggregator"] = None,
                 claim_chunk: Optional[int] = None):
        if claim_chunk is not None and claim_chunk < 1:
            raise ValueError(
                f"claim_chunk must be at least 1, got {claim_chunk}")
        self._campaign = campaign
        self._leases = leases
        self._partial = partial
        self.claim_chunk = claim_chunk
        # Incremental tail over the append-only manifest: fingerprints
        # peers have *committed* (recording stored AND manifest line
        # landed) since this queue was created. Settling on this — not
        # on cache-file existence — means a peer killed between its
        # cache store and its manifest append leaves the condition
        # reclaimable instead of silently settled with no manifest
        # line; the reclaimer's simulate is a cache hit, so nothing is
        # computed twice either way. The tail starts at the current end
        # of the manifest: *historical* ok lines must not count as
        # commits, or a manifest-ok-but-cache-pruned condition would
        # never be re-simulated (the startup scan handles history).
        self._committed: set = set()
        try:
            # Align to the last complete line: a torn final line from a
            # killed writer would otherwise glue itself onto the first
            # commit we tail.
            self._manifest_offset = \
                campaign.manifest_path.read_bytes().rfind(b"\n") + 1
        except FileNotFoundError:
            self._manifest_offset = 0

    def _refresh_committed(self) -> None:
        """Read manifest lines appended since the last poll (cheap:
        the file is append-only, so one seek+read of the new suffix;
        binary mode keeps the offset in bytes)."""
        try:
            with open(self._campaign.manifest_path, "rb") as handle:
                handle.seek(self._manifest_offset)
                chunk = handle.read()
        except FileNotFoundError:
            return
        end = chunk.rfind(b"\n")
        if end < 0:
            return  # nothing new, or a torn line still being written
        self._manifest_offset += end + 1
        for line in chunk[:end].decode("utf-8", "replace").splitlines():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("status") in OK_STATUSES:
                self._committed.add(str(record.get("fingerprint")))

    def committed(self, fingerprint: str) -> bool:
        """Has any worker committed this condition (manifest line)?

        Refreshes the incremental manifest tail on a miss, so a
        just-landed peer commit is seen.
        """
        if fingerprint not in self._committed:
            self._refresh_committed()
        return fingerprint in self._committed

    def poisoned(self, fingerprint: str) -> bool:
        """Has a supervisor quarantined this condition?

        A ``quarantine/<fingerprint>`` marker means the condition
        repeatedly killed workers and exhausted its retry budget (see
        :mod:`repro.testbed.supervisor`). :meth:`Campaign.run` settles
        such conditions as ``poisoned`` instead of simulating them.
        """
        return (self._campaign.campaign_dir / QUARANTINE_DIRNAME /
                fingerprint).exists()

    def adopt(self, condition: Condition) -> bool:
        """Claim an orphaned recording (cache hit, no manifest line).

        The startup scan uses this so that of N joiners that all find
        the same unmanifested recording, exactly one appends the
        "cached" manifest line; the rest see False and settle the
        condition as resumed. Release after appending, like any lease.
        """
        fingerprint = condition.fingerprint()
        if self._leases.acquire(fingerprint):
            return True
        self._leases.break_stale(fingerprint)
        return self._leases.acquire(fingerprint)

    def select(
        self, conditions: Sequence[Condition],
    ) -> Tuple[List[Condition], List[Condition]]:
        self._refresh_committed()
        mine: List[Condition] = []
        deferred: List[Condition] = []
        for condition in conditions:
            if self.claim_chunk is not None and \
                    len(mine) >= self.claim_chunk:
                deferred.append(condition)  # not attempted this pass
                continue
            fingerprint = condition.fingerprint()
            if fingerprint in self._committed:
                # A peer committed it since our last look (its lease is
                # already released, so acquire() would "win" and append
                # a duplicate manifest line for a cache hit). Defer:
                # the next wait() settles it as shared.
                deferred.append(condition)
                continue
            if not self._leases.acquire(fingerprint):
                self._leases.break_stale(fingerprint)
                if not self._leases.acquire(fingerprint):
                    deferred.append(condition)
                    continue
            mine.append(condition)
        return mine, deferred

    def release(self, condition: Condition) -> None:
        self._leases.release(condition.fingerprint())

    def recorded(self, condition: Condition, summary=None) -> None:
        if self._partial is not None:
            self._partial.add(condition, summary)

    def _partition(
        self, deferred: Sequence[Condition],
    ) -> Tuple[List[Condition], List[Condition], List[Condition]]:
        self._refresh_committed()
        ttl = self._leases.config.ttl_s
        settled: List[Condition] = []
        reclaimed: List[Condition] = []
        still: List[Condition] = []
        for condition in deferred:
            fingerprint = condition.fingerprint()
            if fingerprint in self._committed:
                settled.append(condition)
                continue
            # One stat per uncommitted condition: a missing lease
            # (beyond someone's chunk, or the holder failed/released
            # without committing) and a stale one are both ours to
            # try; select() races for the actual lease.
            age = self._leases.age_s(fingerprint)
            if age is None or age > ttl:
                reclaimed.append(condition)
            else:
                still.append(condition)
        if reclaimed:
            # Close the snapshot race: a peer that committed *after*
            # our manifest read and released *before* our lease stat
            # looks reclaimable on stale data. Peers always append
            # before releasing, so one fresh read decides for real —
            # anything still uncommitted now is genuinely ours.
            self._refresh_committed()
            confirmed = []
            for condition in reclaimed:
                if condition.fingerprint() in self._committed:
                    settled.append(condition)
                else:
                    confirmed.append(condition)
            reclaimed = confirmed
        return settled, reclaimed, still

    def wait(
        self, deferred: Sequence[Condition],
    ) -> Tuple[List[Condition], List[Condition], List[Condition]]:
        settled, reclaimed, still = self._partition(deferred)
        if settled or reclaimed:
            return settled, reclaimed, still
        time.sleep(self._leases.config.poll_s)
        return self._partition(deferred)


class PartialAggregator:
    """This worker's shard of the grid report, flushed to ``partials/``.

    Accumulates the per-run samples of every condition the worker
    simulated into a :class:`GridReport` and atomically rewrites
    ``partials/<worker>.json`` every ``flush_every`` additions (and on
    :meth:`close`). The file carries the covered fingerprints and the
    ``sim_behaviour`` stamp so :func:`merge_partial_reports` can combine
    shards exactly and refuse stale ones.
    """

    def __init__(self, campaign: Campaign, worker_id: str,
                 report: Optional[GridReport] = None,
                 flush_every: int = 10):
        self._campaign = campaign
        self.worker_id = sanitize_worker_id(worker_id)
        worker_id = self.worker_id
        self.report = report if report is not None else GridReport()
        self.flush_every = max(1, flush_every)
        self.fingerprints: List[str] = []
        self._unflushed = 0
        self.path = campaign.campaign_dir / PARTIALS_DIRNAME / \
            f"{worker_id}.json"

    def add(self, condition: Condition, summary=None) -> None:
        if summary is None:  # caller didn't have the recording in hand
            summary = self._campaign.cache.load(condition.label,
                                                condition.fingerprint())
        if summary is None:
            return
        self.report.add(condition.key, summary)
        self.fingerprints.append(condition.fingerprint())
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        self._unflushed = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(seal_record({
            "worker": self.worker_id,
            "sim_behaviour": harness.SIM_BEHAVIOUR_VERSION,
            "campaign_fingerprint": self._campaign.spec.fingerprint(),
            "fingerprints": self.fingerprints,
            "report": self.report.to_state(),
            # simlint: allow[no-wallclock] -- partial-aggregate provenance stamp for humans, not simulation input
            "at": time.time(),
        }), indent=1)
        tmp = self.path.with_name(
            # simlint: allow[no-ambient-rng] -- per-writer unique temp name for the atomic replace; never feeds simulation bytes
            f".{self.path.name}.{uuid.uuid4().hex[:8]}.tmp")
        tmp.write_text(payload)
        os.replace(tmp, self.path)

    def close(self) -> None:
        """Final flush — but only if this worker recorded anything."""
        if self.fingerprints:
            self.flush()


def join_campaign(
    campaign_dir: Union[str, Path],
    cache_dir: Optional[Union[str, Path]] = None,
    worker: Optional[str] = None,
) -> Campaign:
    """Rebuild a :class:`Campaign` from a campaign directory on disk.

    Reads ``spec.json`` (full axis payloads, see
    :meth:`CampaignSpec.describe`), refuses directories recorded under a
    different ``SIM_BEHAVIOUR_VERSION``, and cross-checks the rebuilt
    spec's fingerprint against the recorded one so a joiner can never
    silently simulate a *different* grid into someone else's manifest.

    ``cache_dir`` defaults to the layout ``Campaign`` creates (two
    levels up from the campaign directory), exactly like
    :meth:`SummaryStore.open`.
    """
    campaign_dir = Path(campaign_dir)
    spec_path = campaign_dir / "spec.json"
    if not spec_path.exists():
        raise FileNotFoundError(
            f"no campaign spec at {spec_path}; create the directory "
            f"first (run the campaign once anywhere with a shared "
            f"--cache-dir, or Campaign.write_spec())")
    data = json.loads(spec_path.read_text())
    recorded_version = data.get("sim_behaviour")
    if recorded_version is not None and \
            int(recorded_version) != harness.SIM_BEHAVIOUR_VERSION:
        raise StaleCampaignError(
            f"campaign dir {campaign_dir} was recorded under "
            f"SIM_BEHAVIOUR_VERSION={recorded_version}, but this "
            f"worker simulates version {harness.SIM_BEHAVIOUR_VERSION}; "
            f"joining would mix incomparable recordings")
    spec = spec_from_json(data)
    recorded_fingerprint = data.get("fingerprint")
    if recorded_fingerprint is not None and \
            spec.fingerprint() != recorded_fingerprint:
        raise ValueError(
            f"rebuilt spec fingerprint {spec.fingerprint()} does not "
            f"match the one recorded in {spec_path} "
            f"({recorded_fingerprint}); the directory was written by an "
            f"incompatible simulator or the spec file was edited")
    if cache_dir is None:
        cache_dir = campaign_dir.parent.parent
    return Campaign(spec, cache_dir=cache_dir, campaign_dir=campaign_dir,
                    worker=worker)


def run_worker(
    campaign: Campaign,
    worker_id: Optional[str] = None,
    lease: Optional[LeaseConfig] = None,
    report: Optional[GridReport] = None,
    flush_every: int = 10,
    claim_chunk: Optional[int] = None,
    processes: Optional[int] = None,
    batch_size: Optional[int] = None,
    failure_policy: str = "retry",
    max_retries: int = 2,
    progress: Optional[ProgressCallback] = None,
    sink: Optional[SummarySink] = None,
) -> CampaignResult:
    """Run one cooperative worker over a (possibly shared) campaign.

    The worker claims conditions through the lease protocol — at most
    ``claim_chunk`` at a time (default: two rounds of its own pool), so
    late joiners still find work — simulates them on its own process
    pool (``processes`` / ``batch_size`` as in :meth:`Campaign.run`),
    appends manifest lines stamped with its worker id, and flushes its
    partial aggregate to ``partials/<worker_id>.json``. Returns this
    worker's view of the run: conditions it simulated plus ``shared``
    results other workers recorded while it waited.

    Use :func:`join_campaign` to build ``campaign`` from a directory on
    disk (the ``repro campaign --join DIR`` path), or pass a live
    :class:`Campaign` sharing cache and campaign dirs with its peers.
    """
    # Chaos runs hand the fault plan to worker subprocesses through the
    # environment; a no-op unless REPRO_FAULT_PLAN is set, and never
    # replaces an injector a test installed explicitly.
    faults.install_from_env()
    if worker_id is None:
        worker_id = campaign.worker or default_worker_id()
    worker_id = sanitize_worker_id(worker_id)
    campaign.worker = worker_id
    campaign.write_spec()
    if claim_chunk is None:
        pool = processes if processes is not None \
            else max(1, (os.cpu_count() or 2) - 1)
        claim_chunk = 2 * max(1, pool)
    leases = LeaseManager(campaign.campaign_dir, worker_id, lease)
    partial = PartialAggregator(campaign, worker_id, report=report,
                                flush_every=flush_every)
    claims = ClaimQueue(campaign, leases, partial,
                        claim_chunk=claim_chunk)
    beat = _HeartbeatThread(leases)
    beat.start()
    try:
        result = campaign.run(
            processes=processes,
            failure_policy=failure_policy,
            max_retries=max_retries,
            progress=progress,
            batch_size=batch_size,
            sink=sink,
            claims=claims,
        )
    finally:
        beat.stop()
        partial.close()
        leases.release_all()
    return result


def merge_partial_reports(
    campaign_dir: Union[str, Path],
    report: Optional[GridReport] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    check_behaviour: bool = True,
) -> GridReport:
    """Merge every worker's ``partials/<worker>.json`` into one report.

    Shards merge through :meth:`GridReport.merge` (exact, order-safe
    Chan et al. moment combination). Conditions no shard covers —
    resumed/cached before the workers started, or simulated by a worker
    that crashed before its final flush — are streamed from the
    :class:`SummaryStore` so the merged report always covers the whole
    recorded grid exactly once.

    ``report`` fixes the expected pivot configuration (axes, metric,
    confidence); shards written under a different configuration raise
    ``ValueError`` rather than silently merging apples into oranges.

    Degraded mode: a shard a crashed worker left torn (invalid JSON or
    checksum mismatch) is skipped with a warning — its conditions are
    topped up from the store like any uncovered condition. Conditions
    the spec expects but *nothing* recorded (crashed before storing,
    or quarantined as poisoned) are marked on the report via
    :meth:`GridReport.mark_coverage`, so renders carry an explicit
    DEGRADED note instead of silently presenting a partial grid.
    """
    campaign_dir = Path(campaign_dir)
    store = SummaryStore.open(campaign_dir, cache_dir=cache_dir,
                              check_behaviour=check_behaviour)
    if report is None:
        report = GridReport()
    covered = set()
    for path in store.partial_paths():
        try:
            state = store.load_partial_state(
                path, check_behaviour=check_behaviour)
        except (ValueError, OSError) as error:
            if isinstance(error, StaleCampaignError):
                raise  # wrong behaviour version is never survivable
            # Torn shard from a crashed worker: its conditions are
            # recovered exactly from the store below.
            logger.warning("skipping unreadable partial %s: %s",
                           path.name, error)
            continue
        shard = GridReport.from_state(state["report"])
        if shard.config() != report.config():
            raise ValueError(
                f"partial {path.name} was aggregated with pivot config "
                f"{shard.config()}, expected {report.config()}; re-run "
                f"the workers with matching report flags or report "
                f"directly from the summaries (drop --from-partials)")
        fingerprints = set(state.get("fingerprints", ()))
        if fingerprints & covered:
            # Two shards claim the same condition (e.g. the cache was
            # pruned and a later worker re-simulated what an earlier
            # partial already aggregated). Merging both would count its
            # samples twice, so the whole shard is skipped — every one
            # of its conditions is topped up from the store below,
            # which is exact.
            continue
        report.merge(shard)
        covered |= fingerprints
    # Only uncovered conditions pay a summary read — on a grid fully
    # covered by shards this loop loads nothing, which is the whole
    # point of --from-partials (O(workers), not O(grid), reads).
    for key in store.keys():
        if key.fingerprint in covered:
            continue
        summary = store.load(key)
        if summary is not None:
            report.add(key, summary)
        covered.add(key.fingerprint)
    # Coverage check against the spec: anything still missing has no
    # recording at all — mark it so the render says so.
    spec_path = campaign_dir / "spec.json"
    if spec_path.exists():
        try:
            spec = spec_from_json(json.loads(spec_path.read_text()))
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            spec = None
        if spec is not None:
            conditions = spec.conditions()
            expected = {condition.fingerprint(): condition.label
                        for condition in conditions}
            missing = sorted(
                label for fingerprint, label in expected.items()
                if fingerprint not in covered)
            report.mark_coverage(len(expected), missing)
            # Shard merge order follows worker timing; the render must
            # not (a recovered chaos run has to be byte-identical to a
            # fault-free one). Sweep order is the campaign's canon.
            report.reorder([condition.key for condition in conditions])
    return report
