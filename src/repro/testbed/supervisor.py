"""Worker supervision for chaos-hardened campaigns.

:func:`run_worker` survives peer crashes passively — stale leases get
reclaimed after a TTL — but nothing *respawns* a dead worker, a hung
host ties up its claims for a full TTL with no operator signal, and a
condition that reliably kills whoever touches it would be retried
forever. The :class:`Supervisor` closes those gaps for the single-host
many-process case (``repro campaign --supervise N``):

* spawns N joiner subprocesses over one campaign directory, each a
  full :func:`~repro.testbed.distributed.run_worker` with its own
  lease heartbeat;
* watches exit codes and lease heartbeats: a clean exit (0/2) retires
  the slot, anything else — including the fault injector's
  :data:`~repro.testbed.faults.CRASH_EXIT_CODE` and a live-but-stalled
  worker whose own leases went stale under it — counts as a crash;
* on a crash, breaks the dead incarnation's leases immediately
  (peers stop waiting out the TTL) and **blames** each fingerprint the
  worker died holding;
* respawns the slot with capped exponential backoff, as incarnation
  ``w0.r1``, ``w0.r2``, ... — fault plans address incarnations, so an
  injected ``crash:w0@1`` fires once rather than crash-looping;
* a fingerprint blamed ``retry_budget`` times is **quarantined**: a
  ``quarantine/<fingerprint>`` marker makes every worker settle it as
  ``poisoned`` (see :meth:`ClaimQueue.poisoned`) instead of letting a
  killer condition eat the whole fleet.

The supervisor is orchestration only: it never reads or writes
simulation state, and a supervised fault-free run leaves a campaign
directory byte-identical to plain ``--join`` workers.

:func:`campaign_status` is the read-only sibling (``repro campaign
--status DIR``): one-shot health report over the same on-disk state —
manifest statuses, lease liveness, quarantine markers, torn-line
warnings — for operators of long multi-host runs.
"""

from __future__ import annotations

import json
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.testbed import faults
from repro.testbed.campaign import pool_context
from repro.testbed.distributed import (
    LeaseConfig,
    join_campaign,
    run_worker,
)
from repro.testbed.store import (
    CLAIMS_DIRNAME,
    OK_STATUSES,
    QUARANTINE_DIRNAME,
    read_jsonl,
)

#: Child exit statuses the supervisor retires (vs respawns).
_CLEAN_EXITS = (0, 2)


def quarantine_dir(campaign_dir: Union[str, Path]) -> Path:
    return Path(campaign_dir) / QUARANTINE_DIRNAME


def quarantined_fingerprints(
        campaign_dir: Union[str, Path]) -> List[str]:
    """Fingerprints with a quarantine marker, sorted."""
    directory = quarantine_dir(campaign_dir)
    if not directory.is_dir():
        return []
    return sorted(p.name for p in directory.iterdir()
                  if not p.name.startswith("."))


def _supervised_entry(
    campaign_dir: str,
    cache_dir: Optional[str],
    worker_id: str,
    plan_text: Optional[str],
    lease_kwargs: Dict[str, float],
    run_kwargs: Dict[str, object],
) -> None:
    """Child-process body of one supervised worker incarnation.

    Installs the fault plan addressed to this incarnation *before* any
    campaign I/O, joins the shared directory and runs one cooperative
    worker. Exit status is the supervisor's liveness protocol: 0 all
    conditions ok, 2 finished with failed/poisoned conditions, 3 the
    worker itself errored; an injected kill exits
    :data:`~repro.testbed.faults.CRASH_EXIT_CODE` via ``os._exit``.
    """
    try:
        if plan_text:
            faults.install(faults.FaultPlan.parse(plan_text),
                           worker=worker_id)
        campaign = join_campaign(campaign_dir, cache_dir=cache_dir,
                                 worker=worker_id)
        result = run_worker(
            campaign,
            worker_id=worker_id,
            lease=LeaseConfig(**lease_kwargs),
            **run_kwargs,
        )
    except Exception:
        traceback.print_exc()
        sys.exit(3)
    sys.exit(0 if result.ok else 2)


@dataclass
class WorkerExit:
    """One terminal child event, as the supervisor classified it."""

    slot: str          # base slot, e.g. "w0"
    worker_id: str     # incarnation, e.g. "w0.r1"
    exit_code: Optional[int]
    stalled: bool = False
    blamed: Tuple[str, ...] = ()

    @property
    def crashed(self) -> bool:
        return self.stalled or self.exit_code not in _CLEAN_EXITS


@dataclass
class SupervisorReport:
    """Structured summary of one supervised campaign run."""

    workers: int
    exits: List[WorkerExit] = field(default_factory=list)
    respawns: int = 0
    quarantined: List[str] = field(default_factory=list)
    gave_up: List[str] = field(default_factory=list)

    @property
    def crashes(self) -> int:
        return sum(1 for e in self.exits if e.crashed)

    @property
    def stalls(self) -> int:
        return sum(1 for e in self.exits if e.stalled)

    @property
    def ok(self) -> bool:
        """All slots retired cleanly and nothing was quarantined."""
        return not self.gave_up and not self.quarantined and all(
            e.exit_code == 0 for e in self.exits if not e.crashed)

    def describe(self) -> str:
        lines = [
            f"supervised {self.workers} worker(s): "
            f"{self.crashes} crash(es) ({self.stalls} stalled), "
            f"{self.respawns} respawn(s), "
            f"{len(self.quarantined)} quarantined condition(s)"]
        for exit_ in self.exits:
            what = "stalled" if exit_.stalled else \
                f"exit {exit_.exit_code}"
            blamed = f", blamed {len(exit_.blamed)} lease(s)" \
                if exit_.blamed else ""
            lines.append(f"  {exit_.worker_id}: {what}{blamed}")
        if self.quarantined:
            lines.append("  poisoned: " + ", ".join(self.quarantined))
        if self.gave_up:
            lines.append("  gave up on slot(s): "
                         + ", ".join(self.gave_up))
        return "\n".join(lines)


class Supervisor:
    """Spawn, watch and respawn N workers over one campaign directory.

    ``retry_budget`` is the per-condition death toll before quarantine;
    ``max_respawns`` caps respawns *per slot* (a backstop against
    pathological crash loops the budget cannot attribute);
    ``backoff_base``/``backoff_max`` shape the respawn delay
    ``min(backoff_max, backoff_base * 2**respawns_so_far)``.
    """

    def __init__(
        self,
        campaign_dir: Union[str, Path],
        workers: int = 2,
        cache_dir: Optional[Union[str, Path]] = None,
        plan: Optional[faults.FaultPlan] = None,
        lease: Optional[LeaseConfig] = None,
        retry_budget: int = 3,
        max_respawns: int = 8,
        backoff_base: float = 0.25,
        backoff_max: float = 5.0,
        run_kwargs: Optional[Dict[str, object]] = None,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if retry_budget < 1:
            raise ValueError(
                f"retry_budget must be >= 1, got {retry_budget}")
        self.campaign_dir = Path(campaign_dir)
        self.workers = workers
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.plan = plan if plan is not None else faults.FaultPlan()
        self.lease = lease if lease is not None else LeaseConfig()
        self.retry_budget = retry_budget
        self.max_respawns = max_respawns
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.run_kwargs = dict(run_kwargs or {})
        self._blame: Dict[str, int] = {}

    # -- lease forensics -----------------------------------------------------

    def _claims_dir(self) -> Path:
        return self.campaign_dir / CLAIMS_DIRNAME

    def _blame_leases(self, worker_id: str,
                      pid: Optional[int]) -> List[str]:
        """Break every lease a dead incarnation still holds.

        Matching is on the lease *body* (worker id + pid), never the
        path: a lease the dead worker lost to a reclaimer must not be
        touched. Rename-first keeps the inspect-then-delete atomic —
        the same discipline as ``LeaseManager.release`` — and a lease
        that turns out to belong to someone else is restored with a
        no-clobber link. Returns the blamed fingerprints.
        """
        claims = self._claims_dir()
        if not claims.is_dir():
            return []
        blamed: List[str] = []
        for path in sorted(claims.glob("*.lease")):
            tombstone = path.with_name(
                f"{path.name}.blame-{worker_id}-{os.getpid()}")
            try:
                os.rename(path, tombstone)
            except FileNotFoundError:
                continue  # released or reclaimed meanwhile
            try:
                body = json.loads(tombstone.read_text())
            except (OSError, json.JSONDecodeError):
                body = {}
            ours = body.get("worker") == worker_id and (
                pid is None or body.get("pid") == pid)
            if ours:
                fingerprint = path.name[:-len(".lease")]
                blamed.append(fingerprint)
                self._blame[fingerprint] = \
                    self._blame.get(fingerprint, 0) + 1
                try:
                    tombstone.unlink()
                except FileNotFoundError:
                    pass
            else:
                try:
                    os.link(tombstone, path)
                except OSError:
                    pass
                try:
                    tombstone.unlink()
                except FileNotFoundError:
                    pass
        return blamed

    def _quarantine_over_budget(self) -> List[str]:
        """Write markers for fingerprints whose blame hit the budget."""
        fresh: List[str] = []
        directory = quarantine_dir(self.campaign_dir)
        for fingerprint, deaths in sorted(self._blame.items()):
            if deaths < self.retry_budget:
                continue
            directory.mkdir(parents=True, exist_ok=True)
            marker = directory / fingerprint
            if marker.exists():
                continue
            marker.write_text(json.dumps({
                "fingerprint": fingerprint,
                "deaths": deaths,
                "retry_budget": self.retry_budget,
            }, indent=1))
            fresh.append(fingerprint)
        return fresh

    def _worker_stalled(self, worker_id: str) -> bool:
        """Is a live child's own lease older than the TTL?

        A running process whose heartbeats stopped (hung host, stalled
        I/O, an injected ``stall`` fault) looks exactly like a crash to
        its peers; the supervisor kills it so the slot can respawn
        instead of squatting forever.
        """
        claims = self._claims_dir()
        if not claims.is_dir():
            return False
        for path in claims.glob("*.lease"):
            try:
                body = json.loads(path.read_text())
                # simlint: allow[no-wallclock] -- lease staleness is real elapsed time since the holder's last heartbeat
                age = time.time() - path.stat().st_mtime
            except (OSError, json.JSONDecodeError):
                continue
            if body.get("worker") == worker_id and \
                    age > self.lease.ttl_s:
                return True
        return False

    # -- the supervision loop ------------------------------------------------

    def _spawn(self, slot: str, respawns: int):
        worker_id = slot if respawns == 0 else f"{slot}.r{respawns}"
        plan_text = self.plan.describe() if self.plan else None
        process = pool_context().Process(
            target=_supervised_entry,
            name=f"repro-worker-{worker_id}",
            args=(str(self.campaign_dir), self.cache_dir, worker_id,
                  plan_text,
                  {"ttl_s": self.lease.ttl_s,
                   "heartbeat_s": self.lease.heartbeat_s,
                   "poll_s": self.lease.poll_s},
                  self.run_kwargs),
        )
        process.start()
        return worker_id, process

    def run(self) -> SupervisorReport:
        """Supervise until every slot retires (or is given up on)."""
        report = SupervisorReport(workers=self.workers)
        # slot -> (worker_id, process, respawns so far)
        live: Dict[str, Tuple[str, object, int]] = {}
        for index in range(self.workers):
            slot = f"w{index}"
            worker_id, process = self._spawn(slot, 0)
            live[slot] = (worker_id, process, 0)
        while live:
            time.sleep(self.lease.poll_s)
            for slot in list(live):
                worker_id, process, respawns = live[slot]
                stalled = False
                if process.is_alive():
                    if not self._worker_stalled(worker_id):
                        continue
                    stalled = True
                    process.terminate()
                    process.join(timeout=self.lease.ttl_s)
                    if process.is_alive():
                        process.kill()
                        process.join()
                else:
                    process.join()
                del live[slot]
                exit_code = process.exitcode
                exit_ = WorkerExit(slot=slot, worker_id=worker_id,
                                   exit_code=exit_code, stalled=stalled)
                if not exit_.crashed:
                    report.exits.append(exit_)
                    continue
                exit_.blamed = tuple(
                    self._blame_leases(worker_id, process.pid))
                report.exits.append(exit_)
                report.quarantined.extend(
                    self._quarantine_over_budget())
                if respawns >= self.max_respawns:
                    report.gave_up.append(slot)
                    continue
                delay = min(self.backoff_max,
                            self.backoff_base * (2 ** respawns))
                time.sleep(delay)
                report.respawns += 1
                worker_id, process = self._spawn(slot, respawns + 1)
                live[slot] = (worker_id, process, respawns + 1)
        report.quarantined = sorted(set(report.quarantined))
        return report


# -- one-shot health report ---------------------------------------------------


def campaign_status(
    campaign_dir: Union[str, Path],
    ttl_s: float = 60.0,
) -> Dict[str, object]:
    """One-shot health report over a campaign directory.

    Read-only: suitable against a live multi-host run. Returns a JSON-
    friendly document with condition counts (done / failed / poisoned /
    pending against the spec), lease state (held / stale), per-worker
    liveness inferred from lease heartbeats, quarantine markers and the
    number of torn manifest lines skipped.
    """
    campaign_dir = Path(campaign_dir)
    status: Dict[str, object] = {"campaign_dir": str(campaign_dir)}

    expected: Optional[int] = None
    spec_path = campaign_dir / "spec.json"
    if spec_path.exists():
        try:
            # spec.json records its grid size (CampaignSpec.describe).
            expected = int(
                json.loads(spec_path.read_text())["conditions"])
        except (KeyError, ValueError, TypeError, json.JSONDecodeError):
            expected = None

    torn: List[int] = []
    latest: Dict[str, str] = {}
    manifest = campaign_dir / "manifest.jsonl"
    if manifest.exists():
        for record in read_jsonl(
                manifest,
                on_skip=lambda number, reason: torn.append(number)):
            fingerprint = record.get("fingerprint")
            if fingerprint is not None:
                latest[str(fingerprint)] = str(record.get("status"))

    counts: Dict[str, int] = {}
    for value in latest.values():
        counts[value] = counts.get(value, 0) + 1
    done = sum(count for key, count in counts.items()
               if key in OK_STATUSES)
    status["conditions"] = {
        "expected": expected,
        "done": done,
        "statuses": counts,
        "pending": None if expected is None else max(
            0, expected - len(latest)),
    }
    status["torn_manifest_lines"] = len(torn)

    leases: List[Dict[str, object]] = []
    workers: Dict[str, Dict[str, object]] = {}
    claims = campaign_dir / CLAIMS_DIRNAME
    if claims.is_dir():
        for path in sorted(claims.glob("*.lease")):
            try:
                body = json.loads(path.read_text())
                # simlint: allow[no-wallclock] -- lease staleness is real elapsed time since the holder's last heartbeat
                age = time.time() - path.stat().st_mtime
            except (OSError, json.JSONDecodeError):
                continue
            worker = str(body.get("worker", "?"))
            stale = age > ttl_s
            leases.append({
                "fingerprint": path.name[:-len(".lease")],
                "worker": worker,
                "age_s": round(age, 3),
                "stale": stale,
            })
            seen = workers.get(worker)
            if seen is None or age < float(seen["freshest_age_s"]):
                workers[worker] = {
                    "freshest_age_s": round(age, 3),
                    "live": not stale,
                    "pid": body.get("pid"),
                    "host": body.get("host"),
                }
    status["leases"] = {
        "held": sum(1 for entry in leases if not entry["stale"]),
        "stale": sum(1 for entry in leases if entry["stale"]),
        "entries": leases,
    }
    status["workers"] = workers
    status["quarantined"] = quarantined_fingerprints(campaign_dir)
    return status


def render_status(status: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`campaign_status` output."""
    conditions = status.get("conditions", {})
    leases = status.get("leases", {})
    lines = [f"campaign {status.get('campaign_dir')}"]
    expected = conditions.get("expected")
    done = conditions.get("done", 0)
    of = f"/{expected}" if expected is not None else ""
    lines.append(f"  conditions: {done}{of} done")
    statuses = conditions.get("statuses") or {}
    for key in sorted(statuses):
        lines.append(f"    {key}: {statuses[key]}")
    pending = conditions.get("pending")
    if pending:
        lines.append(f"    (pending: {pending})")
    lines.append(f"  leases: {leases.get('held', 0)} held, "
                 f"{leases.get('stale', 0)} stale")
    workers = status.get("workers") or {}
    for worker in sorted(workers):
        entry = workers[worker]
        state = "live" if entry.get("live") else "STALE"
        lines.append(
            f"    {worker}: {state} "
            f"(last heartbeat {entry.get('freshest_age_s')}s ago, "
            f"pid {entry.get('pid')}, host {entry.get('host')})")
    quarantined = status.get("quarantined") or []
    if quarantined:
        lines.append(f"  quarantined ({len(quarantined)}): "
                     + ", ".join(quarantined))
    torn = status.get("torn_manifest_lines", 0)
    if torn:
        lines.append(f"  WARNING: {torn} torn manifest line(s) skipped")
    return "\n".join(lines)
