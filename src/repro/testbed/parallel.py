"""Parallel condition sweeps (thin wrapper over the campaign engine).

A full paper-scale sweep is 36 x 4 x 5 = 720 conditions x 31 runs of
packet-level simulation; page loads are independent, so the sweep
parallelises perfectly across processes. :func:`parallel_sweep` builds a
single-seed :class:`~repro.testbed.campaign.CampaignSpec` from a
Testbed's parameters and runs it through the resumable campaign
orchestrator, so a parallel warm-up composes with every other part of
the library: workers write into the same content-addressed disk cache
the sequential Testbed reads, an interrupted sweep resumes where it
stopped, and results are byte-identical to :meth:`Testbed.sweep`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.testbed.campaign import Campaign, CampaignSpec, ProgressCallback
from repro.testbed.harness import (
    NetworkLike,
    RecordingSummary,
    StackLike,
    Testbed,
)


def parallel_sweep(
    testbed: Testbed,
    sites: Optional[Sequence[str]] = None,
    networks: Optional[Sequence[NetworkLike]] = None,
    stacks: Optional[Sequence[StackLike]] = None,
    processes: Optional[int] = None,
    failure_policy: str = "retry",
    progress: Optional[ProgressCallback] = None,
    batch_size: Optional[int] = None,
) -> List[RecordingSummary]:
    """Record the grid using a process pool, then return the summaries.

    Results are identical to :meth:`Testbed.sweep` (workers share the
    disk cache); only wall-clock time differs. Worker failures follow
    ``failure_policy`` (retry/skip/abort) and ``batch_size`` tunes how
    many conditions ride in one worker task (see :meth:`Campaign.run`).
    """
    spec = CampaignSpec(
        sites=sites, networks=networks, stacks=stacks,
        seeds=[testbed.seed], runs=testbed.runs,
        corpus_seed=testbed.corpus_seed, timeout=testbed.timeout,
        selection_metric=testbed.selection_metric,
        name="parallel-sweep",
    )
    campaign = Campaign(spec, cache_dir=testbed.cache_dir)
    campaign.run(processes=processes, failure_policy=failure_policy,
                 progress=progress, batch_size=batch_size)

    # Collect through the caller's testbed (reads the now-warm cache).
    return [
        testbed.recording(c.website, c.profile, c.stack)
        for c in spec.conditions()
    ]
