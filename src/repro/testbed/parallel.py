"""Parallel condition sweeps.

A full paper-scale sweep is 36 x 4 x 5 = 720 conditions x 31 runs of
packet-level simulation; page loads are independent, so the sweep
parallelises perfectly across processes. Workers write into the same
disk cache the sequential Testbed reads, so a parallel warm-up composes
with every other part of the library.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from repro.netem.profiles import NETWORKS
from repro.testbed.harness import RecordingSummary, Testbed
from repro.transport.config import STACKS
from repro.web.corpus import CORPUS_SITE_NAMES

_WORKER_TESTBED: Optional[Testbed] = None


def _init_worker(corpus_seed: int, runs: int, seed: int,
                 cache_dir: Optional[str], timeout: float,
                 selection_metric: str) -> None:
    global _WORKER_TESTBED
    _WORKER_TESTBED = Testbed(
        corpus_seed=corpus_seed, runs=runs, seed=seed,
        cache_dir=cache_dir, timeout=timeout,
        selection_metric=selection_metric,
    )


def _record_condition(condition: Tuple[str, str, str]) -> Tuple[str, str, str]:
    assert _WORKER_TESTBED is not None
    _WORKER_TESTBED.recording(*condition)
    return condition


def parallel_sweep(
    testbed: Testbed,
    sites: Optional[Sequence[str]] = None,
    networks: Optional[Sequence[str]] = None,
    stacks: Optional[Sequence[str]] = None,
    processes: Optional[int] = None,
) -> List[RecordingSummary]:
    """Record the grid using a process pool, then return the summaries.

    Results are identical to :meth:`Testbed.sweep` (workers share the
    disk cache); only wall-clock time differs.
    """
    sites = list(sites) if sites is not None else list(CORPUS_SITE_NAMES)
    networks = list(networks) if networks is not None else \
        [p.name for p in NETWORKS]
    stacks = list(stacks) if stacks is not None else \
        [s.name for s in STACKS]
    conditions = [(site, network, stack)
                  for site in sites
                  for network in networks
                  for stack in stacks]

    if processes is None:
        processes = max(1, (os.cpu_count() or 2) - 1)

    if processes > 1 and len(conditions) > 1:
        cache_dir = str(testbed._cache_dir)
        with multiprocessing.get_context("spawn").Pool(
            processes=min(processes, len(conditions)),
            initializer=_init_worker,
            initargs=(testbed.corpus_seed, testbed.runs, testbed.seed,
                      cache_dir, testbed.timeout,
                      testbed.selection_metric),
        ) as pool:
            pool.map(_record_condition, conditions)

    # Collect through the caller's testbed (reads the now-warm cache).
    return [testbed.recording(*condition) for condition in conditions]
