"""Testbed orchestration: condition sweeps with caching.

Mirrors the paper's measurement campaign: every (website, network, stack)
condition is recorded ``runs`` times, a typical run is selected, and the
result is summarised for the user studies and analyses. Sweeps are cached
on disk because the full 36 x 4 x 5 grid is tens of thousands of page
loads.
"""

from repro.testbed.harness import RecordingSummary, Testbed

__all__ = ["Testbed", "RecordingSummary"]
