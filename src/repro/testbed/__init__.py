"""Testbed orchestration: condition sweeps and campaigns with caching.

Mirrors the paper's measurement campaign: every (website, network, stack)
condition is recorded ``runs`` times, a typical run is selected, and the
result is summarised for the user studies and analyses. Sweeps are cached
on disk because the full 36 x 4 x 5 grid is tens of thousands of page
loads.

Three layers:

* :class:`Testbed` — sequential sweeps with a content-addressed disk
  cache (cache keys hash the *full* condition parameters, so changing
  any parameter can never return a stale recording).
* :func:`parallel_sweep` — the same grid over a process pool.
* :class:`Campaign` / :class:`CampaignSpec` — declarative, resumable
  campaigns over arbitrary axes (sites × networks × stacks × seeds,
  including derived loss-sweep and trace-driven network profiles), with
  per-condition completion manifests, live progress and a worker
  failure policy.
* :class:`SummaryStore` / :class:`ConditionKey` — streaming access to a
  campaign's recordings: lazy ``(key, summary)`` iteration, live (via
  :meth:`Campaign.summary_store` or the ``sink`` argument of
  :meth:`Campaign.run`) or post-hoc from a campaign directory on disk.
* :mod:`repro.testbed.distributed` — cooperative multi-host execution:
  lease-based claims let any number of :func:`run_worker` processes
  (``repro campaign --join DIR``) share one campaign directory without
  double-simulating, each flushing a mergeable partial aggregate.
"""

from repro.testbed.campaign import (
    Campaign,
    CampaignError,
    CampaignResult,
    CampaignSpec,
    Condition,
    ConditionResult,
    Progress,
    ProgressPrinter,
    run_campaign_spec,
    spec_from_json,
)
from repro.testbed.distributed import (
    LeaseConfig,
    LeaseManager,
    default_worker_id,
    join_campaign,
    merge_partial_reports,
    run_worker,
)
from repro.testbed.harness import (
    RecordingCache,
    RecordingSummary,
    Testbed,
    condition_fingerprint,
)
from repro.testbed.parallel import parallel_sweep
from repro.testbed.store import (
    CONDITION_AXES,
    ConditionKey,
    StaleCampaignError,
    SummaryStore,
)

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignResult",
    "CampaignSpec",
    "Condition",
    "ConditionKey",
    "ConditionResult",
    "CONDITION_AXES",
    "Progress",
    "ProgressPrinter",
    "RecordingCache",
    "RecordingSummary",
    "LeaseConfig",
    "LeaseManager",
    "StaleCampaignError",
    "SummaryStore",
    "Testbed",
    "condition_fingerprint",
    "default_worker_id",
    "join_campaign",
    "merge_partial_reports",
    "parallel_sweep",
    "run_campaign_spec",
    "run_worker",
    "spec_from_json",
]
