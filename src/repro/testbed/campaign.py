"""Declarative, resumable measurement campaigns.

The paper's campaign is a fixed 36 × 4 × 5 grid; this module generalises
it to an arbitrary axis product and makes running it at scale boring:

* :class:`CampaignSpec` — a declarative description of the sweep:
  sites × networks × stacks × seeds, each axis accepting names or
  arbitrary profile/stack objects (loss sweeps via
  :func:`~repro.netem.profiles.with_loss`, trace-driven profiles via
  :func:`~repro.netem.profiles.trace_profile`, custom stacks, ...).
* :class:`Condition` — one fully-parameterised cell of that product,
  identified by a content-hash fingerprint (see
  :func:`~repro.testbed.harness.condition_fingerprint`).
* :class:`Campaign` — executes a spec over a work-queue process pool,
  appending one line per finished condition to a ``manifest.jsonl``.
  A killed campaign relaunched with the same spec resumes exactly where
  it stopped: manifest- and cache-hits are never re-simulated. Worker
  failures follow a policy (``retry`` / ``skip`` / ``abort``) instead of
  killing the whole sweep, and every completed condition is reported to
  a progress callback as it lands.

Results are byte-identical to a sequential :meth:`Testbed.sweep` over
the same parameters: both funnel through
:func:`~repro.testbed.harness.produce_summary` and share the
content-addressed disk cache.

Results stream out rather than batch-load: :meth:`Campaign.run` feeds an
optional ``sink`` with ``(condition, summary)`` pairs as conditions
settle, and :meth:`Campaign.iter_summaries` /
:meth:`Campaign.summary_store` iterate recordings lazily (the store also
reopens a finished campaign directory post-hoc — see
:mod:`repro.testbed.store`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import sys
import time
import traceback
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.netem.middlebox import (
    NO_MIDDLEBOXES,
    MiddleboxChainSpec,
    MiddleboxesLike,
    chain_from_json,
    resolve_middleboxes,
)
from repro.netem.path import PATH_MODES
from repro.netem.profiles import (
    NETWORKS,
    NetworkProfile,
    SegmentedProfile,
    TraceNetworkProfile,
)
from repro.testbed import faults, harness
from repro.testbed.harness import (
    NetworkLike,
    RecordingCache,
    RecordingSummary,
    StackLike,
    condition_fingerprint,
    condition_label,
    default_cache_dir,
    produce_summary,
    resolve_network,
    resolve_stack,
)
from repro.testbed.store import (
    OK_STATUSES,
    ConditionKey,
    SummaryStore,
    append_record,
    read_jsonl,
)
from repro.transport.config import STACKS, StackConfig
from repro.web.corpus import CORPUS_SITE_NAMES

#: Worker failure policies.
FAILURE_POLICIES = ("retry", "skip", "abort")

# OK_STATUSES (statuses that count as successfully recorded) is owned
# by repro.testbed.store, which reads them back out of manifests.


class CampaignError(RuntimeError):
    """A condition failed under the ``abort`` failure policy."""


@dataclass(frozen=True)
class Condition:
    """One fully-parameterised cell of a campaign's axis product."""

    website: str
    profile: NetworkProfile
    stack: StackConfig
    seed: int
    runs: int
    corpus_seed: int
    timeout: float
    selection_metric: str
    path: str = "direct"
    middleboxes: MiddleboxChainSpec = NO_MIDDLEBOXES

    @property
    def label(self) -> str:
        """Filesystem-safe human-readable identifier."""
        return condition_label(self.website, self.profile.name,
                               self.stack.name, self.seed, path=self.path,
                               middleboxes=self.middleboxes.name
                               if self.middleboxes.boxes else "none")

    def fingerprint(self) -> str:
        """Content hash over every output-determining parameter."""
        return condition_fingerprint(
            self.website, self.profile, self.stack,
            corpus_seed=self.corpus_seed, seed=self.seed, runs=self.runs,
            timeout=self.timeout, selection_metric=self.selection_metric,
            path=self.path, middleboxes=self.middleboxes,
        )

    @property
    def key(self) -> ConditionKey:
        """Light axis/identity key used by the streaming results path."""
        return ConditionKey(
            website=self.website, network=self.profile.name,
            stack=self.stack.name, seed=self.seed,
            label=self.label, fingerprint=self.fingerprint(),
            path=self.path,
            middleboxes=self.middleboxes.name
            if self.middleboxes.boxes else "none",
        )

    def produce(self) -> RecordingSummary:
        """Simulate this condition (no caching)."""
        return produce_summary(
            self.website, self.profile, self.stack,
            corpus_seed=self.corpus_seed, seed=self.seed, runs=self.runs,
            timeout=self.timeout, selection_metric=self.selection_metric,
            path=self.path, middleboxes=self.middleboxes,
        )


def _splittable(profile: NetworkProfile) -> bool:
    """True when ``profile`` can host split-connection proxies."""
    return isinstance(profile, SegmentedProfile) \
        and len(profile.segments) >= 2


@dataclass
class CampaignSpec:
    """Declarative description of a sweep: an arbitrary axis product.

    ``networks`` and ``stacks`` accept Table 1/2 names or arbitrary
    :class:`NetworkProfile` / :class:`StackConfig` objects; ``seeds``
    adds a repetition axis beyond the paper grid. Defaults reproduce the
    paper's 36 × 4 × 5 grid with one seed.
    """

    sites: Optional[Sequence[str]] = None
    networks: Optional[Sequence[NetworkLike]] = None
    stacks: Optional[Sequence[StackLike]] = None
    seeds: Sequence[int] = (0,)
    runs: int = 7
    corpus_seed: int = 0
    timeout: float = 180.0
    selection_metric: str = "PLT"
    name: str = "campaign"
    paths: Sequence[str] = ("direct",)
    middleboxes: Sequence[MiddleboxesLike] = ("none",)

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError("runs must be at least 1")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if not self.paths:
            raise ValueError("need at least one path mode")
        for path in self.paths:
            if path not in PATH_MODES:
                raise ValueError(
                    f"unknown path mode {path!r}; "
                    f"expected one of {PATH_MODES}")
        if not self.middleboxes:
            raise ValueError(
                "need at least one middlebox chain (use \"none\")")
        self.sites = list(self.sites) if self.sites is not None \
            else list(CORPUS_SITE_NAMES)
        self.networks = [resolve_network(n) for n in self.networks] \
            if self.networks is not None else list(NETWORKS)
        self.stacks = [resolve_stack(s) for s in self.stacks] \
            if self.stacks is not None else list(STACKS)
        self.seeds = list(self.seeds)
        self.paths = list(self.paths)
        self.middleboxes = [resolve_middleboxes(m)
                            for m in self.middleboxes]
        if "split" in self.paths and \
                not any(_splittable(p) for p in self.networks):
            raise ValueError(
                "path=split needs at least one multi-segment network "
                "(a SegmentedProfile with >= 2 segments), e.g. SAT+LAN")

    def conditions(self) -> List[Condition]:
        """The axis product, in deterministic sweep order.

        ``path=split`` applies only to networks that can host a proxy
        (multi-segment profiles); single-segment networks in the same
        grid sweep ``direct`` alone, so e.g. ``networks=[DSL, SAT_LAN],
        paths=["direct", "split"]`` yields three path/network combos,
        not four.
        """
        return [
            Condition(
                website=site, profile=profile, stack=stack, seed=seed,
                runs=self.runs, corpus_seed=self.corpus_seed,
                timeout=self.timeout,
                selection_metric=self.selection_metric,
                path=path,
                middleboxes=chain,
            )
            for site in self.sites
            for profile in self.networks
            for stack in self.stacks
            for path in self.paths
            if path != "split" or _splittable(profile)
            for chain in self.middleboxes
            for seed in self.seeds
        ]

    def fingerprint(self) -> str:
        """Content hash of the whole grid (identifies a resumable run)."""
        digest = hashlib.sha256()
        for condition in self.conditions():
            digest.update(condition.fingerprint().encode("ascii"))
        return digest.hexdigest()[:16]

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable summary written next to the manifest.

        The ``axes`` section carries the *full* network/stack payloads
        (every dataclass field, incl. derived loss-sweep and
        trace-driven profiles), so a worker on another host can rebuild
        the exact spec from ``spec.json`` alone — see
        :func:`spec_from_json` and ``repro campaign --join``.
        """
        return {
            "name": self.name,
            "sites": list(self.sites),
            "networks": [p.name for p in self.networks],
            "stacks": [s.name for s in self.stacks],
            "seeds": list(self.seeds),
            "paths": list(self.paths),
            "middleboxes": [chain.name for chain in self.middleboxes],
            "runs": self.runs,
            "corpus_seed": self.corpus_seed,
            "timeout": self.timeout,
            "selection_metric": self.selection_metric,
            "conditions": len(self.conditions()),
            "fingerprint": self.fingerprint(),
            # Recorded so a dir from an older simulator can be told
            # apart post-hoc (SummaryStore.open refuses stale dirs).
            "sim_behaviour": harness.SIM_BEHAVIOUR_VERSION,
            "axes": {
                "networks": [
                    dict(dataclasses.asdict(profile),
                         type=type(profile).__name__)
                    for profile in self.networks
                ],
                "stacks": [dataclasses.asdict(stack)
                           for stack in self.stacks],
                "middleboxes": [chain.describe()
                                for chain in self.middleboxes],
            },
        }


def _profile_from_json(data: Dict[str, object]) -> NetworkProfile:
    fields = {k: v for k, v in data.items() if k != "type"}
    if data.get("type") == "SegmentedProfile":
        # Nested segment payloads carry no "type" marker
        # (dataclasses.asdict flattens them); a trace-driven segment is
        # identified by its non-empty downlink trace.
        fields["segments"] = tuple(
            _profile_from_json(dict(
                entry,
                type="TraceNetworkProfile"
                if entry.get("downlink_trace_ms") else "NetworkProfile"))
            for entry in fields["segments"])
        return SegmentedProfile(**fields)  # type: ignore[arg-type]
    fields.pop("segments", None)
    if data.get("type") == "TraceNetworkProfile":
        fields["downlink_trace_ms"] = tuple(fields["downlink_trace_ms"])
        return TraceNetworkProfile(**fields)  # type: ignore[arg-type]
    fields.pop("downlink_trace_ms", None)
    return NetworkProfile(**fields)  # type: ignore[arg-type]


def spec_from_json(data: Dict[str, object]) -> CampaignSpec:
    """Rebuild a :class:`CampaignSpec` from ``describe()`` output.

    Prefers the full ``axes`` payloads (exact reconstruction of derived
    loss-sweep and trace-driven profiles); ``spec.json`` files written
    before the payloads existed fall back to resolving the recorded
    Table 1/2 names, and raise if an axis entry was a derived object
    whose name cannot be resolved.
    """
    middleboxes: List[MiddleboxesLike] = [
        str(name) for name in data.get("middleboxes", ["none"])]
    axes = data.get("axes")
    if axes:
        networks: List[NetworkLike] = [
            _profile_from_json(entry) for entry in axes["networks"]]
        stacks: List[StackLike] = [
            StackConfig(**entry) for entry in axes["stacks"]]
        if "middleboxes" in axes:
            # Full chain payloads reconstruct custom (non-preset)
            # chains exactly; older spec.json files fall back to the
            # preset names above.
            middleboxes = [chain_from_json(entry)
                           for entry in axes["middleboxes"]]
    else:
        try:
            networks = [resolve_network(name)
                        for name in data["networks"]]
            stacks = [resolve_stack(name) for name in data["stacks"]]
        except KeyError as error:
            raise ValueError(
                f"spec.json predates full axis payloads and names a "
                f"derived axis value that cannot be resolved: "
                f"{error.args[0]}") from None
    return CampaignSpec(
        sites=list(data["sites"]),
        networks=networks,
        stacks=stacks,
        seeds=[int(seed) for seed in data["seeds"]],
        paths=[str(path) for path in data.get("paths", ["direct"])],
        middleboxes=middleboxes,
        runs=int(data["runs"]),
        corpus_seed=int(data["corpus_seed"]),
        timeout=float(data["timeout"]),
        selection_metric=str(data["selection_metric"]),
        name=str(data["name"]),
    )


@dataclass
class ConditionResult:
    """Outcome of one condition within a campaign run.

    ``status`` is one of ``simulated`` (this worker ran it), ``cached``
    (found in the shared recording cache), ``resumed`` (manifest said it
    was already done), ``shared`` (a cooperating distributed worker
    recorded it while this run waited — see
    :mod:`repro.testbed.distributed`), ``failed``, or ``poisoned``
    (quarantined by a supervisor after repeatedly killing workers —
    see :mod:`repro.testbed.supervisor`; never retried, never ``ok``).
    """

    condition: Condition
    status: str  # simulated | cached | resumed | shared | failed | poisoned
    attempts: int = 1
    duration_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in OK_STATUSES


@dataclass
class Progress:
    """One progress tick, delivered as each condition settles."""

    done: int
    total: int
    result: ConditionResult
    elapsed_s: float

    @property
    def eta_s(self) -> float:
        """Crude remaining-time estimate from the mean pace so far."""
        if self.done == 0:
            return float("inf")
        return self.elapsed_s / self.done * (self.total - self.done)


ProgressCallback = Callable[[Progress], None]

#: Streaming results consumer: called with each successfully recorded
#: condition and its summary as the condition settles.
SummarySink = Callable[["Condition", RecordingSummary], None]


@dataclass
class CampaignResult:
    """Everything a finished (or aborted) campaign run produced."""

    spec: CampaignSpec
    results: List[ConditionResult]
    manifest_path: Path
    duration_s: float

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for result in self.results:
            out[result.status] = out.get(result.status, 0) + 1
        return out

    @property
    def failed(self) -> List[ConditionResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failed


# -- worker plumbing ---------------------------------------------------------

_WORKER_CACHE: Optional[RecordingCache] = None


def _init_worker(cache_dir: str) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = RecordingCache(cache_dir)


def _run_condition(
    payload: Tuple[int, Condition],
) -> Tuple[int, Optional[str], float]:
    """Record one condition into the shared cache (worker side).

    Returns ``(index, error_traceback_or_None, duration_s)``; failures
    are reported as data, not raised, so one bad condition cannot kill
    the pool.
    """
    index, condition = payload
    assert _WORKER_CACHE is not None
    # simlint: allow[no-wallclock] -- wall-clock duration of the worker task, reported as orchestration telemetry only
    start = time.perf_counter()
    try:
        fingerprint = condition.fingerprint()
        if _WORKER_CACHE.load(condition.label, fingerprint) is None:
            summary = condition.produce()
            _WORKER_CACHE.store(condition.label, fingerprint, summary)
        # simlint: allow[no-wallclock] -- task duration telemetry, never feeds simulation state
        return index, None, time.perf_counter() - start
    except Exception:
        # simlint: allow[no-wallclock] -- task duration telemetry, never feeds simulation state
        return index, traceback.format_exc(), time.perf_counter() - start


def _run_condition_batch(
    batch: List[Tuple[int, Condition]],
) -> List[Tuple[int, Optional[str], float]]:
    """Record a batch of conditions in one worker task.

    Batching amortises task dispatch and lets one long-lived worker
    process churn through many conditions without interpreter or import
    startup in between; each condition still settles (and fails)
    independently.
    """
    return [_run_condition(payload) for payload in batch]


def pool_context() -> multiprocessing.context.BaseContext:
    """Fork where the platform supports it: workers start in
    milliseconds instead of re-importing the interpreter + library
    (spawn cost dominates small campaigns)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class Campaign:
    """Executes a :class:`CampaignSpec` resumably over a process pool.

    The campaign directory (derived from the spec's content fingerprint,
    so "same spec" means "same directory") holds ``spec.json`` plus an
    append-only ``manifest.jsonl`` with one line per settled condition.
    On start the manifest and the shared recording cache are consulted
    first; only genuinely missing conditions are simulated.
    """

    #: Not a pytest test class despite running campaigns.
    __test__ = False

    def __init__(
        self,
        spec: CampaignSpec,
        cache_dir: Optional[Union[str, Path]] = None,
        campaign_dir: Optional[Union[str, Path]] = None,
        worker: Optional[str] = None,
    ):
        self.spec = spec
        if cache_dir is None:
            cache_dir = default_cache_dir()
        self.cache = RecordingCache(cache_dir)
        if campaign_dir is None:
            safe_name = "".join(
                c if c.isalnum() or c in "._-" else "-" for c in spec.name)
            campaign_dir = Path(cache_dir) / "campaigns" / \
                f"{safe_name[:40]}-{spec.fingerprint()}"
        self.campaign_dir = Path(campaign_dir)
        self.manifest_path = self.campaign_dir / "manifest.jsonl"
        #: Cooperative-worker identity stamped on manifest lines this
        #: instance appends (None for ordinary single-host runs).
        self.worker = worker

    # -- manifest ------------------------------------------------------------

    def _load_manifest(self) -> Dict[str, Dict[str, object]]:
        """fingerprint → last manifest record (later lines win).

        Torn and checksum-failed lines are skipped with a warning (see
        :func:`repro.testbed.store.read_jsonl`); their conditions fall
        back to the cache check below, so a line a killed writer tore
        is re-settled on resume instead of crashing anything.
        """
        records: Dict[str, Dict[str, object]] = {}
        if not self.manifest_path.exists():
            return records
        for record in read_jsonl(self.manifest_path):
            records[str(record.get("fingerprint"))] = record
        return records

    def _append_manifest(self, result: ConditionResult) -> None:
        self.campaign_dir.mkdir(parents=True, exist_ok=True)
        condition = result.condition
        record = {
            "fingerprint": condition.fingerprint(),
            "label": condition.label,
            # Axis fields let SummaryStore.open() list a finished
            # campaign's keys without loading any summary.
            "website": condition.website,
            "network": condition.profile.name,
            "stack": condition.stack.name,
            "seed": condition.seed,
            "path": condition.path,
            "middleboxes": condition.middleboxes.name
            if condition.middleboxes.boxes else "none",
            # The behaviour version the recording was simulated under;
            # SummaryStore.open checks it against the current simulator.
            "sim_behaviour": harness.SIM_BEHAVIOUR_VERSION,
            "status": result.status,
            "attempts": result.attempts,
            "duration_s": round(result.duration_s, 4),
            "error": result.error,
            # simlint: allow[no-wallclock] -- manifest lines are stamped with real time for human provenance, not simulation input
            "at": time.time(),
        }
        if self.worker is not None:
            record["worker"] = self.worker
        # Checksummed single-write append; also the torn-write fault
        # point (see repro.testbed.faults / repro.testbed.store).
        append_record(self.manifest_path, record)

    def write_spec(self) -> Path:
        """Materialise the campaign directory with its ``spec.json``.

        Called automatically by :meth:`run`; also useful standalone to
        create a directory other hosts can ``repro campaign --join``
        before any condition has settled. Never overwrites an existing
        spec (the fingerprint-derived directory name makes "same spec"
        mean "same directory").
        """
        self.campaign_dir.mkdir(parents=True, exist_ok=True)
        spec_path = self.campaign_dir / "spec.json"
        if not spec_path.exists():
            # Atomic: spec.json is the --join entry point, and a
            # half-written file would brick the directory for every
            # joiner (the exists() guard means it is never rewritten).
            tmp = spec_path.with_name(
                f".{spec_path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(self.spec.describe(), indent=2))
            os.replace(tmp, spec_path)
        return spec_path

    # -- execution -----------------------------------------------------------

    def run(
        self,
        processes: Optional[int] = None,
        failure_policy: str = "retry",
        max_retries: int = 2,
        progress: Optional[ProgressCallback] = None,
        batch_size: Optional[int] = None,
        sink: Optional[SummarySink] = None,
        claims: Optional["ClaimProtocol"] = None,
    ) -> CampaignResult:
        """Record every condition, resuming any earlier partial run.

        ``processes`` ≤ 1 executes inline (deterministic, debuggable);
        ``None`` uses all-but-one CPU. ``failure_policy``:

        * ``retry`` — re-queue a failed condition up to ``max_retries``
          extra attempts, then record it as failed and continue;
        * ``skip`` — record the failure and continue immediately;
        * ``abort`` — raise :class:`CampaignError` on first failure
          (already-finished conditions stay in the manifest).

        ``batch_size`` controls how many conditions one worker task
        carries (``None`` picks a size spreading the queue over a few
        batches per worker). Batches are consecutive slices of the
        deterministic sweep order; results, manifest contents and the
        returned ordering are identical for every batch size.

        ``sink`` streams results into the analysis layer: it is called
        with ``(condition, summary)`` once per successfully recorded
        unique condition *as it settles* (resumed and cached conditions
        first, then simulated ones in completion order), so incremental
        aggregation can run concurrently with the sweep instead of
        loading the whole grid afterwards.

        ``claims`` makes the work queue cooperative: before a condition
        is simulated it must be acquired from the claim object, and
        conditions another worker holds are deferred and polled instead
        of re-simulated. This is how any number of
        :mod:`repro.testbed.distributed` workers on different hosts
        share one campaign directory. The object implements

        * ``select(conditions) -> (mine, theirs)`` — partition pending
          conditions into acquired leases and ones held elsewhere;
        * ``release(condition)`` — drop a lease after the condition's
          manifest line landed (success or terminal failure);
        * ``recorded(condition, summary)`` — this worker
          simulated+stored the condition (partial-aggregation hook);
        * ``wait(deferred) -> (settled, reclaimed, still_deferred)`` —
          one bounded poll: conditions now recorded by another worker,
          conditions whose lease went stale (ours to retry), and the
          rest.
        """
        if failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(
                f"batch_size must be at least 1, got {batch_size}")
        # simlint: allow[no-wallclock] -- campaign wall-clock duration for progress/result reporting
        started = time.perf_counter()
        self.write_spec()
        conditions = self.spec.conditions()
        manifest = self._load_manifest()

        # Supervisor quarantine support (duck-typed so plain claim
        # objects need not implement it): conditions marked poisoned —
        # they repeatedly killed workers — settle as terminal failures
        # instead of being retried forever by every surviving worker.
        poisoned_check = getattr(claims, "poisoned", None) \
            if claims is not None else None

        settled: Dict[str, ConditionResult] = {}
        todo: List[Condition] = []
        for condition in conditions:
            fingerprint = condition.fingerprint()
            if fingerprint in settled:
                continue  # duplicate axis entry: one recording serves both
            if poisoned_check is not None and \
                    str(manifest.get(fingerprint, {})
                        .get("status")) == "poisoned" \
                    and poisoned_check(fingerprint):
                # Already recorded as quarantined by an earlier worker
                # (or incarnation); settle without another line.
                settled[fingerprint] = ConditionResult(
                    condition, "poisoned",
                    error=str(manifest[fingerprint].get("error") or
                              "quarantined"))
                continue
            # The manifest says what happened; the cache is the truth.
            # A manifest "ok" whose recording was since pruned must be
            # re-simulated, not reported as resumed.
            recorded = self.cache.load(condition.label,
                                       fingerprint) is not None
            if not recorded:
                todo.append(condition)
                continue
            record = manifest.get(fingerprint)
            if record is not None and record.get("status") in OK_STATUSES:
                settled[fingerprint] = ConditionResult(
                    condition, "resumed",
                    attempts=int(record.get("attempts", 1)))
            elif claims is None:
                result = ConditionResult(condition, "cached")
                settled[fingerprint] = result
                self._append_manifest(result)
            elif claims.committed(fingerprint):
                # A peer committed this condition after our manifest
                # snapshot (late-joiner race); its line exists, so
                # appending a "cached" one would duplicate it.
                settled[fingerprint] = ConditionResult(
                    condition, "resumed")
            else:
                # Test-synchronisation fire point for the adoption race
                # regression (see tests/test_distributed.py).
                faults.fire("pre-adopt", fingerprint=fingerprint)
                if not claims.adopt(condition):
                    # An unmanifested recording another joiner is
                    # adopting right now: exactly one of us appends
                    # its line.
                    settled[fingerprint] = ConditionResult(
                        condition, "resumed")
                elif claims.committed(fingerprint):
                    # Adoption race: a peer adopted, appended its
                    # "cached" line and released between our
                    # committed() check above and winning this lease —
                    # appending would duplicate its line. Peers always
                    # append before releasing, so one re-check while
                    # *holding* the lease decides for real.
                    settled[fingerprint] = ConditionResult(
                        condition, "resumed")
                    claims.release(condition)
                else:
                    result = ConditionResult(condition, "cached")
                    settled[fingerprint] = result
                    self._append_manifest(result)
                    claims.release(condition)

        total = len({c.fingerprint() for c in conditions})
        done = 0

        def tick(result: ConditionResult) -> None:
            if progress is not None:
                progress(Progress(done, total, result,
                                  # simlint: allow[no-wallclock] -- elapsed wall time shown in the progress line
                                  time.perf_counter() - started))

        def feed_sink(condition: Condition) -> None:
            if sink is None:
                return
            summary = self.cache.load(condition.label,
                                      condition.fingerprint())
            if summary is not None:
                sink(condition, summary)

        for result in settled.values():
            done += 1
            tick(result)
            feed_sink(result.condition)

        attempts: Dict[str, int] = {}
        pending = todo
        deferred: List[Condition] = []

        # One worker pool for the whole run: claim-cycling workers used
        # to fork a fresh pool per claim chunk, paying interpreter/import
        # startup once per cycle; the pool is created lazily on the
        # first multi-process batch and reused until the run returns.
        if processes is None:
            # Workers beyond the core count only add scheduling overhead
            # for CPU-bound simulation; an explicit request is honoured.
            processes = max(1, (os.cpu_count() or 2) - 1)
        worker_pool = None

        def shared_pool():
            nonlocal worker_pool
            if worker_pool is None:
                worker_pool = pool_context().Pool(
                    processes=processes,
                    initializer=_init_worker,
                    initargs=(str(self.cache.directory),),
                )
            return worker_pool

        try:
            while pending or deferred:
                if poisoned_check is not None:
                    fresh_pending, fresh_deferred = [], []
                    for queue, fresh in ((pending, fresh_pending),
                                         (deferred, fresh_deferred)):
                        for condition in queue:
                            fingerprint = condition.fingerprint()
                            if not poisoned_check(fingerprint):
                                fresh.append(condition)
                                continue
                            result = ConditionResult(
                                condition, "poisoned",
                                attempts=attempts.get(fingerprint, 0),
                                error="quarantined: condition repeatedly "
                                      "killed workers (supervisor retry "
                                      "budget exhausted)")
                            settled[fingerprint] = result
                            # Exactly one worker appends the poisoned
                            # line: the adoption lease arbitrates, like
                            # any other manifest append.
                            if claims.adopt(condition):
                                self._append_manifest(result)
                                claims.release(condition)
                            done += 1
                            tick(result)
                    pending, deferred = fresh_pending, fresh_deferred
                    if not pending and not deferred:
                        break
                if claims is not None and pending:
                    pending, theirs = claims.select(pending)
                    deferred.extend(theirs)
                failures: List[Tuple[Condition, str, float]] = []
                for condition, error, duration in self._execute(
                        pending, processes, batch_size,
                        pool=shared_pool):
                    fingerprint = condition.fingerprint()
                    attempts[fingerprint] = attempts.get(fingerprint, 0) + 1
                    if error is None:
                        # Crash fault point: the recording is stored, its
                        # manifest line has not landed — the adoption
                        # window chaos tests kill workers inside.
                        faults.fire("condition", fingerprint=fingerprint)
                        done += 1
                        result = ConditionResult(
                            condition, "simulated",
                            attempts=attempts[fingerprint],
                            duration_s=duration)
                        settled[fingerprint] = result
                        self._append_manifest(result)
                        # One read serves both consumers of the summary.
                        summary = self.cache.load(condition.label,
                                                  fingerprint) \
                            if (claims is not None or sink is not None) \
                            else None
                        if claims is not None:
                            claims.release(condition)
                            if summary is not None:
                                claims.recorded(condition, summary)
                        tick(result)
                        if sink is not None and summary is not None:
                            sink(condition, summary)
                        continue
                    if failure_policy == "abort":
                        result = ConditionResult(
                            condition, "failed", attempts=attempts[fingerprint],
                            duration_s=duration, error=error)
                        self._append_manifest(result)
                        if claims is not None:
                            claims.release(condition)
                        raise CampaignError(
                            f"condition {condition.label} failed:\n{error}")
                    failures.append((condition, error, duration))

                retryable = failure_policy == "retry"
                pending = []
                for condition, error, duration in failures:
                    fingerprint = condition.fingerprint()
                    if retryable and attempts[fingerprint] <= max_retries:
                        pending.append(condition)
                        continue
                    result = ConditionResult(
                        condition, "failed", attempts=attempts[fingerprint],
                        duration_s=duration, error=error)
                    settled[fingerprint] = result
                    self._append_manifest(result)
                    if claims is not None:
                        claims.release(condition)
                    done += 1
                    tick(result)

                if claims is not None and deferred and not pending:
                    # Out of our own work: poll conditions other workers
                    # hold. Ones they recorded settle as "shared" (their
                    # manifest line, our sink feed); stale leases come back
                    # to us for re-simulation.
                    settled_elsewhere, reclaimed, deferred = \
                        claims.wait(deferred)
                    for condition in settled_elsewhere:
                        fingerprint = condition.fingerprint()
                        done += 1
                        result = ConditionResult(condition, "shared")
                        settled[fingerprint] = result
                        tick(result)
                        feed_sink(condition)
                    pending.extend(reclaimed)
        finally:
            if worker_pool is not None:
                worker_pool.terminate()
                worker_pool.join()

        ordered, seen = [], set()
        for condition in conditions:
            fingerprint = condition.fingerprint()
            if fingerprint not in seen:
                seen.add(fingerprint)
                ordered.append(settled[fingerprint])
        return CampaignResult(
            spec=self.spec, results=ordered,
            manifest_path=self.manifest_path,
            # simlint: allow[no-wallclock] -- campaign duration reported to the user, not simulation input
            duration_s=time.perf_counter() - started,
        )

    def _execute(
        self,
        conditions: Sequence[Condition],
        processes: Optional[int],
        batch_size: Optional[int] = None,
        pool=None,
    ) -> Iterator[Tuple[Condition, Optional[str], float]]:
        """Yield ``(condition, error, duration)`` as conditions settle.

        ``pool`` is an optional zero-argument callable returning a
        shared worker pool (see :meth:`run`); without it a fresh pool is
        created and torn down for this call.
        """
        if not conditions:
            return  # claim-wait poll cycles pass empty batches
        if processes is None:
            # Workers beyond the core count only add scheduling overhead
            # for CPU-bound simulation; an explicit request is honoured.
            processes = max(1, (os.cpu_count() or 2) - 1)
        processes = min(processes, len(conditions))

        if processes <= 1:
            _init_worker(str(self.cache.directory))
            for index, condition in enumerate(conditions):
                # Crash fault point ("pre" crashes): nothing is stored
                # yet, so a kill here leaves only a dangling lease.
                faults.fire(
                    "condition-start",
                    fingerprint=condition.fingerprint())
                _, error, duration = _run_condition((index, condition))
                yield condition, error, duration
            return

        payloads = list(enumerate(conditions))
        if batch_size is None:
            # A few batches per worker balances load without paying a
            # dispatch round-trip per condition.
            batch_size = max(1, -(-len(payloads) // (processes * 4)))
        batches = [payloads[i:i + batch_size]
                   for i in range(0, len(payloads), batch_size)]
        if pool is not None:
            for results in pool().imap_unordered(_run_condition_batch,
                                                 batches):
                for index, error, duration in results:
                    yield conditions[index], error, duration
            return
        processes = min(processes, len(batches))
        with pool_context().Pool(
            processes=processes,
            initializer=_init_worker,
            initargs=(str(self.cache.directory),),
        ) as ephemeral:
            for results in ephemeral.imap_unordered(_run_condition_batch,
                                                    batches):
                for index, error, duration in results:
                    yield conditions[index], error, duration

    # -- results -------------------------------------------------------------

    def iter_summaries(
        self,
    ) -> Iterator[Tuple[Condition, RecordingSummary]]:
        """Yield ``(condition, summary)`` lazily, in sweep order.

        One summary is in memory at a time — this is the streaming
        replacement for the deprecated whole-grid :meth:`summaries`.
        Raises :class:`KeyError` for a condition that has not been
        recorded yet — run the campaign first.
        """
        for condition in self.spec.conditions():
            summary = self.cache.load(condition.label,
                                      condition.fingerprint())
            if summary is None:
                raise KeyError(
                    f"condition {condition.label} not recorded yet")
            yield condition, summary

    def summary_store(self) -> SummaryStore:
        """A :class:`SummaryStore` over this campaign's recordings.

        Keys follow the spec's deterministic sweep order (duplicate
        fingerprints collapsed); the same store can be reopened post-hoc
        from :attr:`campaign_dir` with :meth:`SummaryStore.open`.
        """
        keys, seen = [], set()
        for condition in self.spec.conditions():
            key = condition.key
            if key.fingerprint not in seen:
                seen.add(key.fingerprint)
                keys.append(key)
        return SummaryStore(self.cache, keys=keys,
                            campaign_dir=self.campaign_dir)

    def summaries(self) -> List[RecordingSummary]:
        """Deprecated: load every condition's summary into one list.

        Materialises the whole grid in memory; use
        :meth:`iter_summaries` (lazy pairs) or :meth:`summary_store`
        (streaming, post-hoc capable) instead.
        """
        warnings.warn(
            "Campaign.summaries() loads the whole grid into memory; "
            "use Campaign.iter_summaries() or Campaign.summary_store()",
            DeprecationWarning, stacklevel=2)
        return [summary for _, summary in self.iter_summaries()]


def run_campaign_spec(
    spec: CampaignSpec,
    cache_dir: Optional[Union[str, Path]] = None,
    **run_kwargs: object,
) -> CampaignResult:
    """One-shot convenience: build a :class:`Campaign` and run it."""
    return Campaign(spec, cache_dir=cache_dir).run(**run_kwargs)  # type: ignore[arg-type]


class ProgressPrinter:
    """Default progress reporter: one line per settled condition.

    Suitable as the ``progress`` callback of :meth:`Campaign.run`; used
    by the CLI and the examples.
    """

    def __init__(self, stream=None, every: int = 1):
        self._stream = stream if stream is not None else sys.stdout
        self._every = max(1, every)

    def __call__(self, event: Progress) -> None:
        if event.done % self._every and event.done != event.total:
            return
        result = event.result
        eta = event.eta_s
        eta_text = f"{eta:6.1f}s" if eta != float("inf") else "      ?"
        line = (f"[{event.done:>4d}/{event.total}] "
                f"{result.status:9s} {result.condition.label:48s} "
                f"{result.duration_s:6.2f}s  eta {eta_text}")
        if result.error is not None:
            line += f"  ({result.error.strip().splitlines()[-1]})"
        print(line, file=self._stream, flush=True)
