"""Deterministic fault injection for campaign chaos testing.

The distributed layer (leases, manifest appends, partial aggregates) is
designed to survive crashed, stalled and torn-write workers — but "the
TTL reclaim will catch it" is a hope until every crash mode can be
*injected on demand*, deterministically, and the survivors' output
checked byte-for-byte. This module is that switchboard:

* :class:`FaultPlan` — a declarative list of :class:`Fault` entries,
  written by hand (``crash:w0@1; stall:w1@0``), loaded from JSON, or
  generated from a seed via the library's RNG tree (``seed:7``). Plans
  are pure data: the same plan against the same grid kills the same
  worker at the same point, every time.
* :class:`FaultInjector` — the armed plan. Orchestration code calls
  :func:`fire` at a handful of named points; when no injector is
  installed the call is a near-free no-op, so the hooks cost nothing in
  production.

Fault kinds and the points they fire at:

``crash``
    ``os._exit`` with :data:`CRASH_EXIT_CODE` at the worker's N-th
    *simulated* condition — after the recording is stored, before its
    manifest line lands (the nastiest window: cache and manifest
    disagree, and the condition must be adopted, not re-simulated).
    With arg ``pre`` the kill moves before the simulation instead
    (nothing stored, lease left dangling).
``torn-write``
    the worker's N-th manifest append writes only a truncated prefix of
    the line, then dies — modelling a kill mid-``write(2)``. Readers
    must skip the torn line, never crash on it.
``stall``
    from the N-th heartbeat onward the worker's lease heartbeats are
    suppressed while the process keeps running — modelling a hung host
    whose leases go stale under it.
``storm``
    before the worker's N-th lease acquire, a ghost lease with an
    ancient mtime is planted on the contested path — forcing the
    acquire through the stale-break/re-acquire contention path.

Faults address workers by *slot* (``w0``, ``w1``, respawned
incarnations ``w0.r1``, ...) or ``*`` for everyone; a fault aimed at
``w0`` does not re-fire in its respawned successor, so "kill worker 0
once" converges instead of crash-looping.

Injectors install process-globally (:func:`install` /
:func:`uninstall`), or from the environment
(:data:`PLAN_ENV`/:data:`WORKER_ENV`, picked up by
:func:`~repro.testbed.distributed.run_worker`) so ``repro campaign
--inject-faults PLAN`` reaches spawned worker subprocesses. Tests may
also attach synchronisation ``hooks`` — plain callables fired at a
point *before* any fault logic — to pin down historically racy
interleavings deterministically.

Nothing here touches simulation state: fault points live purely in the
orchestration layer, and plan generation draws from its own spawn key
of the RNG tree, so an armed (but non-firing) plan never changes a
single recorded byte.
"""

from __future__ import annotations

import json
import os
import re
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.util.rng import spawn_rng

#: Supported fault kinds (see the module docstring for semantics).
FAULT_KINDS = ("crash", "stall", "torn-write", "storm")

#: Exit status of a worker killed by an injected crash/torn-write —
#: distinguishable from clean exits (0/2) and Python errors (1) so the
#: supervisor can tell "chaos kill" from "worker bug" in its summary.
CRASH_EXIT_CODE = 70

#: Environment variables propagating a plan into worker subprocesses.
PLAN_ENV = "REPRO_FAULT_PLAN"
WORKER_ENV = "REPRO_FAULT_WORKER"

#: Fire point each kind listens on (crash may move, see Fault.point).
_POINT_OF = {
    "crash": "condition",
    "stall": "heartbeat",
    "torn-write": "manifest-append",
    "storm": "acquire",
}

_ENTRY = re.compile(
    r"^(?P<kind>[a-z][a-z-]*):(?P<worker>[^@:;\s]+)@(?P<at>\d+)"
    r"(?::(?P<arg>[^;]*))?$")


@dataclass(frozen=True)
class Fault:
    """One injected failure: *kind* hits *worker* at occurrence *at*.

    ``at`` counts occurrences of the fault's fire point within one
    worker process (0-based): the N-th simulated condition, heartbeat,
    manifest append or lease acquire. ``worker`` is a supervisor slot
    (``w0``), a respawned incarnation (``w0.r1``) or ``*``.
    """

    kind: str
    worker: str = "*"
    at: int = 0
    arg: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}")
        if self.at < 0:
            raise ValueError(f"fault index must be >= 0, got {self.at}")

    @property
    def point(self) -> str:
        """The named fire point this fault listens on."""
        if self.kind == "crash" and self.arg == "pre":
            return "condition-start"
        return _POINT_OF[self.kind]

    def describe(self) -> str:
        text = f"{self.kind}:{self.worker}@{self.at}"
        return f"{text}:{self.arg}" if self.arg else text


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of faults; pure data, trivially serialisable."""

    faults: Tuple[Fault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def describe(self) -> str:
        if not self.faults:
            return "(no faults)"
        return "; ".join(fault.describe() for fault in self.faults)

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from the CLI argument forms.

        * ``kind:worker@index[:arg]`` entries separated by ``;``
          (``crash:w0@1; stall:*@0``),
        * ``seed:N`` — a deterministic generated plan (see
          :meth:`generate`),
        * a path to a ``.json`` file holding :meth:`to_json` output.
        """
        text = text.strip()
        if not text:
            raise ValueError("empty fault plan")
        if text.endswith(".json"):
            return cls.from_json(json.loads(Path(text).read_text()))
        if re.fullmatch(r"seed:\d+", text):
            return cls.generate(int(text.split(":", 1)[1]))
        faults: List[Fault] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            match = _ENTRY.match(chunk)
            if match is None:
                raise ValueError(
                    f"bad fault entry {chunk!r}; expected "
                    f"kind:worker@index[:arg] with kind one of "
                    f"{FAULT_KINDS}, e.g. crash:w0@1")
            faults.append(Fault(
                kind=match.group("kind"),
                worker=match.group("worker"),
                at=int(match.group("at")),
                arg=match.group("arg") or "",
            ))
        return cls(tuple(faults))

    @classmethod
    def generate(
        cls,
        seed: int,
        workers: int = 2,
        conditions: int = 8,
        count: int = 3,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultPlan":
        """A deterministic plan drawn from the library's RNG tree.

        The generator spawns its own ``("fault-plan",)`` child stream,
        so generating (or not generating) a plan never perturbs any
        simulation stream — same discipline as every other stochastic
        component (see :mod:`repro.util.rng`).
        """
        if workers < 1 or conditions < 1 or count < 0:
            raise ValueError("workers/conditions must be >= 1, count >= 0")
        rng = spawn_rng(seed, "fault-plan")
        faults = tuple(
            Fault(
                kind=str(kinds[int(rng.integers(len(kinds)))]),
                worker=f"w{int(rng.integers(workers))}",
                at=int(rng.integers(conditions)),
            )
            for _ in range(count)
        )
        return cls(faults)

    # -- serialization -------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {"faults": [
            {"kind": f.kind, "worker": f.worker, "at": f.at, "arg": f.arg}
            for f in self.faults]}

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FaultPlan":
        return cls(tuple(
            Fault(kind=str(entry["kind"]),
                  worker=str(entry.get("worker", "*")),
                  at=int(entry.get("at", 0)),
                  arg=str(entry.get("arg", "")))
            for entry in data.get("faults", ())))


#: Test synchronisation hooks: point name -> callable(**context).
Hooks = Mapping[str, Callable[..., None]]


class FaultInjector:
    """An armed :class:`FaultPlan` for one worker process.

    Keeps a per-point occurrence counter; :meth:`fire` matches the
    plan's faults against the current point/worker/count and executes
    them. Installed process-globally via :func:`install` so the
    orchestration hooks need no plumbing through every call chain.
    """

    def __init__(self, plan: FaultPlan, worker: str = "*",
                 hooks: Optional[Hooks] = None):
        self.plan = plan
        self.worker = worker
        self.hooks = dict(hooks) if hooks else {}
        self._counts: Dict[str, int] = {}
        self._by_point: Dict[str, List[Fault]] = {}
        for fault in plan.faults:
            if fault.worker in ("*", worker):
                self._by_point.setdefault(fault.point, []).append(fault)

    def count(self, point: str) -> int:
        """How many times ``point`` has fired in this process."""
        return self._counts.get(point, 0)

    def fire(self, point: str, ctx: Dict[str, object]) -> bool:
        """One occurrence of ``point``; returns True to suppress it.

        Only ``heartbeat`` interprets the return value (a matching
        ``stall`` suppresses the beat); every other point ignores it.
        """
        hook = self.hooks.get(point)
        if hook is not None:
            hook(**ctx)
        index = self._counts.get(point, 0)
        self._counts[point] = index + 1
        suppress = False
        for fault in self._by_point.get(point, ()):
            if fault.kind == "stall":
                if index >= fault.at:
                    suppress = True
                continue
            if index != fault.at:
                continue
            self._announce(fault)
            if fault.kind == "crash":
                self._crash()
            elif fault.kind == "torn-write":
                self._torn_write(ctx)
            elif fault.kind == "storm":
                self._storm(ctx)
        return suppress

    def _announce(self, fault: Fault) -> None:
        print(f"[faults] {fault.describe()} firing in worker "
              f"{self.worker!r} (pid {os.getpid()})",
              file=sys.stderr, flush=True)

    def _crash(self) -> None:
        """Die the way a SIGKILLed worker does: no cleanup, no
        finally-blocks, leases left in place, partial state on disk."""
        sys.stderr.flush()
        sys.stdout.flush()
        os._exit(CRASH_EXIT_CODE)

    def _torn_write(self, ctx: Dict[str, object]) -> None:
        """Append a truncated prefix of the line, then die mid-write."""
        path = ctx.get("path")
        line = str(ctx.get("line", ""))
        if path is not None and line:
            torn = line[:max(1, len(line) // 2)].rstrip("\n")
            with open(path, "a") as handle:
                handle.write(torn)
                handle.flush()
                os.fsync(handle.fileno())
        self._crash()

    def _storm(self, ctx: Dict[str, object]) -> None:
        """Plant a ghost stale lease on the path about to be acquired,
        forcing the worker through break-stale contention."""
        claims_dir = ctx.get("claims_dir")
        fingerprint = ctx.get("fingerprint")
        ttl_s = float(ctx.get("ttl_s", 60.0))
        if claims_dir is None or fingerprint is None:
            return
        claims_dir = Path(claims_dir)
        claims_dir.mkdir(parents=True, exist_ok=True)
        path = claims_dir / f"{fingerprint}.lease"
        try:
            descriptor = os.open(
                path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return  # genuinely contested already; nothing to add
        with os.fdopen(descriptor, "w") as handle:
            json.dump({"worker": "ghost-storm", "pid": 0,
                       "host": "chaos"}, handle)
        # simlint: allow[no-wallclock] -- ages the ghost lease past the TTL; staleness is real elapsed time by design
        old = time.time() - ttl_s - 60.0
        os.utime(path, (old, old))


# -- process-global installation ---------------------------------------------

_ACTIVE: Optional[FaultInjector] = None


def install(plan: FaultPlan, worker: str = "*",
            hooks: Optional[Hooks] = None) -> FaultInjector:
    """Arm a plan for this process (replacing any previous injector)."""
    global _ACTIVE
    _ACTIVE = FaultInjector(plan, worker=worker, hooks=hooks)
    return _ACTIVE


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultInjector]:
    return _ACTIVE


def install_from_env(
        environ: Optional[Mapping[str, str]] = None,
) -> Optional[FaultInjector]:
    """Arm a plan from :data:`PLAN_ENV`/:data:`WORKER_ENV`, if set.

    Idempotent and respectful: an injector installed explicitly (e.g.
    by a test or the supervisor's child entry) is never replaced.
    Returns the active injector either way.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    environ = os.environ if environ is None else environ
    text = environ.get(PLAN_ENV)
    if not text:
        return None
    return install(FaultPlan.parse(text),
                   worker=environ.get(WORKER_ENV, "*"))


def fire(point: str, **ctx: object) -> bool:
    """The orchestration hook: one occurrence of a named fire point.

    Near-free when no injector is installed (one global read), so the
    hooks stay in production code paths unconditionally.
    """
    injector = _ACTIVE
    if injector is None:
        return False
    return injector.fire(point, ctx)
