"""Video production: repeated loads and typical-run selection.

The paper records every website/network/stack condition at least 31 times
and shows participants the recording "closest to the average PLT"
(inspired by Zimmermann et al. [27]). A :class:`Recording` here is the
information content of that video: the selected run's visual-progress
curve plus the condition labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean
from typing import Dict, List, Optional, Tuple

from repro.browser.engine import PageLoadResult, load_page
from repro.browser.metrics import VisualMetrics
from repro.netem.profiles import NetworkProfile
from repro.transport.config import StackConfig
from repro.util.rng import spawn_rng
from repro.web.website import Website

#: Paper default: "at least 31 times".
DEFAULT_RUNS = 31


@dataclass
class Recording:
    """A produced study video for one (website, network, stack) condition."""

    website: str
    network: str
    stack: str
    selected: PageLoadResult
    runs: List[PageLoadResult]
    selection_metric: str

    @property
    def metrics(self) -> VisualMetrics:
        """Technical metrics of the shown (typical) run."""
        return self.selected.metrics

    @property
    def video_duration(self) -> float:
        """Length of the rendered clip: last visual change plus a tail."""
        return self.selected.metrics.lvc + 1.0

    def mean_metric(self, name: str) -> float:
        """Mean of one technical metric over all repetitions."""
        return fmean(run.metrics[name] for run in self.runs)

    def metric_values(self, name: str) -> List[float]:
        return [run.metrics[name] for run in self.runs]

    @property
    def condition_key(self) -> Tuple[str, str, str]:
        return (self.website, self.network, self.stack)


def record_website(
    website: Website,
    profile: NetworkProfile,
    stack: StackConfig,
    runs: int = DEFAULT_RUNS,
    seed: int = 0,
    selection_metric: str = "PLT",
    timeout: float = 180.0,
    path_mode: str = "direct",
    middleboxes: object = None,
) -> Recording:
    """Load ``website`` repeatedly and select the typical recording.

    ``selection_metric`` picks the run whose metric is closest to the mean
    of that metric across repetitions; the paper uses PLT, the recorder
    also supports SI for the ablation discussed in DESIGN.md.
    ``path_mode`` selects direct end-to-end transport or per-segment
    split-connection proxies over a segmented profile; the per-run seed
    tree is shared between modes so a direct-vs-split comparison differs
    only in topology. ``middleboxes`` likewise rides outside the seed
    tree: a clean-vs-impaired comparison shares per-run seeds and
    differs only in the in-path chain.
    """
    if runs < 1:
        raise ValueError("need at least one run")
    if selection_metric not in VisualMetrics.METRIC_NAMES:
        raise ValueError(f"unknown selection metric {selection_metric!r}")

    results: List[PageLoadResult] = []
    for index in range(runs):
        run_seed = int(spawn_rng(seed, "record", website.name, profile.name,
                                 stack.name, index).integers(2**31))
        results.append(load_page(website, profile, stack, seed=run_seed,
                                 timeout=timeout, path_mode=path_mode,
                                 middleboxes=middleboxes))

    mean_value = fmean(r.metrics[selection_metric] for r in results)
    selected = min(
        results, key=lambda r: abs(r.metrics[selection_metric] - mean_value)
    )
    return Recording(
        website=website.name,
        network=profile.name,
        stack=stack.name,
        selected=selected,
        runs=results,
        selection_metric=selection_metric,
    )
