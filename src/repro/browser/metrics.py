"""Visual-progress curves and Web performance metrics.

The paper evaluates five technical metrics against user votes (Figure 6):

* **FVC** — First Visual Change: first time anything paints.
* **LVC** — Last Visual Change: last time the viewport changes.
* **SI** — (RUM) Speed Index: integral of the remaining visual
  incompleteness over time; lower is faster.
* **VC85** — time until the page is 85 % visually complete.
* **PLT** — Page Load Time (onload).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class VisualCurve:
    """Monotone step function: visual completeness (0..1) over time."""

    def __init__(self, points: Optional[Sequence[Tuple[float, float]]] = None):
        self._times: List[float] = []
        self._values: List[float] = []
        if points:
            for t, v in points:
                self.add(t, v)

    def add(self, time: float, value: float) -> None:
        """Append a sample; time and completeness must not decrease."""
        if not 0.0 <= value <= 1.0 + 1e-9:
            raise ValueError(f"completeness must be within [0,1], got {value}")
        value = min(value, 1.0)
        if self._times:
            if time < self._times[-1] - 1e-12:
                raise ValueError("curve times must be non-decreasing")
            if value < self._values[-1] - 1e-9:
                raise ValueError("visual completeness must be non-decreasing")
            if abs(value - self._values[-1]) < 1e-12:
                return  # no visible change
        self._times.append(max(time, self._times[-1] if self._times else time))
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def value_at(self, time: float) -> float:
        """Completeness at ``time`` (0 before the first sample)."""
        result = 0.0
        for t, v in zip(self._times, self._values):
            if t <= time:
                result = v
            else:
                break
        return result

    def first_time_at_least(self, threshold: float) -> Optional[float]:
        """Earliest time completeness reaches ``threshold``, or None."""
        for t, v in zip(self._times, self._values):
            if v >= threshold - 1e-12:
                return t
        return None

    def first_change(self) -> Optional[float]:
        """Time of the first visible change (completeness > 0)."""
        for t, v in zip(self._times, self._values):
            if v > 1e-12:
                return t
        return None

    def last_change(self) -> Optional[float]:
        """Time of the last visible change."""
        if not self._times:
            return None
        return self._times[-1]

    def speed_index(self) -> float:
        """∫ (1 - completeness) dt from 0 to the last visual change."""
        if not self._times:
            return 0.0
        total = 0.0
        prev_time = 0.0
        prev_value = 0.0
        for t, v in zip(self._times, self._values):
            total += (t - prev_time) * (1.0 - prev_value)
            prev_time, prev_value = t, v
        return total

    def final_value(self) -> float:
        return self._values[-1] if self._values else 0.0


@dataclass(frozen=True)
class VisualMetrics:
    """The paper's five technical metrics for one page load (seconds)."""

    fvc: float
    lvc: float
    si: float
    vc85: float
    plt: float

    METRIC_NAMES = ("FVC", "SI", "VC85", "LVC", "PLT")

    def as_dict(self) -> Dict[str, float]:
        """Metrics keyed by their paper names (Figure 6 row order)."""
        return {
            "FVC": self.fvc,
            "SI": self.si,
            "VC85": self.vc85,
            "LVC": self.lvc,
            "PLT": self.plt,
        }

    def __getitem__(self, name: str) -> float:
        return self.as_dict()[name]


def compute_metrics(curve: VisualCurve, plt: float) -> VisualMetrics:
    """Derive the metric set from a finished load's curve and onload time."""
    fvc = curve.first_change()
    lvc = curve.last_change()
    if fvc is None or lvc is None:
        # Nothing ever painted (timeout): degrade gracefully to the PLT.
        return VisualMetrics(fvc=plt, lvc=plt, si=plt, vc85=plt, plt=plt)
    vc85 = curve.first_time_at_least(0.85)
    if vc85 is None:
        vc85 = plt
    return VisualMetrics(
        fvc=fvc,
        lvc=lvc,
        si=curve.speed_index(),
        vc85=vc85,
        plt=plt,
    )
