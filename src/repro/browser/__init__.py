"""Browser model: page loading, progressive rendering, visual metrics.

Replaces Chromium + Browsertime in the paper's pipeline: it loads a
:class:`~repro.web.website.Website` over emulated transports, produces a
visual-progress curve (the information content of the screen recording),
and computes the paper's technical metrics — FVC, LVC, PLT, SI and VC85.
"""

from repro.browser.engine import PageLoad, PageLoadResult, load_page
from repro.browser.metrics import VisualCurve, VisualMetrics, compute_metrics
from repro.browser.recorder import Recording, record_website

__all__ = [
    "PageLoad",
    "PageLoadResult",
    "load_page",
    "VisualCurve",
    "VisualMetrics",
    "compute_metrics",
    "Recording",
    "record_website",
]
