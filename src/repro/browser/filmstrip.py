"""Filmstrip rendering: visual-progress curves as text.

The study videos exist to carry a loading process to a rater's eyes; a
filmstrip is the terminal-friendly equivalent and is what the examples
and reports print when a condition needs to be *seen*.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.browser.metrics import VisualCurve

#: Ramp from blank to fully painted.
GLYPHS = " .:-=+*#%@"


def filmstrip(curve: VisualCurve, duration: float, width: int = 60) -> str:
    """Render a curve as one row of glyphs over [0, duration]."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    if width < 1:
        raise ValueError("width must be at least 1")
    cells = []
    top = len(GLYPHS) - 1
    for index in range(width):
        t = duration * (index + 1) / width
        value = curve.value_at(t)
        cells.append(GLYPHS[min(int(value * top), top)])
    return "".join(cells)


def filmstrip_panel(
    labelled_curves: Sequence,
    duration: Optional[float] = None,
    width: int = 60,
) -> str:
    """Render several (label, curve) rows on a shared time axis.

    This is the side-by-side A/B stimulus in text form.
    """
    items = list(labelled_curves)
    if not items:
        raise ValueError("nothing to render")
    if duration is None:
        last_changes = [curve.last_change() or 0.0 for _, curve in items]
        duration = max(last_changes) + 1.0
    label_width = max(len(label) for label, _ in items)
    lines = []
    for label, curve in items:
        strip = filmstrip(curve, duration, width)
        lines.append(f"{label.ljust(label_width)} |{strip}|")
    axis = f"{'':{label_width}} 0{'':{width - 10}}{duration:7.1f}s"
    lines.append(axis)
    return "\n".join(lines)
