"""Page-load engine: the Chromium stand-in.

Loads a website over one emulated network path with one protocol stack:

* one connection per contacted host (fresh browser, empty cache — QUIC
  does a 1-RTT handshake, TCP+TLS 1.3 a 2-RTT one, per host);
* resources are discovered progressively while their parent's body
  arrives (HTML parsing, script execution) and fetched with
  Chromium-style priorities;
* a visual-progress curve is produced: the root document and images
  contribute progressively, other visible objects on completion, and
  nothing paints before the head's render-blocking resources are in
  (first-paint gating).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.browser.metrics import VisualCurve, VisualMetrics, compute_metrics
from repro.http.base import HttpConnection, open_connection
from repro.http.messages import (
    PRIORITY_LOW,
    HttpRequest,
    HttpResponseEvents,
    priority_for,
)
from repro.http.server import OriginServer
from repro.netem.engine import EventLoop
from repro.netem.flowid import FlowIdAllocator
from repro.netem.path import NetworkPath, build_network_path
from repro.netem.profiles import NetworkProfile
from repro.transport.config import StackConfig
from repro.util.rng import spawn_rng
from repro.web.objects import WebObject
from repro.web.website import Website

#: Loads taking longer than this are aborted and flagged.
DEFAULT_TIMEOUT = 180.0

#: Fraction of the root document that must have arrived before first paint.
FIRST_PAINT_HTML_FRACTION = 0.3

#: Head blockers: render-blocking children discovered this early.
HEAD_DISCOVERY_FRACTION = 0.4

#: Chromium-style limit on simultaneous connection setups (the socket
#: pool connects at most six sockets at a time): a burst of discoveries
#: on a many-host page must not flood the uplink queue with handshake
#: packets all at once.
MAX_CONCURRENT_HANDSHAKES = 6

#: Chromium's ResourceScheduler keeps roughly this many low-priority
#: (image/async) requests in flight; the rest wait. This spreads the
#: per-host initial-window bursts of a many-image page over time.
MAX_LOW_PRIORITY_IN_FLIGHT = 10


@dataclass
class _ObjectState:
    obj: WebObject
    requested: bool = False
    first_byte_at: Optional[float] = None
    body_done: int = 0
    completed_at: Optional[float] = None
    next_child_index: int = 0
    children: List[WebObject] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    @property
    def body_fraction(self) -> float:
        return min(1.0, self.body_done / self.obj.size)


@dataclass
class TransportTotals:
    """Aggregated transport counters over all of a load's connections."""

    packets_or_segments_sent: int = 0
    retransmissions: int = 0
    loss_events: int = 0
    timeouts: int = 0
    connections: int = 0


@dataclass
class PageLoadResult:
    """Everything measured during one page load."""

    website: str
    network: str
    stack: str
    curve: VisualCurve
    metrics: VisualMetrics
    completed: bool
    objects_loaded: int
    objects_total: int
    transport: TransportTotals
    connection_setup_times: Dict[str, float] = field(default_factory=dict)

    @property
    def plt(self) -> float:
        return self.metrics.plt


class PageLoad:
    """One navigation: drives connections, discovery and rendering."""

    def __init__(
        self,
        loop: EventLoop,
        path: NetworkPath,
        stack: StackConfig,
        website: Website,
        timeout: float = DEFAULT_TIMEOUT,
        seed: int = 0,
        flow_ids: Optional[FlowIdAllocator] = None,
    ):
        self._loop = loop
        self._path = path
        self._stack = stack
        self._website = website
        self._timeout = timeout
        self._server_rng = spawn_rng(seed, "server-jitter", website.name)
        # Connection identity is owned by the load context: the n-th
        # connection of a load always gets the same flow id (and thus
        # the same handshake-retry jitter), whatever ran earlier in the
        # process. Defaults to the path's allocator, which is fresh per
        # path — one load per path means one id space per load.
        self._flow_ids = flow_ids if flow_ids is not None else path.flow_ids

        self._connections: Dict[str, HttpConnection] = {}
        self._states: Dict[int, _ObjectState] = {}
        for obj in website.objects:
            self._states[obj.object_id] = _ObjectState(obj)
        for obj in website.objects:
            if obj.parent_id is not None:
                self._states[obj.parent_id].children.append(obj)
        for state in self._states.values():
            state.children.sort(key=lambda o: o.discovery_fraction)

        total_weight = website.total_render_weight()
        self._weight_scale = 1.0 / total_weight if total_weight > 0 else 0.0
        self._head_blockers = [
            obj.object_id for obj in website.objects
            if obj.render_blocking and obj.parent_id == 0
            and obj.discovery_fraction <= HEAD_DISCOVERY_FRACTION
        ]
        self._curve = VisualCurve()
        self._painted = False
        self._accumulated = 0.0
        self._done = False
        self._finished_at: Optional[float] = None
        self._timed_out = False
        self._handshakes_in_progress = 0
        self._deferred_requests: List[WebObject] = []
        self._low_priority_in_flight = 0
        self._throttled_requests: List[WebObject] = []

    # -- public -------------------------------------------------------------

    def start(self) -> None:
        """Issue the navigation (request the root document)."""
        self._request_object(self._website.root)
        self._loop.call_later(self._timeout, self._on_timeout)

    def run(self) -> PageLoadResult:
        """Start and drive the event loop until the load finishes."""
        self.start()
        self._loop.run_until_idle_or(lambda: self._done)
        return self.result()

    def result(self) -> PageLoadResult:
        plt = self._finished_at if self._finished_at is not None else self._timeout
        loaded = sum(1 for s in self._states.values() if s.complete)
        return PageLoadResult(
            website=self._website.name,
            network=self._path.profile.name,
            stack=self._stack.name,
            curve=self._curve,
            metrics=compute_metrics(self._curve, plt),
            completed=not self._timed_out,
            objects_loaded=loaded,
            objects_total=len(self._states),
            transport=self._transport_totals(),
            connection_setup_times=self._setup_times(),
        )

    # -- connections -----------------------------------------------------------

    def _connection_for(self, host: str) -> HttpConnection:
        conn = self._connections.get(host)
        if conn is None:
            conn = open_connection(
                self._path, self._stack,
                OriginServer(host, jitter_rng=self._server_rng),
                flow_ids=self._flow_ids,
            )
            self._connections[host] = conn
            self._handshakes_in_progress += 1
            conn.add_established_listener(self._handshake_finished)
            conn.connect()
        return conn

    def _handshake_finished(self) -> None:
        self._handshakes_in_progress -= 1
        self._drain_deferred()

    def _drain_deferred(self) -> None:
        while self._deferred_requests and \
                self._handshakes_in_progress < MAX_CONCURRENT_HANDSHAKES:
            obj = self._deferred_requests.pop(0)
            self._submit_request(obj)

    def _transport_totals(self) -> TransportTotals:
        totals = TransportTotals(connections=len(self._connections))
        for conn in self._connections.values():
            transport = conn.transport  # type: ignore[attr-defined]
            # A split-proxy facade owns one real connection per path
            # segment; count each leg's transmissions. Plain transports
            # are their own single leg.
            for leg in getattr(transport, "segments", (transport,)):
                if hasattr(leg, "server_sender"):        # TCP
                    stats = leg.server_sender.stats
                    totals.packets_or_segments_sent += stats.segments_sent
                    totals.retransmissions += stats.retransmitted_segments
                    totals.loss_events += stats.loss_events
                    totals.timeouts += stats.rto_count
                else:                                    # QUIC
                    stats = leg.server.stats
                    totals.packets_or_segments_sent += stats.packets_sent
                    totals.retransmissions += stats.retransmitted_packets
                    totals.loss_events += stats.loss_events
                    totals.timeouts += stats.pto_count
        return totals

    def _setup_times(self) -> Dict[str, float]:
        times: Dict[str, float] = {}
        for host, conn in self._connections.items():
            transport = conn.transport  # type: ignore[attr-defined]
            established = transport.established_at
            started = conn.connect_started_at
            if established is not None and started is not None:
                times[host] = established - started
        return times

    # -- requests / responses ------------------------------------------------------

    def _request_object(self, obj: WebObject) -> None:
        state = self._states[obj.object_id]
        if state.requested:
            return
        state.requested = True
        self._enqueue_request(obj)

    def _enqueue_request(self, obj: WebObject) -> None:
        if priority_for(obj.resource_type) >= PRIORITY_LOW and \
                self._low_priority_in_flight >= MAX_LOW_PRIORITY_IN_FLIGHT:
            self._throttled_requests.append(obj)
            return
        needs_handshake = obj.host not in self._connections
        if needs_handshake and \
                self._handshakes_in_progress >= MAX_CONCURRENT_HANDSHAKES:
            self._deferred_requests.append(obj)
            return
        self._submit_request(obj)

    def _release_throttled(self) -> None:
        while self._throttled_requests and \
                self._low_priority_in_flight < MAX_LOW_PRIORITY_IN_FLIGHT:
            obj = self._throttled_requests.pop(0)
            needs_handshake = obj.host not in self._connections
            if needs_handshake and self._handshakes_in_progress >= \
                    MAX_CONCURRENT_HANDSHAKES:
                self._deferred_requests.append(obj)
                continue
            self._submit_request(obj)

    def _submit_request(self, obj: WebObject) -> None:
        if priority_for(obj.resource_type) >= PRIORITY_LOW:
            self._low_priority_in_flight += 1
        events = HttpResponseEvents(
            on_first_byte=lambda t, oid=obj.object_id: self._on_first_byte(oid, t),
            on_progress=lambda t, done, oid=obj.object_id:
                self._on_progress(oid, t, done),
            on_complete=lambda t, oid=obj.object_id: self._on_complete(oid, t),
        )
        request = HttpRequest(
            url=obj.url,
            body_bytes=obj.size,
            resource_type=obj.resource_type,
            server_delay_s=obj.server_delay_s,
            events=events,
        )
        self._connection_for(obj.host).request(request)

    def _on_first_byte(self, object_id: int, t: float) -> None:
        state = self._states[object_id]
        if state.first_byte_at is None:
            state.first_byte_at = t

    def _on_progress(self, object_id: int, t: float, body_done: int) -> None:
        state = self._states[object_id]
        if state.complete:
            return
        state.body_done = max(state.body_done, body_done)
        self._discover_children(state)
        self._update_visual(t)

    def _on_complete(self, object_id: int, t: float) -> None:
        state = self._states[object_id]
        if state.complete:
            return
        state.body_done = state.obj.size
        state.completed_at = t
        if priority_for(state.obj.resource_type) >= PRIORITY_LOW:
            self._low_priority_in_flight -= 1
            self._release_throttled()
        self._discover_children(state)
        self._update_visual(t)
        self._check_finished(t)

    def _discover_children(self, state: _ObjectState) -> None:
        fraction = state.body_fraction
        while state.next_child_index < len(state.children):
            child = state.children[state.next_child_index]
            if child.discovery_fraction > fraction:
                break
            state.next_child_index += 1
            # Parsing and script execution take CPU time: discoveries are
            # staggered by a small parse delay instead of firing the
            # moment the byte threshold is crossed. This is what keeps a
            # many-host page from opening every connection in the same
            # millisecond on a fast link. Resources injected by scripts
            # additionally pay for executing that script.
            parse_delay = float(self._server_rng.uniform(0.004, 0.045))
            if state.obj.resource_type == "js":
                parse_delay += float(self._server_rng.uniform(0.03, 0.15))
            self._loop.call_later(
                parse_delay, lambda c=child: self._request_object(c)
            )

    # -- rendering ----------------------------------------------------------------

    def _visual_value(self) -> float:
        total = 0.0
        for state in self._states.values():
            weight = state.obj.render_weight
            if weight <= 0:
                continue
            if state.obj.progressive:
                total += weight * state.body_fraction
            elif state.complete:
                total += weight
        return total * self._weight_scale

    def _paint_allowed(self) -> bool:
        if self._painted:
            return True
        root_state = self._states[0]
        if root_state.body_fraction < FIRST_PAINT_HTML_FRACTION \
                and not root_state.complete:
            return False
        for blocker_id in self._head_blockers:
            blocker = self._states[blocker_id]
            if blocker.requested and not blocker.complete:
                return False
            if not blocker.requested:
                # Not yet discovered: it will be a head blocker once the
                # HTML reaches it, so hold the paint.
                if root_state.body_fraction < \
                        blocker.obj.discovery_fraction:
                    return False
                return False
        return True

    def _update_visual(self, t: float) -> None:
        value = self._visual_value()
        if value <= self._accumulated and self._painted:
            return
        if not self._painted:
            if not self._paint_allowed() or value <= 0.0:
                return
            self._painted = True
        self._accumulated = value
        self._curve.add(t, value)

    # -- completion ------------------------------------------------------------------

    def _check_finished(self, t: float) -> None:
        if self._done:
            return
        for state in self._states.values():
            if state.requested and not state.complete:
                return
            if not state.requested and self._reachable(state):
                return
        self._done = True
        self._finished_at = t

    def _reachable(self, state: _ObjectState) -> bool:
        """Will this object still be discovered by a pending parent?"""
        parent_id = state.obj.parent_id
        if parent_id is None:
            return True
        parent = self._states[parent_id]
        if parent.complete:
            # Parent finished; discovery already ran, so an unrequested
            # child would have been picked up. Defensive: treat as pending
            # only if the parent never delivered enough body.
            return state.obj.discovery_fraction <= parent.body_fraction
        return self._reachable(parent)

    def _on_timeout(self) -> None:
        if self._done:
            return
        self._done = True
        self._timed_out = True
        self._finished_at = self._loop.now


def load_page(
    website: Website,
    profile: NetworkProfile,
    stack: StackConfig,
    seed: int = 0,
    timeout: float = DEFAULT_TIMEOUT,
    path_mode: str = "direct",
    middleboxes: object = None,
) -> PageLoadResult:
    """Convenience wrapper: fresh loop + path, run one load to completion.

    ``path_mode="split"`` runs the load through per-segment
    split-connection proxies (requires a multi-segment
    :class:`~repro.netem.profiles.SegmentedProfile`).
    ``middleboxes`` (a preset name, chain spec, or sequence of box
    specs — see :mod:`repro.netem.middlebox`) interposes an in-path
    middlebox chain; ``None`` is the chain-free, byte-identical default.
    """
    loop = EventLoop()
    path = build_network_path(loop, profile, seed=seed, path_mode=path_mode,
                              middleboxes=middleboxes)
    load = PageLoad(loop, path, stack, website, timeout=timeout, seed=seed)
    return load.run()
