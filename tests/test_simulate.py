"""Campaign orchestration details."""

import pytest

from repro.study.design import StudyPlan
from repro.study.simulate import (
    GROUP_ORDER,
    PAPER_TABLE3,
    CampaignResult,
    run_campaign,
)

from tests.conftest import SMALL_SITES


@pytest.fixture(scope="module")
def campaign(small_testbed):
    plan = StudyPlan(sites=SMALL_SITES)
    return run_campaign(small_testbed, plan, seed=5,
                        participants_scale=0.05)


class TestCampaign:
    def test_groups_covered(self, campaign):
        assert set(campaign.ab) == set(GROUP_ORDER)
        assert set(campaign.rating) == set(GROUP_ORDER)

    def test_filtered_subsets(self, campaign):
        for group in GROUP_ORDER:
            kept = campaign.ab_filtered[group]
            assert len(kept) <= len(campaign.ab[group].sessions)
            kept_ids = {s.participant_id for s in kept}
            all_ids = {s.participant_id
                       for s in campaign.ab[group].sessions}
            assert kept_ids <= all_ids

    def test_funnels_indexed(self, campaign):
        funnel = campaign.funnel("internet", "rating")
        assert funnel.group == "internet"
        with pytest.raises(KeyError):
            campaign.funnel("internet", "nonsense")

    def test_minimum_participants_floor(self, campaign):
        # scale 0.05 of lab's 35 would be < 2; the floor keeps it >= 10.
        assert len(campaign.ab["lab"].sessions) >= 10

    def test_deterministic(self, small_testbed):
        plan = StudyPlan(sites=SMALL_SITES)
        a = run_campaign(small_testbed, plan, seed=9,
                         participants_scale=0.03)
        b = run_campaign(small_testbed, plan, seed=9,
                         participants_scale=0.03)
        votes_a = [t.vote for s in a.ab["microworker"].sessions
                   for t in s.trials]
        votes_b = [t.vote for s in b.ab["microworker"].sessions
                   for t in s.trials]
        assert votes_a == votes_b

    def test_group_subset(self, small_testbed):
        plan = StudyPlan(sites=SMALL_SITES)
        partial = run_campaign(small_testbed, plan, seed=1,
                               participants_scale=0.03,
                               groups=("lab",))
        assert set(partial.ab) == {"lab"}
        assert len(partial.funnels) == 2


class TestPaperReference:
    def test_all_rows_present(self):
        groups = {g for g, _ in PAPER_TABLE3}
        assert groups == {"lab", "microworker", "internet"}
        studies = {s for _, s in PAPER_TABLE3}
        assert studies == {"ab", "rating"}

    def test_microworker_rating_row_matches_paper(self):
        assert PAPER_TABLE3[("microworker", "rating")] == \
            [1563, 1494, 1321, 1034, 733, 723, 661, 614]
