"""Streaming study pipeline: partials, merge algebra, report, serve."""

import io
import json

import pytest

from repro.cli import _parse_shard, serve_study_queries
from repro.study.design import StudyPlan
from repro.study.filtering import FILTER_RULES
from repro.study.pipeline import (
    ConditionIndex,
    StudyIndex,
    StudyPartial,
    _histogram_median,
    _key,
    build_partial,
    build_report,
    merge_partials,
)
from repro.study.simulate import (
    GROUP_ORDER,
    run_campaign,
    scaled_participants,
)

from tests.conftest import SMALL_SITES

SCALE = 0.05
SEED = 5


@pytest.fixture(scope="module")
def index(small_testbed):
    plan = StudyPlan(sites=SMALL_SITES)
    return ConditionIndex.from_testbed(small_testbed, plan)


@pytest.fixture(scope="module")
def plan():
    return StudyPlan(sites=SMALL_SITES)


@pytest.fixture(scope="module")
def partial(index, plan):
    return build_partial(index, plan, seed=SEED,
                         participants_scale=SCALE)


class TestConditionIndex:
    def test_covers_grid(self, index, plan):
        assert len(index) == len(plan.sites) * len(plan.networks) * \
            len(plan.stacks)
        assert index.websites == sorted(SMALL_SITES)

    def test_lookup_missing_is_loud(self, index):
        with pytest.raises(KeyError, match="no recording"):
            index.lookup("nosuch.example", "DSL", "TCP")

    def test_derived_plan_preserves_order(self, index):
        derived = index.plan()
        base = StudyPlan()
        assert derived.networks == base.networks
        assert derived.stacks == base.stacks
        assert derived.pairs == base.pairs
        assert set(derived.sites) == set(SMALL_SITES)

    def test_lowest_seed_wins(self):
        class FakeSummary:
            def __init__(self, si):
                self.website, self.network, self.stack = \
                    "w.example", "DSL", "TCP"
                self.selected_metrics = {
                    "SI": si, "FVC": si, "LVC": si, "VC85": si,
                    "PLT": si}
                self.video_duration = si

        index = ConditionIndex()
        index.add(7, FakeSummary(1.0))
        index.add(2, FakeSummary(2.0))  # lower seed replaces
        index.add(9, FakeSummary(3.0))  # higher seed is ignored
        assert index.lookup("w.example", "DSL", "TCP").si == 2.0


class TestPartialAgainstClassicCampaign:
    """The streaming pipeline must agree exactly with run_campaign."""

    @pytest.fixture(scope="class")
    def campaign(self, small_testbed, plan):
        return run_campaign(small_testbed, plan, seed=SEED,
                            participants_scale=SCALE)

    def test_funnels_identical(self, partial, campaign):
        for group in GROUP_ORDER:
            for study in ("ab", "rating"):
                assert partial.funnel(group, study).as_row() == \
                    campaign.funnel(group, study).as_row()

    def test_ab_votes_identical(self, partial, campaign):
        from collections import Counter

        reference = Counter()
        for group in GROUP_ORDER:
            for session in campaign.ab_filtered[group]:
                for trial in session.trials:
                    c = trial.condition
                    key = _key(group, c.website, c.network, c.stack_a,
                               c.stack_b)
                    reference[(key, trial.vote)] += 1
        for key, counts in partial.ab_votes.items():
            assert counts[0] == reference[(key, "a")]
            assert counts[1] == reference[(key, "same")]
            assert counts[2] == reference[(key, "b")]
        total = sum(sum(c[:3]) for _, c in partial.ab_votes.items())
        assert total == sum(reference.values())

    def test_rating_moments_identical(self, partial, campaign):
        import statistics

        reference = {}
        for group in GROUP_ORDER:
            for session in campaign.rating_filtered[group]:
                for trial in session.trials:
                    c = trial.condition
                    key = _key(group, trial.context, c.website,
                               c.network, c.stack)
                    cell = reference.setdefault(
                        key, {"speed": [], "quality": []})
                    cell["speed"].append(trial.speed_score)
                    cell["quality"].append(trial.quality_score)
        assert set(reference) == set(partial.rating)
        for key, cell in partial.rating.items():
            for which in ("speed", "quality"):
                values = reference[key][which]
                moments = cell[which]
                assert moments.count == len(values)
                assert moments.mean == pytest.approx(
                    statistics.fmean(values), abs=1e-9)

    def test_internet_medians_exact(self, partial, campaign):
        import statistics

        scores = {}
        for session in campaign.rating_filtered["internet"]:
            for trial in session.trials:
                scores.setdefault(trial.condition.key, []).append(
                    trial.speed_score)
        for key, counts in partial.histograms.items():
            _, website, network, stack = key.split("|")
            values = scores[(website, network, stack)]
            assert _histogram_median(counts) == \
                statistics.median(values)


class TestMergeAlgebra:
    @pytest.fixture(scope="class")
    def shards(self, index, plan):
        return [build_partial(index, plan, seed=SEED,
                              participants_scale=SCALE, shard=(i, 3),
                              block_size=8) for i in range(3)]

    @pytest.fixture(scope="class")
    def whole(self, index, plan):
        return build_partial(index, plan, seed=SEED,
                             participants_scale=SCALE, block_size=8)

    def _rebuild(self, shards):
        return [StudyPartial.from_state(s.to_state()) for s in shards]

    def test_merge_equals_sequential(self, shards, whole):
        merged = merge_partials(self._rebuild(shards))
        assert merged.funnels.to_json() == whole.funnels.to_json()
        assert merged.ab_votes.to_json() == whole.ab_votes.to_json()
        assert merged.histograms.to_json() == \
            whole.histograms.to_json()
        assert set(merged.rating) == set(whole.rating)
        for key, cell in whole.rating.items():
            for which in ("speed", "quality"):
                a, b = cell[which], merged.rating[key][which]
                assert a.count == b.count
                assert a.mean == pytest.approx(b.mean, abs=1e-9)
                assert a.m2 == pytest.approx(b.m2, abs=1e-6)

    def test_merge_order_independent(self, shards, whole):
        forward = merge_partials(self._rebuild(shards))
        backward = merge_partials(self._rebuild(shards)[::-1])
        assert forward.funnels.to_json() == backward.funnels.to_json()
        assert forward.ab_votes.to_json() == \
            backward.ab_votes.to_json()
        for key, cell in forward.rating.items():
            for which in ("speed", "quality"):
                assert cell[which].count == \
                    backward.rating[key][which].count

    def test_shard_union_recorded(self, shards):
        merged = merge_partials(self._rebuild(shards))
        assert merged.shards == [[0, 3], [1, 3], [2, 3]]

    def test_config_mismatch_rejected(self, index, plan, shards):
        other = build_partial(index, plan, seed=SEED + 1,
                              participants_scale=SCALE, shard=(0, 3),
                              block_size=8)
        with pytest.raises(ValueError, match="different configs"):
            merge_partials([self._rebuild(shards)[0], other])

    def test_state_round_trip(self, shards):
        state = shards[0].to_state()
        clone = StudyPartial.from_state(state)
        assert clone.to_state() == state

    def test_sealed_write_and_load(self, shards, tmp_path):
        path = tmp_path / "study_partials" / "w0.json"
        shards[0].write(path)
        loaded = StudyPartial.load(path)
        assert loaded.to_state() == shards[0].to_state()
        # A torn write (truncated JSON) is loud, not silent.
        path.write_text(path.read_text()[:40])
        with pytest.raises(ValueError, match="torn"):
            StudyPartial.load(path)

    def test_checksum_tamper_detected(self, shards, tmp_path):
        path = tmp_path / "w1.json"
        shards[0].write(path)
        record = json.loads(path.read_text())
        record["config"]["seed"] = 999
        path.write_text(json.dumps(record))
        with pytest.raises(ValueError, match="checksum"):
            StudyPartial.load(path)


class TestReport:
    def test_report_sections(self, partial, index):
        report = build_report(partial, index)
        assert len(report.funnels) == len(GROUP_ORDER) * 2
        assert report.ab_shares
        assert report.rating_cells
        assert report.agreement
        assert report.heatmap is not None
        text = report.render()
        assert "Table 3" in text
        assert "Figure 4" in text
        assert "Figure 6" in text

    def test_funnel_width(self, partial):
        row = partial.funnel("microworker", "ab").as_row()
        assert len(row) == len(FILTER_RULES) + 1
        # Funnels are monotone non-increasing.
        assert all(a >= b for a, b in zip(row, row[1:]))


class TestHistogramMedian:
    @pytest.mark.parametrize("values", [
        [10], [10, 70], [30, 30, 40], [10, 20, 30, 40],
        [70] * 5 + [10] * 5, list(range(10, 71)),
    ])
    def test_matches_statistics_median(self, values):
        import statistics

        counts = [0] * 61
        for value in values:
            counts[value - 10] += 1
        assert _histogram_median(counts) == statistics.median(values)

    def test_empty(self):
        assert _histogram_median([0] * 61) is None


class TestServe:
    @pytest.fixture(scope="class")
    def study_index(self, index, partial):
        return StudyIndex(index, partial)

    def test_mos_matches_partial(self, study_index, partial):
        key, cell = next(
            (key, cell) for key, cell in partial.rating.items()
            if key.startswith("microworker|free_time"))
        _, context, website, network, stack = key.split("|")
        response = study_index.query({
            "op": "mos", "website": website, "network": network,
            "stack": stack, "context": context,
        })
        assert response["ok"]
        assert response["mos"] == pytest.approx(cell["speed"].mean)
        assert response["n"] == cell["speed"].count
        assert "predicted_mos" in response

    def test_ab_shares_sum_to_one(self, study_index, partial):
        key, _ = next(iter(partial.ab_votes.items()))
        group, website, network, stack_a, stack_b = key.split("|")
        response = study_index.query({
            "op": "ab", "group": group, "network": network,
            "stack_a": stack_a, "stack_b": stack_b,
        })
        assert response["ok"]
        assert sum(response["shares"].values()) == pytest.approx(1.0)
        assert response["n"] == sum(response["votes"].values())

    def test_ab_reversed_pair_swaps_sides(self, study_index, partial):
        """Cells are stored in plan orientation; the reversed query
        must answer with the a/b tallies swapped, not a KeyError."""
        key, _ = next(iter(partial.ab_votes.items()))
        group, website, network, stack_a, stack_b = key.split("|")
        forward = study_index.query({
            "op": "ab", "group": group, "network": network,
            "stack_a": stack_a, "stack_b": stack_b,
        })
        reverse = study_index.query({
            "op": "ab", "group": group, "network": network,
            "stack_a": stack_b, "stack_b": stack_a,
        })
        assert reverse["ok"]
        assert reverse["votes"]["a"] == forward["votes"]["b"]
        assert reverse["votes"]["b"] == forward["votes"]["a"]
        assert reverse["votes"]["same"] == forward["votes"]["same"]
        assert reverse["n"] == forward["n"]

    def test_unknown_condition_is_error(self, study_index):
        response = study_index.query({
            "op": "mos", "website": "nosuch.example",
            "network": "DSL", "stack": "TCP",
        })
        assert response["ok"] is False
        assert "unknown condition" in response["error"]

    def test_unknown_op_is_error(self, study_index):
        response = study_index.query({"op": "frobnicate"})
        assert response["ok"] is False

    def test_serve_loop_round_trip(self, study_index):
        requests = "\n".join([
            json.dumps({"op": "ping"}),
            "",
            "not json",
            json.dumps({"op": "condition",
                        "website": sorted(SMALL_SITES)[0],
                        "network": "DSL", "stack": "TCP"}),
            "quit",
            json.dumps({"op": "ping"}),  # after quit: never answered
        ])
        out = io.StringIO()
        answered = serve_study_queries(
            study_index, io.StringIO(requests), out)
        responses = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        assert answered == 3
        assert responses[0]["ok"] is True
        assert responses[1]["ok"] is False
        assert responses[2]["ok"] is True
        assert responses[2]["metrics"]["SI"] > 0

    def test_warm_query_latency(self, study_index):
        """The paper-scale serve budget is <10 ms per warm query; the
        tier-1 bound is generous for loaded CI machines."""
        out = io.StringIO()
        requests = "\n".join(json.dumps({"op": "ping"})
                             for _ in range(50))
        serve_study_queries(study_index, io.StringIO(requests), out)
        latencies = [json.loads(line)["latency_ms"]
                     for line in out.getvalue().splitlines()]
        assert sorted(latencies)[len(latencies) // 2] < 50.0


class TestScaledParticipants:
    def test_lab_floor_applies_to_lab_only(self):
        # Regression: the min-10 floor exists so the tiny lab group
        # stays statistically usable at small scales; it must not
        # inflate the crowd groups.
        assert scaled_participants(35, 0.05, "lab") == 10
        assert scaled_participants(487, 0.005, "microworker") == 2
        assert scaled_participants(218, 0.005, "internet") == 1
        assert scaled_participants(487, 1.0, "microworker") == 487

    def test_scale_up(self):
        assert scaled_participants(487, 10.0, "microworker") == 4870


class TestShardParsing:
    def test_valid(self):
        assert _parse_shard("0:1") == (0, 1)
        assert _parse_shard("2:5") == (2, 5)

    @pytest.mark.parametrize("text", ["", "3", "a:b", "1:0", "2:2",
                                      "-1:3"])
    def test_invalid(self, text):
        with pytest.raises(SystemExit):
            _parse_shard(text)
