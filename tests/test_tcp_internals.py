"""White-box tests of TCP sender/receiver internals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netem.engine import EventLoop
from repro.transport.config import TCP, TCP_PLUS
from repro.transport.tcp import (
    AUTOTUNE_INITIAL_BYTES,
    TcpReceiver,
    TcpSegment,
    TcpSender,
)


def make_sender(stack=TCP, sent_log=None):
    loop = EventLoop()
    log = sent_log if sent_log is not None else []

    def send_packet(size, segment):
        log.append((loop.now, size, segment))

    sender = TcpSender(loop, stack, send_packet, "s2c", bdp_hint=75_000)
    return loop, sender, log


def make_receiver(stack=TCP, acks=None, delivered=None, metas=None):
    loop = EventLoop()
    ack_log = acks if acks is not None else []
    data_log = delivered if delivered is not None else []
    receiver = TcpReceiver(
        loop, stack, ack_log.append, "s2c", bdp_hint=75_000,
        on_data=lambda total, ms: data_log.append((total, ms)),
        metas=metas if metas is not None else {},
    )
    return loop, receiver, ack_log, data_log


def ack(sender, cumulative, sack_blocks=(), rwnd=10_000_000):
    sender.on_ack(TcpSegment(kind="ack", direction="s2c", ack=cumulative,
                             sack_blocks=tuple(sack_blocks), rwnd=rwnd))


def data(receiver, seq, length):
    receiver.on_segment(TcpSegment(kind="data", direction="s2c", seq=seq,
                                   length=length))


class TestSenderWindowing:
    def test_initial_window_respected(self):
        loop, sender, log = make_sender(stack=TCP)
        sender.write(1_000_000)
        loop.run(until=0.5)
        sent_bytes = sum(seg.length for _, _, seg in log)
        assert sent_bytes <= TCP.initial_window_segments * TCP.mss

    def test_rwnd_limits_new_data(self):
        loop, sender, log = make_sender(stack=TCP)
        sender._peer_rwnd = 3 * TCP.mss
        sender.write(1_000_000)
        loop.run(until=0.5)
        sent_bytes = sum(seg.length for _, _, seg in log)
        assert sent_bytes <= 3 * TCP.mss

    def test_ack_opens_window(self):
        loop, sender, log = make_sender(stack=TCP)
        sender.write(1_000_000)
        loop.run(until=0.1)
        before = len(log)
        ack(sender, TCP.mss * 4)
        loop.run(until=0.2)
        assert len(log) > before

    def test_backlog_accounting(self):
        loop, sender, log = make_sender()
        sender.write(500_000)
        loop.run(until=0.1)
        assert sender.backlog == 500_000 - sender.snd_nxt

    def test_all_acked(self):
        loop, sender, log = make_sender()
        sender.write(5_000)
        loop.run(until=0.1)
        assert not sender.all_acked
        ack(sender, 5_000)
        assert sender.all_acked


class TestSenderLossDetection:
    def _fill(self, sender, loop, amount=200_000):
        sender.write(amount)
        loop.run(until=0.1)

    def test_sack_hole_marked_lost(self):
        loop, sender, log = make_sender()
        self._fill(sender, loop)
        mss = TCP.mss
        # Hole at [0, mss); 4 segments SACKed above. The hole is marked
        # lost and (window permitting) retransmitted right away.
        ack(sender, 0, sack_blocks=[(mss, 5 * mss)])
        assert sender.stats.fast_retransmits >= 1
        loop.run(until=0.15)
        retx = [seg for _, _, seg in log if seg.is_retransmit]
        assert retx and retx[0].seq == 0

    def test_small_sack_not_enough_for_loss(self):
        loop, sender, log = make_sender()
        self._fill(sender, loop)
        mss = TCP.mss
        ack(sender, 0, sack_blocks=[(mss, 2 * mss)])  # < 3 MSS above hole
        assert sender._lost.covered_bytes() == 0

    def test_retransmission_sent_once_until_timeout(self):
        loop, sender, log = make_sender()
        self._fill(sender, loop)
        mss = TCP.mss
        ack(sender, 0, sack_blocks=[(mss, 5 * mss)])
        loop.run(until=0.15)
        retx = [seg for _, _, seg in log if seg.is_retransmit]
        first_count = len(retx)
        assert first_count >= 1
        # A second identical SACK must not trigger a duplicate resend.
        ack(sender, 0, sack_blocks=[(mss, 5 * mss)])
        loop.run(until=0.16)
        retx_after = [seg for _, _, seg in log if seg.is_retransmit]
        assert len(retx_after) == first_count

    def test_rto_collapses_and_retransmits(self):
        loop, sender, log = make_sender()
        self._fill(sender, loop, amount=30_000)
        loop.run(until=3.0)  # no ACKs ever: RTO must fire
        assert sender.stats.rto_count >= 1
        retx = [seg for _, _, seg in log if seg.is_retransmit]
        assert retx

    def test_cumulative_ack_clears_loss_state(self):
        loop, sender, log = make_sender()
        self._fill(sender, loop)
        mss = TCP.mss
        ack(sender, 0, sack_blocks=[(mss, 5 * mss)])
        ack(sender, 5 * mss)
        assert sender._lost.covered_bytes() == 0
        assert sender._retx_in_flight.covered_bytes() == 0


class TestReceiver:
    def test_in_order_delivery(self):
        loop, receiver, acks, delivered = make_receiver()
        data(receiver, 0, 1000)
        data(receiver, 1000, 1000)
        assert delivered[-1][0] == 2000

    def test_out_of_order_buffered(self):
        loop, receiver, acks, delivered = make_receiver()
        data(receiver, 1000, 1000)
        assert not delivered  # nothing contiguous yet
        data(receiver, 0, 1000)
        assert delivered[-1][0] == 2000

    def test_immediate_ack_on_out_of_order(self):
        loop, receiver, acks, delivered = make_receiver()
        data(receiver, 1000, 1000)
        assert acks  # duplicate-ACK behaviour
        assert acks[-1].ack == 0
        assert acks[-1].sack_blocks == ((1000, 2000),)

    def test_ack_every_second_packet(self):
        loop, receiver, acks, delivered = make_receiver()
        data(receiver, 0, 1000)
        assert not acks  # delayed
        data(receiver, 1000, 1000)
        assert len(acks) == 1
        assert acks[0].ack == 2000

    def test_delayed_ack_timer_fires(self):
        loop, receiver, acks, delivered = make_receiver()
        data(receiver, 0, 1000)
        loop.run(until=0.1)
        assert len(acks) == 1

    def test_sack_block_limit(self):
        loop, receiver, acks, delivered = make_receiver()
        # Five separated blocks; TCP advertises only the newest three.
        for start in (2000, 6000, 10_000, 14_000, 18_000):
            data(receiver, start, 1000)
        assert len(acks[-1].sack_blocks) == 3
        assert acks[-1].sack_blocks[0] == (18_000, 19_000)

    def test_meta_dispatch(self):
        metas = {1500: ["first"], 3000: ["second"]}
        loop, receiver, acks, delivered = make_receiver(metas=metas)
        data(receiver, 0, 1500)
        data(receiver, 1500, 1500)
        flat = [m for _, ms in delivered for m in ms]
        assert flat == ["first", "second"]

    def test_autotuning_grows_buffer(self):
        loop, receiver, acks, delivered = make_receiver(stack=TCP)
        assert receiver.buffer_cap == AUTOTUNE_INITIAL_BYTES
        offset = 0
        # Deliver faster than half the initial buffer per RTT window so
        # dynamic right-sizing must kick in.
        for _ in range(100):
            for _ in range(5):
                data(receiver, offset, 1460)
                offset += 1460
            loop.run(until=loop.now + 0.011)
        assert receiver.buffer_cap > AUTOTUNE_INITIAL_BYTES

    def test_tuned_buffer_fixed(self):
        loop, receiver, acks, delivered = make_receiver(stack=TCP_PLUS)
        initial = receiver.buffer_cap
        assert initial >= 256 * 1024
        offset = 0
        for _ in range(50):
            data(receiver, offset, 1460)
            offset += 1460
        assert receiver.buffer_cap == initial


class TestReceiverProperties:
    @given(st.permutations(list(range(10))))
    @settings(max_examples=60, deadline=None)
    def test_any_arrival_order_delivers_everything(self, order):
        loop, receiver, acks, delivered = make_receiver()
        for index in order:
            data(receiver, index * 1000, 1000)
        assert receiver.delivered == 10_000
        totals = [t for t, _ in delivered]
        assert totals == sorted(totals)

    @given(st.lists(st.integers(0, 19), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_duplicates_are_harmless(self, indices):
        loop, receiver, acks, delivered = make_receiver()
        for index in indices:
            data(receiver, index * 1000, 1000)
        expected = len({i for i in indices if self._contiguous(indices, i)})
        # Delivered watermark equals the longest prefix of received data.
        received = {i for i in indices}
        prefix = 0
        while prefix in received:
            prefix += 1
        assert receiver.delivered == prefix * 1000

    @staticmethod
    def _contiguous(indices, i):
        return all(j in indices for j in range(i))
