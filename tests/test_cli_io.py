"""CLI commands and website JSON import/export."""

import json

import pytest

from repro.cli import build_parser, main
from repro.web.corpus import build_site
from repro.web.io import (
    load_website,
    save_website,
    website_from_dict,
    website_to_dict,
)


class TestWebsiteIO:
    def test_round_trip(self, tmp_path):
        site = build_site("gov.uk", seed=0)
        path = tmp_path / "gov.json"
        save_website(site, path)
        restored = load_website(path)
        assert restored.name == site.name
        assert restored.summary() == site.summary()
        assert [(o.object_id, o.size, o.host) for o in restored.objects] \
            == [(o.object_id, o.size, o.host) for o in site.objects]

    def test_dict_round_trip_preserves_render_attrs(self):
        site = build_site("wikipedia.org", seed=1)
        restored = website_from_dict(website_to_dict(site))
        for original, copy in zip(site.objects, restored.objects):
            assert original.render_weight == copy.render_weight
            assert original.render_blocking == copy.render_blocking
            assert original.progressive == copy.progressive

    def test_schema_version_checked(self):
        data = website_to_dict(build_site("gov.uk", seed=0))
        data["schema"] = 99
        with pytest.raises(ValueError):
            website_from_dict(data)

    def test_invalid_payload_rejected_by_model(self):
        data = website_to_dict(build_site("gov.uk", seed=0))
        data["objects"][0]["size"] = 0
        with pytest.raises(ValueError):
            website_from_dict(data)


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "QUIC+BBR" in out

    def test_sites(self, capsys):
        assert main(["sites"]) == 0
        out = capsys.readouterr().out
        assert "wikipedia.org" in out
        assert out.count(".example") >= 20

    def test_load(self, capsys):
        assert main(["load", "gov.uk", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "DSL" in out and "MSS" in out
        assert "QUIC+BBR" in out

    def test_export(self, tmp_path, capsys):
        path = tmp_path / "site.json"
        assert main(["export", "apache.org", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["name"] == "apache.org"

    def test_unknown_site_rejected(self):
        with pytest.raises(SystemExit):
            main(["load", "not-a-site.example"])

    def test_campaign_runs_and_resumes(self, tmp_path, capsys):
        argv = ["campaign", "--sites", "gov.uk", "--networks", "DSL",
                "--stacks", "TCP", "--runs", "1", "--processes", "1",
                "--cache-dir", str(tmp_path), "--name", "t"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 conditions" in out
        assert "simulated" in out
        # Re-running the same spec is a pure resume.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resumed" in out

    def test_campaign_loss_sweep_axis(self, tmp_path, capsys):
        assert main(["campaign", "--sites", "gov.uk", "--networks", "DSL",
                     "--loss-sweep", "DSL:0.02", "--stacks", "TCP",
                     "--runs", "1", "--processes", "1", "--quiet",
                     "--cache-dir", str(tmp_path), "--name", "t"]) == 0
        out = capsys.readouterr().out
        assert "2 conditions" in out

    def test_campaign_bad_loss_sweep_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "--loss-sweep", "DSL-nope", "--runs", "1",
                  "--cache-dir", str(tmp_path)])

    def test_campaign_unknown_network_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "--networks", "BOGUS", "--runs", "1",
                  "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["campaign", "--loss-sweep", "BOGUS:0.01", "--runs", "1",
                  "--cache-dir", str(tmp_path)])

    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("tables", "sites", "load", "sweep", "campaign",
                        "study", "export"):
            assert command in text
