"""CLI commands and website JSON import/export."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.web.corpus import build_site
from repro.web.io import (
    load_website,
    save_website,
    website_from_dict,
    website_to_dict,
)


class TestWebsiteIO:
    def test_round_trip(self, tmp_path):
        site = build_site("gov.uk", seed=0)
        path = tmp_path / "gov.json"
        save_website(site, path)
        restored = load_website(path)
        assert restored.name == site.name
        assert restored.summary() == site.summary()
        assert [(o.object_id, o.size, o.host) for o in restored.objects] \
            == [(o.object_id, o.size, o.host) for o in site.objects]

    def test_dict_round_trip_preserves_render_attrs(self):
        site = build_site("wikipedia.org", seed=1)
        restored = website_from_dict(website_to_dict(site))
        for original, copy in zip(site.objects, restored.objects):
            assert original.render_weight == copy.render_weight
            assert original.render_blocking == copy.render_blocking
            assert original.progressive == copy.progressive

    def test_schema_version_checked(self):
        data = website_to_dict(build_site("gov.uk", seed=0))
        data["schema"] = 99
        with pytest.raises(ValueError):
            website_from_dict(data)

    def test_invalid_payload_rejected_by_model(self):
        data = website_to_dict(build_site("gov.uk", seed=0))
        data["objects"][0]["size"] = 0
        with pytest.raises(ValueError):
            website_from_dict(data)


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "QUIC+BBR" in out

    def test_sites(self, capsys):
        assert main(["sites"]) == 0
        out = capsys.readouterr().out
        assert "wikipedia.org" in out
        assert out.count(".example") >= 20

    def test_load(self, capsys):
        assert main(["load", "gov.uk", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "DSL" in out and "MSS" in out
        assert "QUIC+BBR" in out

    def test_export(self, tmp_path, capsys):
        path = tmp_path / "site.json"
        assert main(["export", "apache.org", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["name"] == "apache.org"

    def test_unknown_site_rejected(self):
        with pytest.raises(SystemExit):
            main(["load", "not-a-site.example"])

    def test_campaign_runs_and_resumes(self, tmp_path, capsys):
        argv = ["campaign", "--sites", "gov.uk", "--networks", "DSL",
                "--stacks", "TCP", "--runs", "1", "--processes", "1",
                "--cache-dir", str(tmp_path), "--name", "t"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 conditions" in out
        assert "simulated" in out
        # Re-running the same spec is a pure resume.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resumed" in out

    def test_campaign_report_renders_pivot_table(self, tmp_path, capsys):
        """Tier-1 smoke: 2 stacks x 2 seeds x 1 network campaign, then
        --report --format md must render a non-empty pivot with CI
        columns (mean ±halfwidth cells)."""
        argv = ["campaign", "--sites", "gov.uk", "--networks", "DSL",
                "--stacks", "TCP", "QUIC", "--seeds", "0", "1",
                "--runs", "1", "--processes", "1", "--quiet",
                "--cache-dir", str(tmp_path), "--name", "rep",
                "--report", "--format", "md"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        # Markdown pivot: header row carries the stack columns...
        assert "| network | TCP | QUIC |" in out
        # ...and every body cell is a mean ± CI halfwidth.
        body = [l for l in out.splitlines()
                if l.startswith("| DSL")]
        assert body and all("±" in line for line in body)
        assert "SI mean ±99% CI" in out

    def test_campaign_report_posthoc_from_dir(self, tmp_path, capsys):
        """--campaign-dir renders the same report from the finished
        directory without re-running (no progress/summary lines)."""
        run_argv = ["campaign", "--sites", "gov.uk", "--networks", "DSL",
                    "--stacks", "TCP", "--runs", "1", "--processes", "1",
                    "--quiet", "--cache-dir", str(tmp_path),
                    "--name", "ph"]
        assert main(run_argv) == 0
        out = capsys.readouterr().out
        manifest = next(l.split("manifest: ", 1)[1]
                        for l in out.splitlines() if "manifest: " in l)
        campaign_dir = str(Path(manifest).parent)
        assert main(["campaign", "--campaign-dir", campaign_dir,
                     "--cache-dir", str(tmp_path),
                     "--report", "--format", "text"]) == 0
        out = capsys.readouterr().out
        assert "DSL" in out and "±" in out
        assert "conditions/s" not in out  # nothing was run

    def test_campaign_report_refuses_stale_dir(self, tmp_path, capsys,
                                               monkeypatch):
        """A dir recorded under an older behaviour version errors
        cleanly; --allow-stale is the explicit escape hatch."""
        import repro.testbed.harness as harness_mod

        run_argv = ["campaign", "--sites", "gov.uk", "--networks", "DSL",
                    "--stacks", "TCP", "--runs", "1", "--processes", "1",
                    "--quiet", "--cache-dir", str(tmp_path),
                    "--name", "stale"]
        assert main(run_argv) == 0
        out = capsys.readouterr().out
        manifest = next(l.split("manifest: ", 1)[1]
                        for l in out.splitlines() if "manifest: " in l)
        campaign_dir = str(Path(manifest).parent)
        monkeypatch.setattr(harness_mod, "SIM_BEHAVIOUR_VERSION",
                            harness_mod.SIM_BEHAVIOUR_VERSION + 1)
        report_argv = ["campaign", "--campaign-dir", campaign_dir,
                       "--cache-dir", str(tmp_path), "--report"]
        with pytest.raises(SystemExit, match="--allow-stale"):
            main(report_argv)
        capsys.readouterr()
        assert main(report_argv + ["--allow-stale"]) == 0
        assert "±" in capsys.readouterr().out

    def test_campaign_bad_pivot_axis_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "--report", "--pivot", "network,bogus",
                  "--runs", "1", "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["campaign", "--report", "--pivot", "network",
                  "--runs", "1", "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit):  # duplicate axis
            main(["campaign", "--report", "--pivot", "network,network",
                  "--runs", "1", "--cache-dir", str(tmp_path)])

    def test_campaign_bad_report_metric_rejected(self, tmp_path):
        """Unknown metrics must fail at parse time, not mid-sweep."""
        with pytest.raises(SystemExit):
            main(["campaign", "--report", "--report-metric", "bogus",
                  "--runs", "1", "--cache-dir", str(tmp_path)])

    def test_campaign_bad_confidence_rejected(self, tmp_path):
        for bad in ("1.5", "0", "-1"):
            with pytest.raises(SystemExit):
                main(["campaign", "--report", "--confidence", bad,
                      "--runs", "1", "--cache-dir", str(tmp_path)])

    def test_campaign_live_json_report_is_pure_stdout(self, tmp_path,
                                                      capsys):
        """--report --format json must leave stdout machine-parseable;
        banner/progress lines go to stderr."""
        assert main(["campaign", "--sites", "gov.uk", "--networks",
                     "DSL", "--stacks", "TCP", "--runs", "1",
                     "--processes", "1", "--cache-dir", str(tmp_path),
                     "--name", "pj", "--report", "--format",
                     "json"]) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # whole stdout is one document
        assert doc["metric"] == "SI"
        assert "conditions" in captured.err  # banner moved to stderr

    def test_campaign_posthoc_wrong_cache_dir_errors(self, tmp_path,
                                                     capsys):
        """A manifest whose recordings are all absent from the cache is
        an error, not an empty report."""
        run_argv = ["campaign", "--sites", "gov.uk", "--networks", "DSL",
                    "--stacks", "TCP", "--runs", "1", "--processes", "1",
                    "--quiet", "--cache-dir", str(tmp_path / "cache"),
                    "--name", "wc"]
        assert main(run_argv) == 0
        out = capsys.readouterr().out
        manifest = next(l.split("manifest: ", 1)[1]
                        for l in out.splitlines() if "manifest: " in l)
        empty = tmp_path / "empty-cache"
        empty.mkdir()
        assert main(["campaign", "--campaign-dir",
                     str(Path(manifest).parent), "--cache-dir",
                     str(empty), "--report"]) == 1
        err = capsys.readouterr().err
        assert "none were found in the cache" in err

    def test_campaign_loss_sweep_axis(self, tmp_path, capsys):
        assert main(["campaign", "--sites", "gov.uk", "--networks", "DSL",
                     "--loss-sweep", "DSL:0.02", "--stacks", "TCP",
                     "--runs", "1", "--processes", "1", "--quiet",
                     "--cache-dir", str(tmp_path), "--name", "t"]) == 0
        out = capsys.readouterr().out
        assert "2 conditions" in out

    def test_campaign_bad_loss_sweep_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "--loss-sweep", "DSL-nope", "--runs", "1",
                  "--cache-dir", str(tmp_path)])

    def test_campaign_unknown_network_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "--networks", "BOGUS", "--runs", "1",
                  "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["campaign", "--loss-sweep", "BOGUS:0.01", "--runs", "1",
                  "--cache-dir", str(tmp_path)])

    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("tables", "sites", "load", "sweep", "campaign",
                        "study", "export"):
            assert command in text
