"""Campaign orchestrator: specs, resume, failure policy, cache safety."""

import json
import multiprocessing
import os
import signal
import time

import pytest

import repro.testbed.campaign as campaign_mod
import repro.testbed.harness as harness_mod
from repro.netem.profiles import DSL, trace_profile, with_loss
from repro.netem.trace import constant_rate_trace
from repro.testbed.campaign import (
    Campaign,
    CampaignError,
    CampaignSpec,
    Progress,
    run_campaign_spec,
)
from repro.testbed.harness import RecordingCache, Testbed

SMALL = dict(sites=["gov.uk"], networks=["DSL"], stacks=["TCP", "QUIC"],
             seeds=[5], runs=2)


class TestSpec:
    def test_axis_product(self):
        spec = CampaignSpec(sites=["a", "b"], networks=["DSL", "LTE"],
                            stacks=["TCP"], seeds=[0, 1, 2], runs=1)
        conditions = spec.conditions()
        assert len(conditions) == 2 * 2 * 1 * 3
        assert conditions[0].website == "a"
        assert {c.seed for c in conditions} == {0, 1, 2}

    def test_defaults_are_paper_grid(self):
        spec = CampaignSpec()
        assert len(spec.conditions()) == 36 * 4 * 5

    def test_object_axes(self):
        lossy = with_loss(DSL, 0.02)
        spec = CampaignSpec(sites=["gov.uk"], networks=[DSL, lossy],
                            stacks=["TCP"], runs=1)
        profiles = {c.profile.name for c in spec.conditions()}
        assert profiles == {"DSL", "DSL-loss2"}

    def test_fingerprint_changes_with_any_parameter(self):
        base = CampaignSpec(**SMALL)
        assert base.fingerprint() == CampaignSpec(**SMALL).fingerprint()
        changed = dict(SMALL, runs=3)
        assert base.fingerprint() != CampaignSpec(**changed).fingerprint()
        changed = dict(SMALL, networks=[with_loss(DSL, 0.01)])
        assert base.fingerprint() != CampaignSpec(**changed).fingerprint()

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(runs=0)
        with pytest.raises(ValueError):
            CampaignSpec(seeds=[])


class TestRunAndResume:
    def test_inline_matches_sequential_sweep_bytes(self, tmp_path):
        spec = CampaignSpec(name="eq", **SMALL)
        campaign = Campaign(spec, cache_dir=tmp_path / "camp")
        result = campaign.run(processes=1)
        assert result.ok and result.counts == {"simulated": 2}

        bed = Testbed(runs=2, seed=5, cache_dir=str(tmp_path / "seq"))
        bed.sweep(sites=["gov.uk"], networks=["DSL"],
                  stacks=["TCP", "QUIC"])
        seq = sorted((tmp_path / "seq").glob("*.json"))
        camp = sorted((tmp_path / "camp").glob("*.json"))
        assert [p.name for p in seq] == [p.name for p in camp]
        for a, b in zip(seq, camp):
            assert a.read_bytes() == b.read_bytes()

    def test_resume_skips_finished_conditions(self, tmp_path, monkeypatch):
        spec = CampaignSpec(name="resume", **SMALL)
        produced = []
        real_produce = harness_mod.produce_summary

        def counting_produce(website, profile, stack, **kwargs):
            produced.append((website, profile.name, stack.name))
            return real_produce(website, profile, stack, **kwargs)

        monkeypatch.setattr(campaign_mod, "produce_summary",
                            counting_produce)

        # Interrupt the campaign after the first condition lands.
        def interrupt(event: Progress) -> None:
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            Campaign(spec, cache_dir=tmp_path).run(
                processes=1, progress=interrupt)
        assert len(produced) == 1

        # Same spec, fresh Campaign: finishes without re-simulating.
        result = Campaign(spec, cache_dir=tmp_path).run(processes=1)
        assert result.ok
        assert len(produced) == 2  # only the second condition was produced
        statuses = sorted(r.status for r in result.results)
        # The interrupted condition was stored in the cache before the
        # manifest append ran, so it comes back as cached or resumed.
        assert statuses in (["cached", "simulated"],
                            ["resumed", "simulated"])

    def test_rerun_is_pure_resume(self, tmp_path):
        spec = CampaignSpec(name="rerun", **SMALL)
        first = run_campaign_spec(spec, cache_dir=tmp_path, processes=1)
        assert first.counts == {"simulated": 2}
        second = run_campaign_spec(spec, cache_dir=tmp_path, processes=1)
        assert second.counts == {"resumed": 2}

    def test_shared_cache_means_no_resimulation(self, tmp_path):
        # A different campaign (different manifest) over the same
        # conditions hits the content-addressed cache.
        spec_a = CampaignSpec(name="a", **SMALL)
        spec_b = CampaignSpec(name="b", **SMALL)
        run_campaign_spec(spec_a, cache_dir=tmp_path, processes=1)
        result = run_campaign_spec(spec_b, cache_dir=tmp_path, processes=1)
        assert result.counts == {"cached": 2}

    def test_progress_events(self, tmp_path):
        spec = CampaignSpec(name="prog", **SMALL)
        events = []
        run_campaign_spec(spec, cache_dir=tmp_path, processes=1,
                          progress=events.append)
        assert [e.done for e in events] == [1, 2]
        assert all(e.total == 2 for e in events)
        assert events[-1].eta_s == pytest.approx(0.0)

    def test_summaries_in_sweep_order(self, tmp_path):
        spec = CampaignSpec(name="order", **SMALL)
        campaign = Campaign(spec, cache_dir=tmp_path)
        campaign.run(processes=1)
        summaries = [s for _, s in campaign.iter_summaries()]
        assert [s.stack for s in summaries] == ["TCP", "QUIC"]

    def test_pruned_cache_resimulated_despite_manifest(self, tmp_path):
        """A manifest 'ok' whose recording was deleted must re-simulate,
        not claim success over a missing file."""
        spec = CampaignSpec(name="pruned", **SMALL)
        campaign = Campaign(spec, cache_dir=tmp_path)
        campaign.run(processes=1)
        for recording in tmp_path.glob("*.json"):
            recording.unlink()
        result = Campaign(spec, cache_dir=tmp_path).run(processes=1)
        assert result.counts == {"simulated": 2}
        assert len(list(campaign.iter_summaries())) == 2

    def test_manifest_tolerates_torn_line(self, tmp_path):
        spec = CampaignSpec(name="torn", **SMALL)
        campaign = Campaign(spec, cache_dir=tmp_path)
        campaign.run(processes=1)
        with open(campaign.manifest_path, "a") as handle:
            handle.write('{"fingerprint": "abc", "status"')  # killed mid-write
        result = Campaign(spec, cache_dir=tmp_path).run(processes=1)
        assert result.ok

    def test_trace_profile_axis(self, tmp_path):
        cell = trace_profile("steady4", constant_rate_trace(4.0),
                             min_rtt_ms=60.0)
        spec = CampaignSpec(sites=["gov.uk"], networks=[cell],
                            stacks=["TCP"], runs=1, name="trace")
        result = run_campaign_spec(spec, cache_dir=tmp_path, processes=1)
        assert result.ok
        _, summary = next(Campaign(spec,
                                   cache_dir=tmp_path).iter_summaries())
        assert summary.network == "steady4"
        assert summary.selected_metrics["PLT"] > 0


class TestBatching:
    """Batched worker tasks: same results, manifest and ordering."""

    GRID = dict(sites=["gov.uk"], networks=["DSL"],
                stacks=["TCP", "QUIC"], seeds=[5, 6], runs=2)

    def test_worker_batch_settles_each_condition(self, tmp_path):
        spec = CampaignSpec(name="batch-worker", **self.GRID)
        conditions = spec.conditions()
        campaign_mod._init_worker(str(tmp_path))
        results = campaign_mod._run_condition_batch(
            list(enumerate(conditions)))
        assert [index for index, _, _ in results] == \
            list(range(len(conditions)))
        assert all(error is None for _, error, _ in results)
        cache = RecordingCache(tmp_path)
        for condition in conditions:
            assert cache.load(condition.label,
                              condition.fingerprint()) is not None

    def test_batched_run_matches_unbatched_cache_bytes(self, tmp_path):
        spec = CampaignSpec(name="batch-eq", **self.GRID)
        a = Campaign(spec, cache_dir=tmp_path / "unbatched")
        result_a = a.run(processes=1)
        b = Campaign(spec, cache_dir=tmp_path / "batched")
        result_b = b.run(processes=2, batch_size=2)
        assert result_a.ok and result_b.ok
        names_a = sorted(p.name for p in (tmp_path / "unbatched").glob("*.json"))
        names_b = sorted(p.name for p in (tmp_path / "batched").glob("*.json"))
        assert names_a == names_b
        for name in names_a:
            assert (tmp_path / "unbatched" / name).read_bytes() == \
                (tmp_path / "batched" / name).read_bytes()
        # Result ordering follows sweep order regardless of batching.
        assert [r.condition.label for r in result_a.results] == \
            [r.condition.label for r in result_b.results]

    def test_batched_resume_from_manifest(self, tmp_path):
        spec = CampaignSpec(name="batch-resume", **self.GRID)
        first = Campaign(spec, cache_dir=tmp_path).run(processes=2,
                                                       batch_size=2)
        assert first.ok
        second = Campaign(spec, cache_dir=tmp_path).run(processes=2,
                                                        batch_size=2)
        assert second.counts == {"resumed": len(second.results)}

    def test_worker_results_independent_of_parent_state(self, tmp_path):
        """Campaign bytes must not depend on what the parent simulated.

        Flow ids feed handshake-retry jitter (visible on lossy
        networks). They are allocated per load now, so forked workers —
        which inherit the parent's whole interpreter state — and inline
        runs (processes=1, same process as the pollution) must both
        store the same bytes as a fresh process, with no reset shim.
        """
        from repro.browser.engine import load_page
        from repro.netem.profiles import network_by_name
        from repro.transport.config import stack_by_name
        from repro.web.corpus import build_site

        spec = CampaignSpec(name="fresh-baseline", sites=["gov.uk"],
                            networks=["MSS"], stacks=["TCP", "QUIC"],
                            seeds=[0], runs=2)
        Campaign(spec, cache_dir=tmp_path / "clean").run(processes=2)
        # Pollute the parent exactly like a prior in-process sweep:
        # real page loads that used to advance the global counters.
        site = build_site("gov.uk", seed=0)
        for stack in ("TCP", "QUIC"):
            load_page(site, network_by_name("MSS"), stack_by_name(stack),
                      seed=11)
        Campaign(spec, cache_dir=tmp_path / "dirty").run(processes=2)
        Campaign(spec, cache_dir=tmp_path / "inline").run(processes=1)
        clean = sorted((tmp_path / "clean").glob("*.json"))
        dirty = sorted((tmp_path / "dirty").glob("*.json"))
        inline = sorted((tmp_path / "inline").glob("*.json"))
        assert [p.name for p in clean] == [p.name for p in dirty] \
            == [p.name for p in inline]
        for a, b, c in zip(clean, dirty, inline):
            assert a.read_bytes() == b.read_bytes() == c.read_bytes()

    def test_batch_size_rejected_below_one(self, tmp_path):
        spec = CampaignSpec(name="bad-batch", **self.GRID)
        with pytest.raises(ValueError, match="batch_size"):
            Campaign(spec, cache_dir=tmp_path).run(batch_size=0)

    def test_batch_size_one_equals_per_condition_tasks(self, tmp_path):
        spec = CampaignSpec(name="batch-one", **self.GRID)
        result = Campaign(spec, cache_dir=tmp_path).run(processes=2,
                                                        batch_size=1)
        assert result.ok
        assert result.counts == {"simulated": len(result.results)}


class TestFailurePolicy:
    @pytest.fixture
    def failing_once(self, monkeypatch):
        """produce_summary that fails on its first call for QUIC."""
        calls = {"failures": 0}
        real_produce = harness_mod.produce_summary

        def flaky(website, profile, stack, **kwargs):
            if stack.name == "QUIC" and calls["failures"] == 0:
                calls["failures"] += 1
                raise RuntimeError("transient worker crash")
            return real_produce(website, profile, stack, **kwargs)

        monkeypatch.setattr(campaign_mod, "produce_summary", flaky)
        return calls

    def test_retry_recovers(self, tmp_path, failing_once):
        spec = CampaignSpec(name="retry", **SMALL)
        result = run_campaign_spec(spec, cache_dir=tmp_path, processes=1,
                                   failure_policy="retry")
        assert result.ok
        by_stack = {r.condition.stack.name: r for r in result.results}
        assert by_stack["QUIC"].attempts == 2

    def test_skip_records_failure_and_continues(self, tmp_path, monkeypatch):
        def always_fail(website, profile, stack, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(campaign_mod, "produce_summary", always_fail)
        spec = CampaignSpec(name="skip", **SMALL)
        result = run_campaign_spec(spec, cache_dir=tmp_path, processes=1,
                                   failure_policy="skip")
        assert not result.ok
        assert result.counts == {"failed": 2}
        assert all("boom" in (r.error or "") for r in result.failed)
        # Failures are recorded in the manifest for post-mortems.
        campaign = Campaign(spec, cache_dir=tmp_path)
        lines = [json.loads(l) for l in
                 open(campaign.manifest_path)]
        assert all(l["status"] == "failed" for l in lines)

    def test_abort_raises(self, tmp_path, monkeypatch):
        def always_fail(website, profile, stack, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(campaign_mod, "produce_summary", always_fail)
        spec = CampaignSpec(name="abort", **SMALL)
        with pytest.raises(CampaignError):
            run_campaign_spec(spec, cache_dir=tmp_path, processes=1,
                              failure_policy="abort")

    def test_failed_conditions_retried_on_relaunch(self, tmp_path,
                                                   monkeypatch):
        def always_fail(website, profile, stack, **kwargs):
            raise RuntimeError("boom")

        spec = CampaignSpec(name="relaunch", **SMALL)
        monkeypatch.setattr(campaign_mod, "produce_summary", always_fail)
        first = run_campaign_spec(spec, cache_dir=tmp_path, processes=1,
                                  failure_policy="skip")
        assert first.counts == {"failed": 2}
        monkeypatch.undo()
        second = run_campaign_spec(spec, cache_dir=tmp_path, processes=1)
        assert second.ok and second.counts == {"simulated": 2}

    def test_unknown_policy_rejected(self, tmp_path):
        spec = CampaignSpec(name="bad", **SMALL)
        with pytest.raises(ValueError):
            Campaign(spec, cache_dir=tmp_path).run(failure_policy="explode")


def _store_worker(cache_dir, payload, barrier, repeats):
    """Store the same condition repeatedly, synchronised with a sibling."""
    cache = RecordingCache(cache_dir)
    summary = harness_mod.RecordingSummary.from_json(json.loads(payload))
    barrier.wait(timeout=30)
    for _ in range(repeats):
        cache.store("gov.uk_DSL_TCP_s5", "fingerprint00000000", summary)


class TestConcurrentWriters:
    def test_store_uses_unique_tmp_names(self, tmp_path, monkeypatch):
        """Regression: two stores must never share a tmp file path."""
        cache = RecordingCache(tmp_path)
        summary = _make_summary()
        sources = []
        real_replace = os.replace

        def capture(src, dst):
            sources.append(str(src))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", capture)
        cache.store("label", "fp", summary)
        cache.store("label", "fp", summary)
        assert len(sources) == 2
        assert sources[0] != sources[1]

    def test_two_processes_storing_same_condition(self, tmp_path):
        """Concurrent writers of one condition never tear the file."""
        cache = RecordingCache(tmp_path)
        summary = _make_summary()
        payload = json.dumps(summary.to_json())
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        workers = [
            ctx.Process(target=_store_worker,
                        args=(str(tmp_path), payload, barrier, 25))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        stored = cache.load("gov.uk_DSL_TCP_s5", "fingerprint00000000")
        assert stored is not None
        assert stored.selected_metrics == summary.selected_metrics
        # No leaked tmp files either.
        assert not list(tmp_path.glob("*.tmp"))


def _make_summary():
    return harness_mod.RecordingSummary(
        website="gov.uk", network="DSL", stack="TCP", runs=1,
        selection_metric="PLT",
        selected_metrics={"FVC": 0.1, "SI": 0.2, "PLT": 0.3, "LVC": 0.3},
        selected_curve=[(0.1, 0.5), (0.3, 1.0)],
        run_metrics=[{"FVC": 0.1, "SI": 0.2, "PLT": 0.3, "LVC": 0.3}],
        mean_retransmissions=0.0, mean_segments_sent=10.0,
        completed_fraction=1.0,
    )


def _campaign_worker(cache_dir, spec_kwargs):
    spec = CampaignSpec(name="killed", **spec_kwargs)
    Campaign(spec, cache_dir=cache_dir).run(processes=1)


@pytest.mark.slow
class TestKilledCampaign:
    def test_sigkilled_campaign_resumes(self, tmp_path):
        """A killed mid-flight campaign resumes without re-simulating."""
        grid = dict(sites=["gov.uk", "apache.org"], networks=["DSL", "LTE"],
                    stacks=["TCP", "QUIC"], seeds=[3], runs=2)
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_campaign_worker,
                           args=(str(tmp_path), grid))
        proc.start()
        spec = CampaignSpec(name="killed", **grid)
        manifest = Campaign(spec, cache_dir=tmp_path).manifest_path
        deadline = time.time() + 120
        while time.time() < deadline:
            if manifest.exists() and \
                    len(manifest.read_text().splitlines()) >= 2:
                break
            time.sleep(0.02)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=30)

        done_before = len([
            l for l in manifest.read_text().splitlines() if l.strip()
        ])
        assert 1 <= done_before  # it really was mid-flight

        result = Campaign(spec, cache_dir=tmp_path).run(processes=1)
        assert result.ok
        counts = result.counts
        assert counts.get("resumed", 0) + counts.get("cached", 0) >= 1
        assert len(result.results) == 8


class TestBehaviourVersioning:
    """A behaviour bump must invalidate everything recorded before it."""

    SPEC = dict(sites=["gov.uk"], networks=["DSL"], stacks=["TCP"],
                seeds=[5], runs=1)

    def test_manifest_and_spec_record_behaviour_version(self, tmp_path):
        campaign = Campaign(CampaignSpec(name="stamped", **self.SPEC),
                            cache_dir=tmp_path)
        campaign.run(processes=1)
        spec = json.loads((campaign.campaign_dir / "spec.json").read_text())
        assert spec["sim_behaviour"] == harness_mod.SIM_BEHAVIOUR_VERSION
        for line in campaign.manifest_path.read_text().splitlines():
            assert json.loads(line)["sim_behaviour"] == \
                harness_mod.SIM_BEHAVIOUR_VERSION

    def test_stale_campaign_is_cache_miss_not_reuse(self, tmp_path,
                                                    monkeypatch):
        """Recordings from version N are never served at version N+1:
        the fingerprints (and with them the campaign dir) change, so the
        re-run simulates from scratch instead of resuming stale bytes."""
        first = Campaign(CampaignSpec(name="vbump", **self.SPEC),
                         cache_dir=tmp_path)
        assert first.run(processes=1).counts == {"simulated": 1}
        # The simulator's behaviour changes in some future PR...
        monkeypatch.setattr(harness_mod, "SIM_BEHAVIOUR_VERSION",
                            harness_mod.SIM_BEHAVIOUR_VERSION + 1)
        second = Campaign(CampaignSpec(name="vbump", **self.SPEC),
                          cache_dir=tmp_path)
        assert second.campaign_dir != first.campaign_dir
        assert second.run(processes=1).counts == {"simulated": 1}
