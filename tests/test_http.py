"""HTTP/2 and HTTP/3 mappings: requests, responses, priorities, events."""

import numpy as np
import pytest

from repro.http.base import open_connection
from repro.http.h2 import H2Connection
from repro.http.h3 import H3Connection
from repro.http.messages import (
    FRAME_BYTES,
    HttpRequest,
    HttpResponseEvents,
    priority_for,
)
from repro.http.server import OriginServer
from repro.netem.engine import EventLoop
from repro.netem.path import NetworkPath
from repro.netem.profiles import DSL
from repro.transport.config import QUIC, TCP, TCP_PLUS


def run_requests(stack, requests, profile=DSL, seed=0, until=30.0):
    """Drive a connection through a list of (size, type) requests.

    Returns dict url -> dict(first_byte, progress[], complete).
    """
    loop = EventLoop()
    path = NetworkPath(loop, profile, seed=seed)
    conn = open_connection(path, stack, OriginServer("origin.test"))
    results = {}

    for index, (size, rtype) in enumerate(requests):
        url = f"https://origin.test/r{index}"
        record = {"first_byte": None, "progress": [], "complete": None}
        results[url] = record

        events = HttpResponseEvents(
            on_first_byte=lambda t, r=record: r.__setitem__("first_byte", t),
            on_progress=lambda t, done, r=record: r["progress"].append(
                (t, done)),
            on_complete=lambda t, r=record: r.__setitem__("complete", t),
        )
        conn.request(HttpRequest(url=url, body_bytes=size,
                                 resource_type=rtype, events=events))
    loop.run(until=until)
    return results


class TestPriorities:
    def test_priority_mapping(self):
        assert priority_for("html") == 0
        assert priority_for("css") == 1
        assert priority_for("js") == 1
        assert priority_for("font") == 1
        assert priority_for("image") == 2
        assert priority_for("other") == 2


@pytest.mark.parametrize("stack", [TCP, QUIC], ids=["h2", "h3"])
class TestRequestResponse:
    def test_single_response_completes(self, stack):
        results = run_requests(stack, [(50_000, "html")])
        record = next(iter(results.values()))
        assert record["complete"] is not None
        assert record["progress"][-1][1] == 50_000

    def test_event_ordering(self, stack):
        results = run_requests(stack, [(100_000, "html")])
        record = next(iter(results.values()))
        assert record["first_byte"] <= record["progress"][0][0]
        assert record["progress"] == sorted(record["progress"])
        assert record["complete"] == record["progress"][-1][0]

    def test_progress_frame_granularity(self, stack):
        results = run_requests(stack, [(5 * FRAME_BYTES, "image")])
        record = next(iter(results.values()))
        done_values = [d for _, d in record["progress"]]
        assert done_values == [FRAME_BYTES * i for i in range(1, 6)]

    def test_many_concurrent_responses(self, stack):
        results = run_requests(stack, [(20_000, "image")] * 8)
        assert all(r["complete"] is not None for r in results.values())

    def test_critical_resources_finish_first(self, stack):
        """One big image and one CSS issued together: CSS (priority 1)
        completes before the bulk image (priority 2)."""
        results = run_requests(stack, [(400_000, "image"), (30_000, "css")])
        records = list(results.values())
        image, css = records[0], records[1]
        assert css["complete"] < image["complete"]

    def test_queued_before_establishment(self, stack):
        # request() before connect() must transparently queue.
        results = run_requests(stack, [(10_000, "html"), (10_000, "css")])
        assert all(r["complete"] is not None for r in results.values())


class TestFactory:
    def test_open_connection_dispatches(self):
        loop = EventLoop()
        path = NetworkPath(loop, DSL, seed=0)
        assert isinstance(
            open_connection(path, TCP, OriginServer("a")), H2Connection)
        assert isinstance(
            open_connection(path, QUIC, OriginServer("a")), H3Connection)


class TestH2Specifics:
    def test_responses_share_one_tcp_connection(self):
        loop = EventLoop()
        path = NetworkPath(loop, DSL, seed=0)
        conn = open_connection(path, TCP, OriginServer("origin.test"))
        done = []
        for i in range(4):
            events = HttpResponseEvents(
                on_complete=lambda t, i=i: done.append(i))
            conn.request(HttpRequest(url=f"u{i}", body_bytes=10_000,
                                     resource_type="image", events=events))
        loop.run(until=20.0)
        assert sorted(done) == [0, 1, 2, 3]
        # One flow id handles everything.
        assert conn.transport.flow_id is not None

    def test_server_backlog_bounded(self):
        """The H2 server writes lazily: backlog stays near the low-water
        mark instead of buffering whole megabyte responses."""
        loop = EventLoop()
        path = NetworkPath(loop, DSL, seed=0)
        conn = open_connection(path, TCP, OriginServer("origin.test"))
        max_backlog = {"v": 0}

        def sample():
            max_backlog["v"] = max(max_backlog["v"],
                                   conn.transport.server_sender.backlog)
            loop.call_later(0.005, sample)

        conn.request(HttpRequest(url="big", body_bytes=2_000_000,
                                 resource_type="image"))
        loop.call_later(0.01, sample)
        loop.run(until=3.0)
        assert max_backlog["v"] <= H2Connection.low_water + FRAME_BYTES + 1500


class TestH3Specifics:
    def test_each_request_gets_own_stream(self):
        loop = EventLoop()
        path = NetworkPath(loop, DSL, seed=0)
        conn = open_connection(path, QUIC, OriginServer("origin.test"))
        for i in range(3):
            conn.request(HttpRequest(url=f"u{i}", body_bytes=5_000,
                                     resource_type="image"))
        loop.run(until=10.0)
        assert len(conn.transport.client.send_streams) == 3


class TestServerJitter:
    def test_jitter_changes_delay(self):
        request = HttpRequest(url="u", body_bytes=100,
                              server_delay_s=0.01)
        plain = OriginServer("h")
        assert plain.processing_delay(request) == 0.01
        jittered = OriginServer("h", jitter_rng=np.random.default_rng(1))
        values = {jittered.processing_delay(request) for _ in range(5)}
        assert len(values) > 1
        assert all(v > 0 for v in values)

    def test_zero_scale_disables_jitter(self):
        request = HttpRequest(url="u", body_bytes=100, server_delay_s=0.01)
        server = OriginServer("h", jitter_rng=np.random.default_rng(1),
                              jitter_scale=0.0)
        assert server.processing_delay(request) == 0.01

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            OriginServer("h", jitter_scale=-1.0)


class TestRequestValidation:
    def test_zero_body_rejected(self):
        with pytest.raises(ValueError):
            HttpRequest(url="u", body_bytes=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            HttpRequest(url="u", body_bytes=10, server_delay_s=-1.0)
