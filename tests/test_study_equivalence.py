"""Scalar-vs-vectorized study equivalence.

The vectorized block engine (:mod:`repro.study.engine`) must produce
*exactly* the results of the per-participant scalar reference path
(:mod:`repro.study.reference`): both consume the same block-draw
streams, so every trial field, event log and demographic attribute has
to match bit for bit. This is the study-layer analogue of
``test_hotpath_equivalence.py`` — any divergence is a silent behaviour
change and must fail loudly here.
"""

import pytest

from repro.study.ab import run_ab_study
from repro.study.design import StudyPlan
from repro.study.rating import run_rating_study
from repro.study.reference import (
    run_ab_study_reference,
    run_rating_study_reference,
)

from tests.conftest import SMALL_SITES

#: Small enough to stay fast, prime-ish so the last block is partial.
PARTICIPANTS = 23
#: Forces multi-block coverage (23 participants -> 3 blocks).
BLOCK_SIZE = 8

GROUPS = ("lab", "microworker", "internet")
SEEDS = (0, 11)


def _group_seed_matrix(smoke):
    """The full group × seed grid, with everything except the ``smoke``
    combination in the slow tier (``REPRO_RUN_SLOW=1``) — tier-1 keeps
    one scalar-vs-vectorized pin per study type."""
    params = []
    for group in GROUPS:
        for seed in SEEDS:
            marks = () if (group, seed) == smoke else (pytest.mark.slow,)
            params.append(pytest.param(group, seed, marks=marks))
    return params


def _assert_sessions_equal(fast, slow):
    assert len(fast) == len(slow)
    for a, b in zip(fast, slow):
        assert a.participant_id == b.participant_id
        assert a.group == b.group
        assert a.gender == b.gender
        assert a.age_group == b.age_group
        ea, eb = a.events, b.events
        assert ea.all_videos_played == eb.all_videos_played
        assert ea.any_video_stalled == eb.any_video_stalled
        assert ea.max_focus_loss_s == eb.max_focus_loss_s
        assert ea.any_vote_before_fvc == eb.any_vote_before_fvc
        assert ea.total_duration_s == eb.total_duration_s
        assert ea.max_question_duration_s == eb.max_question_duration_s
        assert ea.control_video_correct == eb.control_video_correct
        assert ea.control_questions_correct == eb.control_questions_correct
        assert ea.frame_colors == eb.frame_colors
        assert len(a.trials) == len(b.trials)


@pytest.mark.parametrize(
    "group,seed", _group_seed_matrix(smoke=("microworker", 0)))
def test_ab_study_identical(small_testbed, group, seed):
    plan = StudyPlan(sites=SMALL_SITES)
    kwargs = dict(group=group, plan=plan, participants=PARTICIPANTS,
                  seed=seed, block_size=BLOCK_SIZE)
    fast = run_ab_study(small_testbed, **kwargs)
    slow = run_ab_study_reference(small_testbed, **kwargs)
    _assert_sessions_equal(fast.sessions, slow.sessions)
    for a, b in zip(fast.all_trials(), slow.all_trials()):
        assert a.condition == b.condition
        assert a.left_is_a == b.left_is_a
        assert a.answer == b.answer
        assert a.vote == b.vote
        assert a.confidence == b.confidence
        assert a.replays == b.replays
        assert a.duration_s == b.duration_s


@pytest.mark.parametrize(
    "group,seed", _group_seed_matrix(smoke=("lab", 11)))
def test_rating_study_identical(small_testbed, group, seed):
    plan = StudyPlan(sites=SMALL_SITES)
    kwargs = dict(group=group, plan=plan, participants=PARTICIPANTS,
                  seed=seed, block_size=BLOCK_SIZE)
    fast = run_rating_study(small_testbed, **kwargs)
    slow = run_rating_study_reference(small_testbed, **kwargs)
    _assert_sessions_equal(fast.sessions, slow.sessions)
    for a, b in zip(fast.all_trials(), slow.all_trials()):
        assert a.condition == b.condition
        assert a.context == b.context
        assert a.speed_score == b.speed_score
        assert a.quality_score == b.quality_score
        assert a.replays == b.replays
        assert a.duration_s == b.duration_s


def test_block_size_invariance(small_testbed):
    """Different block sizes partition the same streams differently, so
    results legitimately differ — but the default must be stable."""
    plan = StudyPlan(sites=SMALL_SITES)
    a = run_ab_study(small_testbed, group="microworker", plan=plan,
                     participants=12, seed=4)
    b = run_ab_study(small_testbed, group="microworker", plan=plan,
                     participants=12, seed=4)
    assert [t.vote for s in a.sessions for t in s.trials] == \
        [t.vote for s in b.sessions for t in s.trials]
