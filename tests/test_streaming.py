"""Streaming accumulators: incremental + merge == batch statistics."""

import json
import math

import numpy as np
import pytest

from repro.analysis.stats import (
    anova_oneway,
    mean_confidence_interval,
    welch_ttest_p,
    welch_ttest_p_from_stats,
)
from repro.analysis.streaming import (
    AxisAccumulator,
    GridReport,
    StreamingHistogram,
    StreamingMoments,
    anova_from_moments,
    grid_report,
)
from repro.testbed.harness import RecordingSummary
from repro.testbed.store import ConditionKey

APPROX = dict(rel=1e-9, abs=1e-12)


def _datasets():
    """A spread of sizes/scales/shapes for property-style checks."""
    rng = np.random.default_rng(0)
    return [
        list(rng.normal(50.0, 5.0, size=n)) for n in (2, 3, 17, 256)
    ] + [
        list(rng.lognormal(1.0, 0.8, size=101)),
        list(rng.uniform(-3.0, 3.0, size=64)),
        [5.0, 5.0, 5.0, 5.0],           # zero variance
        [7.25],                          # single sample
    ]


def _split_points(n):
    return sorted({0, 1, n // 3, n // 2, n - 1, n}) if n > 1 else [0]


class TestStreamingMoments:
    @pytest.mark.parametrize("index", range(len(_datasets())))
    def test_incremental_matches_batch_ci(self, index):
        data = _datasets()[index]
        moments = StreamingMoments()
        moments.add_many(data)
        batch = mean_confidence_interval(data)
        ci = moments.ci()
        assert ci.n == batch.n
        assert ci.mean == pytest.approx(batch.mean, **APPROX)
        assert ci.lower == pytest.approx(batch.lower, **APPROX)
        assert ci.upper == pytest.approx(batch.upper, **APPROX)
        assert ci.confidence == batch.confidence

    @pytest.mark.parametrize("index", range(len(_datasets())))
    def test_merge_of_partials_matches_batch(self, index):
        """Any split of the stream, aggregated per-part and merged,
        equals the single-pass (and hence the batch) result."""
        data = _datasets()[index]
        for split in _split_points(len(data)):
            left, right = StreamingMoments(), StreamingMoments()
            left.add_many(data[:split])
            right.add_many(data[split:])
            merged = left.merge(right)
            batch = mean_confidence_interval(data)
            assert merged.count == batch.n
            ci = merged.ci()
            assert ci.mean == pytest.approx(batch.mean, **APPROX)
            assert ci.lower == pytest.approx(batch.lower, **APPROX)
            assert ci.upper == pytest.approx(batch.upper, **APPROX)

    def test_variance_matches_numpy(self):
        data = _datasets()[2]
        moments = StreamingMoments()
        moments.add_many(data)
        assert moments.variance == pytest.approx(
            float(np.var(data, ddof=1)), **APPROX)

    def test_merge_with_empty_is_identity(self):
        moments = StreamingMoments()
        moments.add_many([1.0, 2.0, 3.0])
        before = (moments.count, moments.mean, moments.m2)
        moments.merge(StreamingMoments())
        assert (moments.count, moments.mean, moments.m2) == before
        empty = StreamingMoments()
        empty.merge(moments)
        assert empty.count == 3
        assert empty.mean == pytest.approx(2.0)

    def test_welch_p_matches_batch(self):
        rng = np.random.default_rng(1)
        a = list(rng.normal(0.0, 1.0, 40))
        b = list(rng.normal(0.5, 2.0, 25))
        ma, mb = StreamingMoments(), StreamingMoments()
        ma.add_many(a)
        mb.add_many(b)
        assert ma.welch_p(mb) == pytest.approx(welch_ttest_p(a, b),
                                               **APPROX)

    def test_welch_from_stats_degenerate_cases(self):
        assert welch_ttest_p_from_stats(1, 0.0, 0.0, 5, 1.0, 1.0) == 1.0
        assert welch_ttest_p_from_stats(5, 1.0, 0.0, 5, 2.0, 0.0) == 0.0
        assert welch_ttest_p_from_stats(5, 1.0, 0.0, 5, 1.0, 0.0) == 1.0
        assert welch_ttest_p([1.0, 1.0], [2.0, 2.0]) == 0.0

    def test_json_round_trip(self):
        moments = StreamingMoments()
        moments.add_many([1.5, 2.5, 9.0])
        restored = StreamingMoments.from_json(
            json.loads(json.dumps(moments.to_json())))
        assert restored.count == moments.count
        assert restored.mean == moments.mean
        assert restored.m2 == moments.m2


class TestAnovaFromMoments:
    def _moments(self, groups):
        out = []
        for group in groups:
            m = StreamingMoments()
            m.add_many(group)
            out.append(m)
        return out

    def test_matches_batch_anova(self):
        rng = np.random.default_rng(2)
        groups = [list(rng.normal(50 + shift, 5, size=n))
                  for shift, n in ((0, 30), (4, 45), (-2, 12))]
        batch = anova_oneway(groups)
        streamed = anova_from_moments(self._moments(groups))
        assert streamed is not None and batch is not None
        assert streamed.f_statistic == pytest.approx(
            batch.f_statistic, **APPROX)
        assert streamed.p_value == pytest.approx(batch.p_value, **APPROX)
        assert streamed.group_sizes == batch.group_sizes

    def test_merged_partials_match_batch_anova(self):
        """Per-worker shards of each group merge into the batch result."""
        rng = np.random.default_rng(3)
        groups = [list(rng.normal(10, 2, 40)),
                  list(rng.normal(12, 2, 33))]
        shards = []
        for group in groups:
            first, second = StreamingMoments(), StreamingMoments()
            first.add_many(group[:15])
            second.add_many(group[15:])
            shards.append(first.merge(second))
        batch = anova_oneway(groups)
        streamed = anova_from_moments(shards)
        assert streamed.f_statistic == pytest.approx(
            batch.f_statistic, **APPROX)
        assert streamed.p_value == pytest.approx(batch.p_value, **APPROX)

    def test_degenerate_matches_batch(self):
        assert anova_from_moments(self._moments([[1.0], [2.0]])) is None
        assert anova_oneway([[1.0], [2.0]]) is None
        constant = [[1.0, 1.0], [1.0, 1.0]]
        assert anova_from_moments(self._moments(constant)) is None
        assert anova_oneway(constant) is None


class TestStreamingHistogram:
    def test_quantiles_within_bin_width(self):
        rng = np.random.default_rng(4)
        data = rng.normal(2.0, 0.5, size=2000)
        hist = StreamingHistogram(bin_width=0.05)
        hist.add_many(data)
        for q in (0.05, 0.25, 0.5, 0.75, 0.95):
            exact = float(np.quantile(data, q))
            assert abs(hist.quantile(q) - exact) <= 0.05 + 1e-12, q

    def test_extremes_exact(self):
        hist = StreamingHistogram(bin_width=0.1)
        hist.add_many([3.0, 1.25, 7.5])
        assert hist.quantile(0.0) == 1.25
        assert hist.quantile(1.0) == 7.5

    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(5)
        data = list(rng.uniform(0, 10, size=500))
        whole = StreamingHistogram(bin_width=0.2)
        whole.add_many(data)
        left = StreamingHistogram(bin_width=0.2)
        right = StreamingHistogram(bin_width=0.2)
        left.add_many(data[:123])
        right.add_many(data[123:])
        left.merge(right)
        assert left.count == whole.count
        assert left._bins == whole._bins
        assert left.minimum == whole.minimum
        assert left.maximum == whole.maximum

    def test_mismatched_widths_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram(0.1).merge(StreamingHistogram(0.2))

    def test_empty_and_bad_inputs(self):
        hist = StreamingHistogram()
        with pytest.raises(ValueError):
            hist.quantile(0.5)
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            StreamingHistogram(bin_width=0.0)


# -- group-by and grid reports over synthetic summaries ----------------------


def _pair(website, network, stack, seed, si_samples):
    key = ConditionKey(website=website, network=network, stack=stack,
                       seed=seed, label=f"{website}_{network}_{stack}_s{seed}",
                       fingerprint=f"fp-{website}-{network}-{stack}-{seed}")
    metrics = [{"SI": si, "PLT": si * 2.0, "FVC": si / 2.0,
                "LVC": si * 3.0, "VC85": si * 1.5} for si in si_samples]
    summary = RecordingSummary(
        website=website, network=network, stack=stack,
        runs=len(si_samples), selection_metric="PLT",
        selected_metrics=dict(metrics[0]),
        selected_curve=[(0.1, 0.5), (0.4, 1.0)],
        run_metrics=metrics,
        mean_retransmissions=0.0, mean_segments_sent=10.0,
        completed_fraction=1.0,
    )
    return key, summary


def _synthetic_pairs():
    rng = np.random.default_rng(6)
    pairs = []
    for website in ("a.org", "b.org"):
        for network in ("DSL", "LTE"):
            for stack in ("TCP", "QUIC"):
                for seed in (0, 1):
                    base = 1.0 + (network == "LTE") * 2.0 \
                        - (stack == "QUIC") * 0.4
                    samples = list(rng.normal(base, 0.1, size=3))
                    pairs.append(_pair(website, network, stack, seed,
                                       samples))
    return pairs


class TestAxisAccumulator:
    def test_groups_match_batch(self):
        pairs = _synthetic_pairs()
        acc = AxisAccumulator(axes=("network", "stack"), metric="SI")
        acc.consume(pairs)
        raw = {}
        for key, summary in pairs:
            raw.setdefault((key.network, key.stack), []).extend(
                summary.metric_samples("SI"))
        assert set(acc.groups) == set(raw)
        for group, samples in raw.items():
            batch = mean_confidence_interval(samples)
            ci = acc.groups[group].ci()
            assert ci.mean == pytest.approx(batch.mean, **APPROX)
            assert ci.lower == pytest.approx(batch.lower, **APPROX)

    def test_merge_matches_single_pass(self):
        pairs = _synthetic_pairs()
        whole = AxisAccumulator(axes=("stack",), metric="PLT")
        whole.consume(pairs)
        left = AxisAccumulator(axes=("stack",), metric="PLT")
        right = AxisAccumulator(axes=("stack",), metric="PLT")
        left.consume(pairs[:7])
        right.consume(pairs[7:])
        left.merge(right)
        assert set(left.groups) == set(whole.groups)
        for group in whole.groups:
            assert left.groups[group].count == whole.groups[group].count
            assert left.groups[group].mean == pytest.approx(
                whole.groups[group].mean, **APPROX)

    def test_anova_over_groups(self):
        pairs = _synthetic_pairs()
        acc = AxisAccumulator(axes=("network",), metric="SI")
        acc.consume(pairs)
        result = acc.anova()
        assert result is not None
        assert result.significant(0.01)  # DSL vs LTE differ by design

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            AxisAccumulator(axes=("protocol",))


class TestGridReport:
    def test_cells_and_significance(self):
        report = grid_report(_synthetic_pairs(), rows=("network",),
                            cols="stack", metric="SI")
        assert report.row_keys() == [("DSL",), ("LTE",)]
        assert report.columns() == ["TCP", "QUIC"]
        assert report.baseline_column() == "TCP"
        base = report.cell(("DSL",), "TCP")
        assert base.p_vs_baseline is None and not base.significant
        quic = report.cell(("DSL",), "QUIC")
        assert quic.p_vs_baseline is not None
        assert quic.significant  # 0.4s SI gap at sigma=0.1
        raw_tcp, raw_quic = [], []
        for key, summary in _synthetic_pairs():
            if key.network == "DSL":
                (raw_tcp if key.stack == "TCP" else raw_quic).extend(
                    summary.metric_samples("SI"))
        assert quic.p_vs_baseline == pytest.approx(
            welch_ttest_p(raw_quic, raw_tcp), **APPROX)

    def test_merge_matches_single_pass(self):
        pairs = _synthetic_pairs()
        whole = grid_report(pairs)
        left = grid_report(pairs[:5])
        right = grid_report(pairs[5:])
        left.merge(right)
        assert left.row_keys() == whole.row_keys()
        assert left.columns() == whole.columns()
        for row in whole.row_keys():
            for col in whole.columns():
                a, b = left.cell(row, col), whole.cell(row, col)
                assert a.ci.n == b.ci.n
                assert a.ci.mean == pytest.approx(b.ci.mean, **APPROX)

    def test_to_json_shape(self):
        report = grid_report(_synthetic_pairs())
        doc = json.loads(json.dumps(report.to_json()))
        assert doc["metric"] == "SI"
        assert doc["columns"] == ["TCP", "QUIC"]
        cell = doc["rows"][0]["cells"]["QUIC"]
        assert set(cell) == {"mean", "lower", "upper", "n",
                             "p_vs_baseline", "significant"}

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            GridReport(rows=("stack",), cols="stack")
        with pytest.raises(ValueError):
            GridReport(rows=("bogus",))

    def test_empty_report(self):
        report = GridReport()
        assert report.is_empty
        assert report.baseline_column() is None
        assert report.cell((), "TCP") is None


class TestStateSerialization:
    """State round-trips: the basis for per-worker partial aggregates
    flushed to disk by distributed campaign workers."""

    def test_grid_report_state_round_trip(self):
        report = grid_report(_synthetic_pairs(), rows=("network", "seed"),
                             cols="stack", metric="PLT", confidence=0.95)
        rebuilt = GridReport.from_state(
            json.loads(json.dumps(report.to_state())))
        assert rebuilt.config() == report.config()
        assert rebuilt.row_keys() == report.row_keys()
        assert rebuilt.columns() == report.columns()
        assert rebuilt.to_json() == report.to_json()

    def test_rebuilt_report_keeps_accumulating(self):
        pairs = _synthetic_pairs()
        interrupted = grid_report(pairs[:7])
        rebuilt = GridReport.from_state(
            json.loads(json.dumps(interrupted.to_state())))
        rebuilt.consume(pairs[7:])
        whole = grid_report(pairs)
        assert rebuilt.to_json() == whole.to_json()

    def test_rebuilt_report_still_merges(self):
        pairs = _synthetic_pairs()
        left = grid_report(pairs[:5])
        right = GridReport.from_state(
            json.loads(json.dumps(grid_report(pairs[5:]).to_state())))
        merged = left.merge(right)
        whole = grid_report(pairs)
        for row in whole.row_keys():
            for col in whole.columns():
                assert merged.cell(row, col).ci.mean == pytest.approx(
                    whole.cell(row, col).ci.mean, **APPROX)

    def test_state_preserves_int_vs_str_axis_values(self):
        report = grid_report(_synthetic_pairs(), rows=("seed",),
                             cols="stack")
        rebuilt = GridReport.from_state(
            json.loads(json.dumps(report.to_state())))
        assert rebuilt.row_keys() == [(0,), (1,)]
        assert all(isinstance(row[0], int)
                   for row in rebuilt.row_keys())

    def test_axis_accumulator_round_trip(self):
        accumulator = AxisAccumulator(axes=("network", "stack"),
                                      metric="SI")
        accumulator.consume(_synthetic_pairs())
        rebuilt = AxisAccumulator.from_json(
            json.loads(json.dumps(accumulator.to_json())))
        assert rebuilt.axes == accumulator.axes
        assert rebuilt.metric == accumulator.metric
        assert {g: m.to_json() for g, m in rebuilt.items()} == \
            {g: m.to_json() for g, m in accumulator.items()}

    def test_histogram_round_trip(self):
        histogram = StreamingHistogram(bin_width=0.25)
        histogram.add_many(_datasets()[2])
        rebuilt = StreamingHistogram.from_json(
            json.loads(json.dumps(histogram.to_json())))
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert rebuilt.quantile(q) == histogram.quantile(q)
        rebuilt.merge(histogram)
        assert rebuilt.count == 2 * histogram.count

    def test_empty_histogram_round_trip(self):
        rebuilt = StreamingHistogram.from_json(
            json.loads(json.dumps(StreamingHistogram(0.1).to_json())))
        assert rebuilt.count == 0
        assert math.isinf(rebuilt.minimum)
        assert math.isinf(rebuilt.maximum)


class TestGridRendering:
    def test_render_grid_text(self):
        from repro.report import render_grid

        out = render_grid(grid_report(_synthetic_pairs()))
        assert "network" in out.splitlines()[1]
        assert "TCP" in out and "QUIC" in out
        assert "±" in out
        assert "*" in out  # significance mark present

    def test_render_grid_empty(self):
        from repro.report import md_grid, render_grid

        assert "no recorded conditions" in render_grid(GridReport())
        assert "no recorded conditions" in md_grid(GridReport())

    def test_md_grid(self):
        from repro.report import md_grid

        out = md_grid(grid_report(_synthetic_pairs()))
        lines = out.splitlines()
        assert lines[0].startswith("### ")
        assert "| network | TCP | QUIC |" in out
        assert "±" in out
