"""TCP connection behaviour over the emulated path."""

import pytest

from repro.netem.engine import EventLoop
from repro.netem.packet import Packet
from repro.netem.path import NetworkPath
from repro.netem.profiles import DSL, MSS, NetworkProfile
from repro.transport.config import QUIC, TCP, TCP_PLUS
from repro.transport.tcp import TcpConnection

LOSSY = NetworkProfile(
    name="DSL", uplink_mbps=5.0, downlink_mbps=25.0, min_rtt_ms=24.0,
    loss_rate=0.05, queue_ms=12.0,
)


def make_conn(profile=DSL, stack=TCP, seed=0):
    loop = EventLoop()
    path = NetworkPath(loop, profile, seed=seed)
    state = {"client": [], "server": [], "client_bytes": 0, "server_bytes": 0}

    def on_client(delivered, metas):
        state["client_bytes"] = delivered
        state["client"].extend(metas)

    def on_server(delivered, metas):
        state["server_bytes"] = delivered
        state["server"].extend(metas)

    conn = TcpConnection(path, stack, on_client_data=on_client,
                         on_server_data=on_server)
    return loop, path, conn, state


class TestHandshake:
    def test_two_rtt_establishment(self):
        loop, path, conn, _ = make_conn()
        established_at = {}
        conn.connect(lambda: established_at.setdefault("t", loop.now))
        loop.run(until=5.0)
        assert conn.established
        # SYN/SYNACK + TLS flight: two RTTs plus serialisation of ~3 kB.
        assert established_at["t"] == pytest.approx(2 * DSL.min_rtt_s,
                                                    rel=0.25)

    def test_connect_twice_rejected(self):
        loop, path, conn, _ = make_conn()
        conn.connect(lambda: None)
        with pytest.raises(RuntimeError):
            conn.connect(lambda: None)

    def test_write_before_establishment_rejected(self):
        loop, path, conn, _ = make_conn()
        with pytest.raises(RuntimeError):
            conn.server_write(100)

    def test_handshake_survives_loss(self):
        for seed in range(5):
            loop, path, conn, _ = make_conn(profile=LOSSY, seed=seed)
            conn.connect(lambda: None)
            loop.run(until=30.0)
            assert conn.established, f"handshake failed with seed {seed}"

    def test_quic_stack_rejected(self):
        loop = EventLoop()
        path = NetworkPath(loop, DSL, seed=0)
        with pytest.raises(ValueError):
            TcpConnection(path, QUIC, lambda d, m: None, lambda d, m: None)


class TestDataTransfer:
    def test_bulk_delivery_complete(self):
        loop, path, conn, state = make_conn()
        conn.connect(lambda: conn.server_write(200_000, meta="done"))
        loop.run(until=30.0)
        assert state["client_bytes"] == 200_000
        assert state["client"] == ["done"]

    def test_request_reaches_server(self):
        loop, path, conn, state = make_conn()
        conn.connect(lambda: conn.client_write(350, meta="req"))
        loop.run(until=5.0)
        assert state["server_bytes"] == 350
        assert state["server"] == ["req"]

    def test_metas_delivered_in_order(self):
        loop, path, conn, state = make_conn()

        def go():
            for index in range(5):
                conn.server_write(10_000, meta=index)

        conn.connect(go)
        loop.run(until=30.0)
        assert state["client"] == [0, 1, 2, 3, 4]

    def test_throughput_near_link_rate(self):
        loop, path, conn, state = make_conn(stack=TCP_PLUS)
        done = {}

        def on_meta(delivered, metas):
            if metas:
                done["t"] = loop.now

        conn._path  # connection already wired; patch state capture
        conn.connect(lambda: conn.server_write(500_000, meta="end"))
        loop.run(until=30.0)
        assert state["client_bytes"] == 500_000
        ideal = 500_000 / (25e6 / 8) + 3 * DSL.min_rtt_s
        assert loop.now < 3 * ideal

    def test_zero_write_rejected(self):
        loop, path, conn, _ = make_conn()
        conn.connect(lambda: None)
        loop.run(until=2.0)
        with pytest.raises(ValueError):
            conn.server_write(0)


class TestLossRecovery:
    def test_delivery_under_random_loss(self):
        loop, path, conn, state = make_conn(profile=LOSSY, seed=3)
        conn.connect(lambda: conn.server_write(150_000, meta="end"))
        loop.run(until=60.0)
        assert state["client_bytes"] == 150_000
        assert conn.server_sender.stats.retransmitted_segments > 0

    def test_fast_retransmit_used_before_rto(self):
        loop, path, conn, _ = make_conn(profile=LOSSY, seed=3)
        conn.connect(lambda: conn.server_write(150_000))
        loop.run(until=60.0)
        stats = conn.server_sender.stats
        assert stats.fast_retransmits > 0

    def test_delivery_on_inflight_network(self):
        profile = MSS
        loop, path, conn, state = make_conn(profile=profile, seed=5)
        conn.connect(lambda: conn.server_write(100_000, meta="end"))
        loop.run(until=120.0)
        assert state["client_bytes"] == 100_000

    def test_ordered_delivery_despite_loss(self):
        """Bytes are only delivered in order (transport HOL blocking)."""
        loop, path, conn, state = make_conn(profile=LOSSY, seed=1)
        watermarks = []
        original = conn.client_receiver._on_data

        def capture(delivered, metas):
            watermarks.append(delivered)
            original(delivered, metas)

        conn.client_receiver._on_data = capture
        conn.connect(lambda: conn.server_write(100_000))
        loop.run(until=60.0)
        assert watermarks == sorted(watermarks)
        assert watermarks[-1] == 100_000


class TestStackDifferences:
    def test_stock_initial_window_is_10(self):
        _, _, conn, _ = make_conn(stack=TCP)
        assert conn.server_sender.cc.initial_window == 10 * TCP.mss

    def test_tuned_initial_window_is_32(self):
        _, _, conn, _ = make_conn(stack=TCP_PLUS)
        assert conn.server_sender.cc.initial_window == 32 * TCP_PLUS.mss

    def test_tuned_buffers_larger(self):
        _, _, stock, _ = make_conn(stack=TCP)
        _, _, tuned, _ = make_conn(stack=TCP_PLUS)
        assert tuned.client_receiver.buffer_cap > \
            stock.client_receiver.buffer_cap

    def test_sack_blocks_limited_to_three(self):
        loop, path, conn, _ = make_conn(profile=LOSSY, seed=2)
        max_blocks = {"n": 0}
        original = conn.server_sender.on_ack

        def capture(segment):
            max_blocks["n"] = max(max_blocks["n"], len(segment.sack_blocks))
            original(segment)

        conn.server_sender.on_ack = capture
        conn.connect(lambda: conn.server_write(300_000))
        loop.run(until=60.0)
        assert 0 < max_blocks["n"] <= 3

    def test_faster_completion_with_iw32_on_clean_link(self):
        def completion(stack):
            loop, path, conn, state = make_conn(stack=stack)
            done = {}

            def on_client(delivered, metas):
                if delivered >= 120_000:
                    done.setdefault("t", loop.now)

            conn.client_receiver._on_data = on_client
            conn.connect(lambda: conn.server_write(120_000))
            loop.run(until=10.0)
            return done["t"]

        assert completion(TCP_PLUS) <= completion(TCP)


class TestIdleRestart:
    def _run_with_gap(self, stack):
        loop, path, conn, state = make_conn(stack=stack)
        cwnds = {}

        def phase_two():
            cwnds["before"] = conn.server_sender.cc.congestion_window()
            conn.server_write(50_000, meta="second")

        def go():
            conn.server_write(200_000, meta="first")
            loop.call_later(5.0, phase_two)

        conn.connect(go)
        loop.run(until=20.0)
        # cwnd at the moment the second burst started.
        return cwnds["before"], conn

    def test_stock_resets_cwnd_after_idle(self):
        before, conn = self._run_with_gap(TCP)
        # After the idle write, the sender should have clamped to IW.
        assert conn.server_sender.cc.congestion_window() <= max(
            before, 10 * TCP.mss)

    def test_tuned_keeps_cwnd_after_idle(self):
        loop, path, conn, state = make_conn(stack=TCP_PLUS)
        snapshots = []

        def phase_two():
            snapshots.append(conn.server_sender.cc.congestion_window())
            conn.server_write(50_000)
            snapshots.append(conn.server_sender.cc.congestion_window())

        conn.connect(lambda: (conn.server_write(200_000),
                              loop.call_later(5.0, phase_two)))
        loop.run(until=20.0)
        assert snapshots[1] >= snapshots[0]
