"""Statistics building blocks and the figure analyses."""

import numpy as np
import pytest

from repro.analysis.ab import AbShares, ab_vote_shares
from repro.analysis.agreement import agreement_by_condition, behaviour_statistics
from repro.analysis.correlation import correlation_heatmap
from repro.analysis.rating import (
    anova_by_setting,
    per_website_differences,
    rating_means,
)
from repro.analysis.stats import (
    anova_oneway,
    is_normal,
    mean_confidence_interval,
    pearson_r,
    welch_ttest_p,
)
from repro.study.ab import AbSession, AbTrial
from repro.study.design import AbCondition, RatingCondition
from repro.study.rating import RatingSession, RatingTrial
from repro.study.session import SessionEvents


class TestMeanCI:
    def test_mean_and_symmetry(self):
        ci = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert ci.mean == pytest.approx(3.0)
        assert ci.upper - ci.mean == pytest.approx(ci.mean - ci.lower)

    def test_higher_confidence_wider(self):
        data = list(np.random.default_rng(0).normal(0, 1, 30))
        narrow = mean_confidence_interval(data, confidence=0.90)
        wide = mean_confidence_interval(data, confidence=0.99)
        assert wide.halfwidth > narrow.halfwidth

    def test_single_value(self):
        ci = mean_confidence_interval([5.0])
        assert ci.mean == ci.lower == ci.upper == 5.0

    def test_coverage_property(self):
        """~99% of 99% CIs must contain the true mean."""
        rng = np.random.default_rng(1)
        hits = 0
        for _ in range(300):
            sample = rng.normal(10.0, 2.0, size=25)
            ci = mean_confidence_interval(sample, confidence=0.99)
            hits += ci.contains(10.0)
        assert hits / 300 > 0.95

    def test_overlaps(self):
        a = mean_confidence_interval([1, 2, 3])
        b = mean_confidence_interval([2, 3, 4])
        c = mean_confidence_interval([100, 101, 102])
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])


class TestNormality:
    def test_gaussian_accepted(self):
        data = np.random.default_rng(2).normal(50, 5, size=400)
        assert is_normal(data)

    def test_heavy_tail_rejected(self):
        data = np.random.default_rng(2).standard_t(1, size=400)
        assert not is_normal(data)

    def test_degenerate_treated_as_normal(self):
        assert is_normal([5.0, 5.0, 5.0, 5.0])
        assert is_normal([1.0])


class TestAnova:
    def test_detects_difference(self):
        rng = np.random.default_rng(3)
        a = rng.normal(50, 5, 100)
        b = rng.normal(60, 5, 100)
        result = anova_oneway([a, b])
        assert result is not None
        assert result.significant(0.01)

    def test_no_difference(self):
        rng = np.random.default_rng(3)
        groups = [rng.normal(50, 5, 100) for _ in range(5)]
        result = anova_oneway(groups)
        assert result is not None
        assert not result.significant(0.01)

    def test_degenerate_returns_none(self):
        assert anova_oneway([[1.0], [2.0]]) is None
        assert anova_oneway([[1.0, 1.0], [1.0, 1.0]]) is None


class TestPearson:
    def test_perfect_negative(self):
        assert pearson_r([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_uncorrelated_near_zero(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=500)
        y = rng.normal(size=500)
        assert abs(pearson_r(x, y)) < 0.15

    def test_degenerate_returns_zero(self):
        assert pearson_r([1, 1, 1], [1, 2, 3]) == 0.0
        assert pearson_r([1], [2]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_r([1, 2], [1])


class TestWelch:
    def test_separated_groups_significant(self):
        rng = np.random.default_rng(5)
        p = welch_ttest_p(rng.normal(0, 1, 50), rng.normal(3, 1, 50))
        assert p < 0.01

    def test_same_groups_not_significant(self):
        rng = np.random.default_rng(5)
        p = welch_ttest_p(rng.normal(0, 1, 50), rng.normal(0, 1, 50))
        assert p > 0.1


# -- synthetic study data helpers -------------------------------------------

def ab_session(pid, votes, network="DSL", pair=("QUIC", "TCP"),
               website="w.org", replays=0):
    condition = AbCondition(website, network, *pair)
    trials = []
    for vote in votes:
        answer = "same" if vote == "same" else (
            "left" if vote == "a" else "right")
        trials.append(AbTrial(condition=condition, left_is_a=True,
                              answer=answer, confidence=0.5,
                              replays=replays, duration_s=15.0))
    return AbSession(participant_id=pid, group="test", trials=trials,
                     events=SessionEvents(), gender="male",
                     age_group="18-24")


def rating_session(pid, scores, context="work", network="DSL",
                   stack="TCP", website="w.org"):
    condition = RatingCondition(website, network, stack)
    trials = [RatingTrial(condition=condition, context=context,
                          speed_score=s, quality_score=s, replays=0,
                          duration_s=20.0) for s in scores]
    return RatingSession(participant_id=pid, group="test", trials=trials,
                         events=SessionEvents(), gender="female",
                         age_group="25-44")


class TestAbShares:
    def test_share_computation(self):
        sessions = [ab_session(0, ["a", "a", "same", "b"])]
        shares = ab_vote_shares(sessions)
        cell = shares[("QUIC vs. TCP", "DSL")]
        assert cell.votes_a == 2
        assert cell.votes_same == 1
        assert cell.votes_b == 1
        assert cell.share_a == pytest.approx(0.5)
        assert cell.preferred == "a"

    def test_website_filter(self):
        sessions = [ab_session(0, ["a"], website="x.org"),
                    ab_session(1, ["b"], website="y.org")]
        shares = ab_vote_shares(sessions, websites=["x.org"])
        cell = shares[("QUIC vs. TCP", "DSL")]
        assert cell.total == 1

    def test_replay_average(self):
        sessions = [ab_session(0, ["a"], replays=2),
                    ab_session(1, ["b"], replays=0)]
        cell = ab_vote_shares(sessions)[("QUIC vs. TCP", "DSL")]
        assert cell.mean_replays == pytest.approx(1.0)


class TestRatingAnalysis:
    def test_rating_means_cells(self):
        sessions = [rating_session(0, [50, 60], stack="TCP"),
                    rating_session(1, [30, 40], stack="QUIC")]
        cells = rating_means(sessions)
        by_stack = {c.stack: c for c in cells}
        assert by_stack["TCP"].mean == pytest.approx(55.0)
        assert by_stack["QUIC"].mean == pytest.approx(35.0)

    def test_anova_by_setting_detects_stack_gap(self):
        rng = np.random.default_rng(6)
        sessions = []
        for pid in range(40):
            sessions.append(rating_session(
                pid, list(rng.normal(55, 4, 3)), stack="TCP"))
            sessions.append(rating_session(
                100 + pid, list(rng.normal(40, 4, 3)), stack="QUIC"))
        results = anova_by_setting(sessions)
        assert len(results) == 1
        assert results[0].significant(0.01)

    def test_per_website_differences(self):
        rng = np.random.default_rng(7)
        sessions = []
        for pid in range(30):
            sessions.append(rating_session(
                pid, list(rng.normal(60, 3, 3)), stack="QUIC",
                website="fast.org"))
            sessions.append(rating_session(
                100 + pid, list(rng.normal(45, 3, 3)), stack="TCP",
                website="fast.org"))
        diffs = per_website_differences(sessions, alpha=0.05)
        assert any(d.website == "fast.org" and d.faster_stack == "QUIC"
                   for d in diffs)

    def test_quality_score_selector(self):
        sessions = [rating_session(0, [50])]
        sessions[0].trials[0].quality_score = 20
        cells = rating_means(sessions, which="quality")
        assert cells[0].mean == 20


class TestAgreement:
    def test_agreement_rows(self):
        lab = [rating_session(0, [50, 52]), rating_session(1, [48, 51])]
        mw = [rating_session(2, [49, 53])]
        inet = [rating_session(3, [20, 70, 50])]
        rows = agreement_by_condition(lab, mw, inet)
        assert len(rows) == 1
        row = rows[0]
        assert row.lab is not None
        assert row.microworker_within_lab_ci is not None
        assert row.internet_median == 50

    def test_behaviour_statistics(self):
        sessions = [rating_session(0, [50, 60]),
                    rating_session(1, [55, 65])]
        stats = behaviour_statistics(sessions, "test", "rating")
        assert stats.sessions == 2
        assert stats.mean_seconds_per_video == pytest.approx(20.0)
        assert stats.demographics.male_share == 0.0

    def test_behaviour_statistics_empty(self):
        with pytest.raises(ValueError):
            behaviour_statistics([], "g", "rating")


class TestCorrelationHeatmap:
    def test_heatmap_from_testbed(self, small_testbed):
        """Votes constructed to follow SI must correlate negatively."""
        sessions = []
        pid = 0
        for website in ("gov.uk", "apache.org"):
            for stack in ("TCP", "QUIC"):
                rec = small_testbed.recording(website, "MSS", stack)
                score = max(10, min(70, 70 - 2 * rec.si))
                for _ in range(3):
                    sessions.append(rating_session(
                        pid, [score], context="plane", network="MSS",
                        stack=stack, website=website))
                    pid += 1
        heatmap = correlation_heatmap(sessions, small_testbed)
        r = heatmap.r("TCP", "SI", "MSS")
        assert r is not None
        assert r < 0

    def test_mean_r_by_metric(self, small_testbed):
        sessions = []
        for pid, website in enumerate(("gov.uk", "apache.org")):
            rec = small_testbed.recording(website, "MSS", "TCP")
            sessions.append(rating_session(
                pid, [70 - rec.si], context="plane", network="MSS",
                website=website))
        heatmap = correlation_heatmap(sessions, small_testbed)
        means = heatmap.mean_r_by_metric()
        assert set(means) <= {"FVC", "SI", "VC85", "LVC", "PLT"}
