"""ASCII report renderers."""

from repro.analysis.ab import AbShares
from repro.analysis.correlation import CorrelationHeatmap
from repro.analysis.rating import RatingCell
from repro.analysis.stats import MeanCI
from repro.report import (
    render_figure4,
    render_figure5,
    render_figure6,
    render_table,
    render_table1,
    render_table2,
    render_table3,
)
from repro.study.filtering import FilterFunnel


class TestGenericTable:
    def test_alignment(self):
        out = render_table(("A", "Blah"), [("x", 1), ("yyyy", 22)])
        lines = out.splitlines()
        assert lines[0].startswith("A")
        assert "yyyy" in lines[3]

    def test_header_separator(self):
        out = render_table(("Head",), [("v",)])
        separator = out.splitlines()[1]
        assert set(separator) == {"-"}
        assert len(separator) >= len("Head")


class TestTable1:
    def test_contains_all_stacks(self):
        out = render_table1()
        for stack in ("TCP+BBR", "QUIC+BBR", "Stock Google QUIC"):
            assert stack in out

    def test_mentions_parameters(self):
        out = render_table1()
        assert "IW32" in out
        assert "Pacing" in out


class TestTable2:
    def test_contains_table2_values(self):
        out = render_table2()
        assert "25 Mbps" in out
        assert "0.468 Mbps" in out
        assert "760 ms" in out
        assert "6.0 %" in out


class TestTable3:
    def test_renders_funnel(self):
        funnel = FilterFunnel(group="microworker", study="ab", initial=487,
                              after_rule=[471, 441, 355, 268, 268, 239, 233])
        out = render_table3([funnel])
        assert "487" in out
        assert "233" in out
        assert "R7" in out

    def test_reference_rows(self):
        funnel = FilterFunnel(group="microworker", study="ab", initial=100,
                              after_rule=[90, 80, 70, 60, 50, 40, 30])
        reference = {("microworker", "ab"): [487, 471, 441, 355, 268, 268,
                                             239, 233]}
        out = render_table3([funnel], reference=reference)
        assert "(paper)" in out
        assert "487" in out


class TestFigures:
    def test_figure4(self):
        shares = {("QUIC vs. TCP", "DSL"): AbShares(
            pair_label="QUIC vs. TCP", network="DSL",
            votes_a=40, votes_same=50, votes_b=10, mean_replays=1.4)}
        out = render_figure4(shares)
        assert "QUIC vs. TCP" in out
        assert "[DSL]" in out
        assert "40.0%" in out
        assert "replays 1.40" in out

    def test_figure5(self):
        cells = [RatingCell(
            context="plane", network="MSS", stack="QUIC",
            ci=MeanCI(mean=34.0, lower=30.0, upper=38.0, confidence=0.99,
                      n=77))]
        out = render_figure5(cells)
        assert "[plane / MSS]" in out
        assert "34.0" in out
        assert "poor" in out

    def test_figure6(self):
        heatmap = CorrelationHeatmap(
            values={("TCP", "SI", "MSS"): -0.89,
                    ("TCP", "PLT", "MSS"): -0.16},
            stacks=("TCP",), networks=("MSS",),
        )
        out = render_figure6(heatmap)
        assert "-0.89" in out
        assert "-0.16" in out
        assert "[TCP]" in out

    def test_figure6_best_metric(self):
        heatmap = CorrelationHeatmap(
            values={("TCP", "SI", "MSS"): -0.89,
                    ("TCP", "PLT", "MSS"): -0.16},
            stacks=("TCP",), networks=("MSS",),
        )
        assert heatmap.best_metric("TCP", "MSS") == "SI"
