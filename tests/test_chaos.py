"""Chaos matrix (slow): supervised campaigns under every fault class.

The convergence invariant from the failure model: whatever a
deterministic fault plan does to the fleet — kills, torn manifest
lines, frozen heartbeats, lease contention — a supervised campaign
with enough retry budget completes the full grid with zero duplicate
manifest entries, and its merged report renders byte-identically to a
fault-free single-worker run. Runs only with ``REPRO_RUN_SLOW=1``
(see ``conftest.py``); the quick per-fault smokes live in
``test_faults.py``.
"""

import time
from pathlib import Path

import pytest

from repro.report import render_grid
from repro.testbed import faults
from repro.testbed import supervisor as supervisor_module
from repro.testbed.campaign import Campaign, CampaignSpec
from repro.testbed.distributed import (
    LeaseConfig,
    LeaseManager,
    merge_partial_reports,
)
from repro.testbed.store import read_jsonl
from repro.testbed.supervisor import Supervisor

pytestmark = pytest.mark.slow

GRID = dict(sites=["gov.uk"], networks=["DSL"], stacks=["TCP", "QUIC"],
            seeds=[5, 6], runs=2)

FAST = LeaseConfig(ttl_s=30.0, heartbeat_s=5.0, poll_s=0.05)

#: One plan per fault class, plus mixes and two generated plans. Every
#: entry must converge — none may quarantine under a generous budget.
PLANS = [
    "crash:w0@0",            # kill in the adoption window (post-store)
    "crash:w0@1",            # kill mid-grid
    "crash:w0@0:pre",        # kill before anything is stored
    "crash:w1@1",            # kill the other slot
    "torn-write:w0@0",       # truncated manifest line, then kill
    "torn-write:w1@1",
    "stall:w0@0",            # heartbeats freeze (worker may still win)
    "storm:*@0",             # ghost stale lease on first acquire
    "crash:w0@1; torn-write:w1@1",
    "seed:1",                # campaign-RNG-derived plans
    "seed:2",
]


def _spec(name):
    return CampaignSpec(name=name, **GRID)


def _fingerprints(campaign):
    # Through read_jsonl, not raw json.loads: a torn line a killed
    # worker left behind stays in the file forever — readers skip it.
    return [record["fingerprint"]
            for record in read_jsonl(campaign.manifest_path)]


@pytest.fixture(scope="module")
def reference_render(tmp_path_factory):
    cache = tmp_path_factory.mktemp("chaos-reference")
    campaign = Campaign(_spec("chaos"), cache_dir=cache)
    assert campaign.run(processes=1).ok
    return render_grid(merge_partial_reports(campaign.campaign_dir,
                                             cache_dir=cache))


class TestChaosMatrix:
    @pytest.mark.parametrize("plan_text", PLANS)
    def test_supervised_run_converges(self, plan_text, tmp_path,
                                      reference_render):
        campaign = Campaign(_spec("chaos"), cache_dir=tmp_path)
        campaign.write_spec()
        outcome = Supervisor(
            campaign.campaign_dir,
            workers=2,
            cache_dir=tmp_path,
            plan=faults.FaultPlan.parse(plan_text),
            lease=FAST,
            retry_budget=10,  # generous: nothing here may quarantine
            backoff_base=0.05,
            run_kwargs=dict(processes=1, claim_chunk=1, flush_every=1),
        ).run()
        assert outcome.quarantined == []
        assert outcome.gave_up == []
        assert outcome.ok, outcome.describe()
        fingerprints = _fingerprints(campaign)
        assert len(fingerprints) == len(set(fingerprints)) == 4
        assert not list((campaign.campaign_dir / "claims")
                        .glob("*.lease"))
        merged = merge_partial_reports(campaign.campaign_dir,
                                       cache_dir=tmp_path)
        assert not merged.degraded
        assert render_grid(merged) == reference_render


def _hang_if_w0(campaign_dir, cache_dir, worker_id, plan_text,
                lease_kwargs, run_kwargs):
    """Entry shim: slot w0's first incarnation plays a hung host —
    grabs a claim, then sleeps without ever heartbeating. Respawned
    incarnations (and w1) run the real worker."""
    if worker_id == "w0":
        leases = LeaseManager(Path(campaign_dir), "w0",
                              LeaseConfig(**lease_kwargs))
        assert leases.acquire("hung-condition")
        time.sleep(600)
    supervisor_module._real_entry(campaign_dir, cache_dir, worker_id,
                                  plan_text, lease_kwargs, run_kwargs)


class TestStallKill:
    def test_hung_worker_is_killed_blamed_and_respawned(
            self, tmp_path, monkeypatch, reference_render):
        """A live process whose heartbeats stopped must be treated as a
        crash: killed, its leases broken, the slot respawned — the fleet
        must not wait out a hang forever."""
        lease = LeaseConfig(ttl_s=1.0, heartbeat_s=0.2, poll_s=0.05)
        monkeypatch.setattr(supervisor_module, "_real_entry",
                            supervisor_module._supervised_entry,
                            raising=False)
        monkeypatch.setattr(supervisor_module, "_supervised_entry",
                            _hang_if_w0)
        campaign = Campaign(_spec("chaos"), cache_dir=tmp_path)
        campaign.write_spec()
        outcome = Supervisor(
            campaign.campaign_dir,
            workers=2,
            cache_dir=tmp_path,
            lease=lease,
            backoff_base=0.05,
            run_kwargs=dict(processes=1, claim_chunk=1, flush_every=1),
        ).run()
        assert outcome.stalls == 1
        stalled = [e for e in outcome.exits if e.stalled]
        assert stalled[0].worker_id == "w0"
        assert "hung-condition" in stalled[0].blamed
        assert outcome.respawns == 1
        assert outcome.quarantined == []
        assert outcome.ok, outcome.describe()
        fingerprints = _fingerprints(campaign)
        assert len(fingerprints) == len(set(fingerprints)) == 4
        merged = merge_partial_reports(campaign.campaign_dir,
                                       cache_dir=tmp_path)
        assert render_grid(merged) == reference_render
