"""Power analysis and filmstrip rendering."""

import pytest

from repro.analysis.power import (
    minimum_detectable_effect,
    paper_study_power,
    simulated_power,
    two_sample_power,
)
from repro.browser.filmstrip import GLYPHS, filmstrip, filmstrip_panel
from repro.browser.metrics import VisualCurve


class TestPower:
    def test_power_increases_with_effect(self):
        small = two_sample_power(2.0, 100, 10.0).power
        big = two_sample_power(10.0, 100, 10.0).power
        assert big > small

    def test_power_increases_with_n(self):
        few = two_sample_power(5.0, 30, 10.0).power
        many = two_sample_power(5.0, 300, 10.0).power
        assert many > few

    def test_analytic_matches_simulation(self):
        analytic = two_sample_power(6.0, 80, 10.0, alpha=0.01).power
        simulated = simulated_power(6.0, 80, 10.0, alpha=0.01,
                                    trials=600, seed=1)
        assert analytic == pytest.approx(simulated, abs=0.08)

    def test_minimum_detectable_effect_consistent(self):
        mde = minimum_detectable_effect(per_group_n=100, vote_sd=10.0,
                                        alpha=0.01, target_power=0.8)
        assert two_sample_power(mde, 100, 10.0, alpha=0.01).power == \
            pytest.approx(0.8, abs=0.02)

    def test_paper_study_was_well_powered(self):
        """With ~675 votes per cell, a one-quality-level (10-point)
        effect would have been detected essentially surely — the paper's
        null result is meaningful."""
        estimate = paper_study_power(effect_points=10.0)
        assert estimate.power > 0.99

    def test_heavy_tails_reduce_power(self):
        normal = simulated_power(6.0, 80, 10.0, trials=400, seed=2)
        heavy = simulated_power(6.0, 80, 10.0, trials=400, seed=2,
                                heavy_tailed=True)
        assert heavy < normal

    def test_validation(self):
        with pytest.raises(ValueError):
            two_sample_power(5.0, 1, 10.0)
        with pytest.raises(ValueError):
            two_sample_power(5.0, 10, 0.0)


class TestFilmstrip:
    def test_blank_before_first_paint(self):
        curve = VisualCurve([(5.0, 1.0)])
        strip = filmstrip(curve, duration=10.0, width=10)
        assert strip[:4] == "    "
        assert strip[-1] == GLYPHS[-1]

    def test_monotone_darkening(self):
        curve = VisualCurve([(1.0, 0.3), (2.0, 0.6), (3.0, 1.0)])
        strip = filmstrip(curve, duration=4.0, width=20)
        ranks = [GLYPHS.index(c) for c in strip]
        assert ranks == sorted(ranks)

    def test_panel_shared_axis(self):
        fast = VisualCurve([(1.0, 1.0)])
        slow = VisualCurve([(8.0, 1.0)])
        panel = filmstrip_panel([("fast", fast), ("slow", slow)], width=30)
        lines = panel.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("fast")
        # The fast row saturates well before the slow one.
        assert lines[0].count(GLYPHS[-1]) > lines[1].count(GLYPHS[-1])

    def test_validation(self):
        curve = VisualCurve([(1.0, 1.0)])
        with pytest.raises(ValueError):
            filmstrip(curve, duration=0.0)
        with pytest.raises(ValueError):
            filmstrip(curve, duration=1.0, width=0)
        with pytest.raises(ValueError):
            filmstrip_panel([])
