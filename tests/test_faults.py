"""Deterministic fault injection + crash-safe storage.

Tier-1 chaos smokes: one per fault kind (crash, stall, torn-write,
storm), plus the plan DSL/generator and the checksummed record I/O the
readers rely on to survive torn writes. The full crash matrix lives in
``test_chaos.py`` behind the ``slow`` marker.
"""

import json
import multiprocessing
import os
import sys
import time

import pytest

from repro.testbed import faults
from repro.testbed.campaign import Campaign, CampaignSpec
from repro.testbed.distributed import (
    LeaseConfig,
    LeaseManager,
    join_campaign,
    run_worker,
)
from repro.testbed.store import (
    SummaryStore,
    append_record,
    read_jsonl,
    record_intact,
    seal_record,
)

GRID = dict(sites=["gov.uk"], networks=["DSL"], stacks=["TCP", "QUIC"],
            seeds=[5], runs=2)

FAST = LeaseConfig(ttl_s=30.0, heartbeat_s=5.0, poll_s=0.05)


def _spec(name):
    return CampaignSpec(name=name, **GRID)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """A process-global injector must never outlive its test."""
    yield
    faults.uninstall()


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        assert faults.FaultPlan.generate(7) == faults.FaultPlan.generate(7)
        assert faults.FaultPlan.generate(7) != faults.FaultPlan.generate(8)
        plan = faults.FaultPlan.generate(7, workers=3, count=5)
        assert len(plan.faults) == 5
        assert all(f.kind in faults.FAULT_KINDS for f in plan.faults)
        assert all(f.worker in ("w0", "w1", "w2") for f in plan.faults)

    def test_parse_round_trips_describe(self):
        plan = faults.FaultPlan.parse(
            "crash:w0@1; stall:*@0; torn-write:w1@2; crash:w0@0:pre")
        assert faults.FaultPlan.parse(plan.describe()) == plan
        assert plan.faults[0] == faults.Fault("crash", "w0", 1)
        assert plan.faults[3].point == "condition-start"

    def test_parse_seed_form_matches_generate(self):
        assert faults.FaultPlan.parse("seed:7") == \
            faults.FaultPlan.generate(7)

    def test_parse_json_file(self, tmp_path):
        plan = faults.FaultPlan.generate(3)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_json()))
        assert faults.FaultPlan.parse(str(path)) == plan

    def test_parse_rejects_garbage(self):
        for bad in ("", "crash", "crash:w0", "explode:w0@1",
                    "crash:w0@-1", "crash:w 0@1"):
            with pytest.raises(ValueError):
                faults.FaultPlan.parse(bad)

    def test_json_round_trip(self):
        plan = faults.FaultPlan.parse("crash:w0@1:pre; storm:*@0")
        assert faults.FaultPlan.from_json(plan.to_json()) == plan

    def test_install_from_env_is_idempotent(self):
        explicit = faults.install(faults.FaultPlan.parse("stall:*@0"))
        environ = {faults.PLAN_ENV: "crash:w9@9"}
        assert faults.install_from_env(environ) is explicit
        faults.uninstall()
        armed = faults.install_from_env(environ)
        assert armed is not None
        assert armed.plan.faults[0].worker == "w9"
        faults.uninstall()
        assert faults.install_from_env({}) is None

    def test_fire_without_injector_is_noop(self):
        faults.uninstall()
        assert faults.fire("heartbeat") is False
        assert faults.fire("condition", fingerprint="x") is False


class TestStallSmoke:
    def test_stall_suppresses_heartbeats_so_lease_goes_stale(
            self, tmp_path):
        """The stall fault freezes heartbeats from ``at`` onward while
        the process lives — exactly a hung host to its peers."""
        faults.install(faults.FaultPlan.parse("stall:w0@1"), worker="w0")
        leases = LeaseManager(tmp_path, "w0", FAST)
        assert leases.acquire("fp")
        leases.heartbeat()        # beat 0: still allowed (at=1)
        after_first = leases.path("fp").stat().st_mtime
        leases.heartbeat()        # beat 1 onward: suppressed
        leases.heartbeat()
        assert leases.path("fp").stat().st_mtime == after_first
        # The injector saw every beat; only the first got through.
        assert faults.active().count("heartbeat") == 3

    def test_stall_only_hits_addressed_worker(self, tmp_path):
        faults.install(faults.FaultPlan.parse("stall:w0@0"), worker="w1")
        leases = LeaseManager(tmp_path, "w1", FAST)
        assert leases.acquire("fp")
        assert faults.fire("heartbeat") is False


class TestStormSmoke:
    def test_storm_forces_stale_break_and_acquire_still_wins(
            self, tmp_path):
        """The ghost lease planted by the storm must be broken through
        the ordinary stale path — the acquire then succeeds."""
        spec = _spec("storm-smoke")
        campaign = Campaign(spec, cache_dir=tmp_path)
        campaign.write_spec()
        faults.install(faults.FaultPlan.parse("storm:*@0"), worker="w0")
        result = run_worker(campaign, worker_id="w0", lease=FAST,
                            processes=1, claim_chunk=1)
        assert result.ok
        lines = [json.loads(line)
                 for line in open(campaign.manifest_path)]
        fingerprints = [line["fingerprint"] for line in lines]
        assert len(fingerprints) == len(set(fingerprints)) == 2
        assert not list(
            (campaign.campaign_dir / "claims").glob("*.lease"))


def _chaos_worker(campaign_dir, cache_dir, worker, plan_text):
    """Subprocess body for kill-based smokes (crash / torn-write)."""
    faults.install(faults.FaultPlan.parse(plan_text), worker=worker)
    campaign = join_campaign(campaign_dir, cache_dir=cache_dir)
    result = run_worker(campaign, worker_id=worker, lease=FAST,
                        processes=1, claim_chunk=1, flush_every=1)
    sys.exit(0 if result.ok else 2)


def _run_chaos_worker(campaign_dir, cache_dir, worker, plan_text):
    process = multiprocessing.get_context("fork").Process(
        target=_chaos_worker,
        args=(str(campaign_dir), str(cache_dir), worker, plan_text))
    process.start()
    process.join(timeout=300)
    assert not process.is_alive()
    return process.exitcode


class TestCrashSmoke:
    def test_injected_crash_leaves_adoptable_recording(self, tmp_path):
        """The default crash window (post-store, pre-manifest) must be
        healed by the next worker adopting the orphan recording."""
        spec = _spec("crash-smoke")
        campaign = Campaign(spec, cache_dir=tmp_path)
        campaign.write_spec()
        code = _run_chaos_worker(campaign.campaign_dir, tmp_path, "w0",
                                 "crash:w0@0")
        assert code == faults.CRASH_EXIT_CODE
        # The recording is stored but its manifest line never landed.
        manifest_lines = []
        if campaign.manifest_path.exists():
            manifest_lines = [json.loads(line) for line
                              in open(campaign.manifest_path) if line.strip()]
        assert len(manifest_lines) < 2
        assert len(list(campaign.cache.directory.glob("*.json"))) >= 1
        # The kill left a dangling lease on the crashed condition; age
        # it past the TTL (as real elapsed time would) so the next
        # worker may reclaim instead of waiting out FAST.ttl_s.
        dangling = list(
            (campaign.campaign_dir / "claims").glob("*.lease"))
        assert len(dangling) == 1
        old = time.time() - FAST.ttl_s - 5
        os.utime(dangling[0], (old, old))
        # A clean second worker completes the grid: the crashed
        # condition is adopted (cache hit), never simulated twice.
        code = _run_chaos_worker(campaign.campaign_dir, tmp_path,
                                 "w0.r1", "crash:w0@0")
        assert code == 0  # the fault is addressed to w0, not w0.r1
        lines = [json.loads(line)
                 for line in open(campaign.manifest_path)]
        fingerprints = [line["fingerprint"] for line in lines]
        assert len(fingerprints) == len(set(fingerprints)) == 2


class TestTornWriteSmoke:
    def test_torn_manifest_line_skipped_and_resimulated(self, tmp_path,
                                                        caplog):
        """A worker killed mid-append leaves a truncated JSON line; the
        readers skip it with a warning and the condition settles again
        — ``SummaryStore.open`` must never crash on it."""
        spec = _spec("torn-smoke")
        campaign = Campaign(spec, cache_dir=tmp_path)
        campaign.write_spec()
        code = _run_chaos_worker(campaign.campaign_dir, tmp_path, "w0",
                                 "torn-write:w0@0")
        assert code == faults.CRASH_EXIT_CODE
        raw = campaign.manifest_path.read_text()
        with pytest.raises(json.JSONDecodeError):
            json.loads(raw.splitlines()[-1])  # genuinely torn
        store = SummaryStore.open(campaign.campaign_dir,
                                  cache_dir=tmp_path)  # never raises
        assert store.recorded_count() == 0
        for lease in (campaign.campaign_dir / "claims").glob("*.lease"):
            old = time.time() - FAST.ttl_s - 5
            os.utime(lease, (old, old))
        code = _run_chaos_worker(campaign.campaign_dir, tmp_path,
                                 "w0.r1", "torn-write:w0@0")
        assert code == 0
        with caplog.at_level("WARNING"):
            records = list(read_jsonl(campaign.manifest_path))
        assert "torn line" in caplog.text
        fingerprints = [record["fingerprint"] for record in records]
        assert len(fingerprints) == len(set(fingerprints)) == 2


class TestCrashSafeRecords:
    def test_seal_and_verify_round_trip(self):
        record = {"fingerprint": "abc", "status": "simulated"}
        sealed = seal_record(record)
        assert record_intact(sealed)
        assert record_intact(record)  # legacy records have no crc
        tampered = dict(sealed, status="cached")
        assert not record_intact(tampered)

    def test_read_jsonl_skips_torn_and_corrupt_lines(self, tmp_path,
                                                     caplog):
        path = tmp_path / "log.jsonl"
        append_record(path, {"fingerprint": "a", "status": "simulated"})
        append_record(path, {"fingerprint": "b", "status": "simulated"})
        with open(path, "a") as handle:
            handle.write('{"fingerprint": "c", "stat')  # torn tail
        skipped = []
        with caplog.at_level("WARNING"):
            records = list(read_jsonl(
                path, on_skip=lambda n, reason: skipped.append(reason)))
        assert [r["fingerprint"] for r in records] == ["a", "b"]
        assert skipped == ["torn line (invalid JSON)"]

    def test_read_jsonl_skips_checksum_mismatch(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_record(path, {"fingerprint": "a", "status": "simulated"})
        # Bit-rot the sealed line without breaking its JSON.
        path.write_text(path.read_text().replace(
            '"simulated"', '"resumed"'))
        skipped = []
        records = list(read_jsonl(
            path, on_skip=lambda n, reason: skipped.append(reason)))
        assert records == []
        assert skipped == ["checksum mismatch"]

    def test_torn_partial_rejected_with_clear_error(self, tmp_path):
        spec = _spec("torn-partial")
        campaign = Campaign(spec, cache_dir=tmp_path)
        result = run_worker(campaign, worker_id="solo", lease=FAST,
                            processes=1, flush_every=1)
        assert result.ok
        store = SummaryStore.open(campaign.campaign_dir,
                                  cache_dir=tmp_path)
        path = store.partial_paths()[0]
        text = path.read_text()
        path.write_text(text[:len(text) // 2])
        with pytest.raises(ValueError, match="torn"):
            store.load_partial_state(path)

    def test_checksummed_partial_survives_round_trip(self, tmp_path):
        spec = _spec("sealed-partial")
        campaign = Campaign(spec, cache_dir=tmp_path)
        result = run_worker(campaign, worker_id="solo", lease=FAST,
                            processes=1, flush_every=1)
        assert result.ok
        store = SummaryStore.open(campaign.campaign_dir,
                                  cache_dir=tmp_path)
        path = store.partial_paths()[0]
        state = store.load_partial_state(path)
        assert state["crc"]
        assert record_intact(state)
