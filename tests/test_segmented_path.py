"""Multi-segment paths, forwarding nodes, and split-connection proxies.

Covers the three layers of the topology refactor:

* profile algebra — :func:`segmented_profile` aggregate math and the
  named presets;
* packet plumbing — :class:`SegmentedNetworkPath` in direct mode, the
  store-and-forward :class:`ForwardingNode` hops and their drop
  accounting, segment-qualified link names, trace-driven segments;
* split mode — the :mod:`repro.netem.proxy` facades terminating TCP and
  QUIC per segment, including the byte-level determinism contract the
  rest of the testbed relies on.
"""

from __future__ import annotations

import json

import pytest

from repro.browser.engine import load_page
from repro.netem.engine import EventLoop
from repro.netem.packet import Packet
from repro.netem.path import (
    PATH_MODES,
    ForwardingNode,
    NetworkPath,
    SegmentedNetworkPath,
    build_network_path,
)
from repro.netem.profiles import (
    GEO_SAT,
    LAN,
    SAT_LAN,
    NetworkProfile,
    SegmentedProfile,
    network_by_name,
    segmented_profile,
    trace_profile,
)
from repro.netem.proxy import SplitQuicConnection, SplitTcpConnection
from repro.netem.trace import TraceLink
from repro.transport.config import stack_by_name
from repro.web.corpus import build_site

FAST = NetworkProfile(name="FASTLEG", uplink_mbps=100.0,
                      downlink_mbps=100.0, min_rtt_ms=2.0,
                      loss_rate=0.0, queue_ms=100.0)
SLOW = NetworkProfile(name="SLOWLEG", uplink_mbps=1.0, downlink_mbps=1.0,
                      min_rtt_ms=2.0, loss_rate=0.0, queue_ms=10.0)


def _result_blob(result) -> str:
    """Bytes-level probe (mirrors tests/test_determinism.py)."""
    return json.dumps({
        "curve": result.curve.points,
        "metrics": result.metrics.as_dict(),
        "completed": result.completed,
        "objects_loaded": result.objects_loaded,
        "segments": result.transport.packets_or_segments_sent,
        "retransmissions": result.transport.retransmissions,
        "timeouts": result.transport.timeouts,
        "setup_times": result.connection_setup_times,
    }, sort_keys=True)


def _split_blob(stack: str, seed: int = 0,
                path_mode: str = "split") -> str:
    site = build_site("gov.uk", seed=0)
    result = load_page(site, SAT_LAN, stack_by_name(stack), seed=seed,
                       path_mode=path_mode)
    return _result_blob(result)


class TestSegmentedProfileAlgebra:
    def test_aggregates_follow_series_composition(self):
        profile = segmented_profile((GEO_SAT, LAN))
        assert profile.uplink_mbps == min(GEO_SAT.uplink_mbps,
                                          LAN.uplink_mbps)
        # The downlink bottleneck segment also donates its queue figure.
        assert profile.downlink_mbps == GEO_SAT.downlink_mbps
        assert profile.queue_ms == GEO_SAT.queue_ms
        assert profile.min_rtt_ms == pytest.approx(
            GEO_SAT.min_rtt_ms + LAN.min_rtt_ms)
        assert profile.loss_rate == pytest.approx(
            1.0 - (1.0 - GEO_SAT.loss_rate) * (1.0 - LAN.loss_rate))
        assert profile.name == "GEOSAT+LAN"
        assert profile.segments == (GEO_SAT, LAN)

    def test_empty_and_nested_segments_rejected(self):
        with pytest.raises(ValueError):
            segmented_profile(())
        with pytest.raises(ValueError):
            segmented_profile((GEO_SAT, SAT_LAN))

    def test_presets_resolve_by_name(self):
        assert network_by_name("SAT+LAN") is SAT_LAN
        assert network_by_name("GEOSAT") is GEO_SAT
        assert isinstance(network_by_name("sat+lan"), SegmentedProfile)


class TestForwardingNode:
    def test_counts_forwarded_and_dropped(self):
        accepted = [True, False, True]
        node = ForwardingNode(lambda packet: accepted.pop(0), name="hop")
        for i in range(3):
            node(Packet(size=100, payload=i, flow_id=1))
        assert node.forwarded == 2
        assert node.dropped == 1
        assert node.name == "hop"

    def test_direct_path_delivers_end_to_end(self):
        loop = EventLoop()
        path = SegmentedNetworkPath(
            loop, segmented_profile((FAST, FAST)), seed=0)
        at_server, at_client = [], []
        path.register_client(7, at_client.append)
        path.register_server(7, at_server.append)
        assert path.send_to_server(Packet(size=1000, payload="req",
                                          flow_id=7))
        loop.run()
        assert [p.payload for p in at_server] == ["req"]
        # One-way latency: both segments' propagation plus serialisation.
        assert loop.now >= 2 * (FAST.min_rtt_ms / 2) / 1e3
        path.send_to_client(Packet(size=1000, payload="resp", flow_id=7))
        loop.run()
        assert [p.payload for p in at_client] == ["resp"]
        assert all(f.forwarded == 1 for f in path.forwarders[:1])

    def test_inter_segment_queue_drops_are_attributed(self):
        """A burst that overflows the second segment's queue is dropped
        *at the forwarding node* and shows up in its counters."""
        loop = EventLoop()
        path = SegmentedNetworkPath(
            loop, segmented_profile((FAST, SLOW)), seed=0)
        delivered = []
        path.register_server(1, delivered.append)
        for i in range(64):
            path.send_to_server(Packet(size=1500, payload=i, flow_id=1))
        loop.run()
        up_hop = path.forwarders[0]
        assert up_hop.dropped > 0
        assert up_hop.forwarded + up_hop.dropped == 64
        assert len(delivered) == up_hop.forwarded

    def test_unregister_clears_every_segment(self):
        loop = EventLoop()
        path = SegmentedNetworkPath(
            loop, segmented_profile((FAST, FAST)), seed=0)
        path.register_client(3, lambda p: None)
        path.register_server(3, lambda p: None)
        path.unregister(3)
        path.register_client(3, lambda p: None)  # no duplicate error
        path.register_server(3, lambda p: None)


class TestLinkNaming:
    def test_segment_qualified_link_names(self):
        loop = EventLoop()
        path = SegmentedNetworkPath(loop, SAT_LAN, seed=0)
        assert path.segments[0].uplink.name == "GEOSAT-s0-up"
        assert path.segments[0].downlink.name == "GEOSAT-s0-down"
        assert path.segments[1].uplink.name == "LAN-s1-up"
        assert path.segments[1].downlink.name == "LAN-s1-down"
        assert [f.name for f in path.forwarders] == \
            ["SAT+LAN-s0s1-up", "SAT+LAN-s1s0-down"]

    def test_plain_path_keeps_legacy_names(self):
        loop = EventLoop()
        path = NetworkPath(loop, network_by_name("MSS"), seed=0)
        assert path.uplink.name == "MSS-up"
        assert path.downlink.name == "MSS-down"

    def test_trace_profile_works_on_inner_segment(self):
        """Trace-driven downlinks are not restricted to the access link."""
        cellular = trace_profile("CELLTRACE", (10, 20, 30, 40, 50))
        loop = EventLoop()
        path = SegmentedNetworkPath(
            loop, segmented_profile((LAN, cellular)), seed=0)
        assert isinstance(path.segments[1].downlink, TraceLink)
        assert path.segments[1].downlink.name == "CELLTRACE-s1-down"


class TestPathConstruction:
    def test_build_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown path mode"):
            build_network_path(EventLoop(), GEO_SAT, path_mode="bent")
        assert PATH_MODES == ("direct", "split")

    def test_split_requires_multi_segment_profile(self):
        with pytest.raises(ValueError, match="SegmentedProfile"):
            build_network_path(EventLoop(), GEO_SAT, path_mode="split")
        with pytest.raises(ValueError, match=">= 2 segments"):
            build_network_path(EventLoop(),
                               segmented_profile((GEO_SAT,)),
                               path_mode="split")

    def test_split_path_refuses_end_to_end_endpoints(self):
        path = build_network_path(EventLoop(), SAT_LAN, path_mode="split")
        assert path.split and not path.forwarders
        with pytest.raises(RuntimeError, match="split path"):
            path.register_client(1, lambda p: None)
        with pytest.raises(RuntimeError, match="split path"):
            path.send_to_server(Packet(size=100, payload="x", flow_id=1))

    def test_proxy_refuses_direct_path(self):
        loop = EventLoop()
        direct = build_network_path(loop, SAT_LAN, path_mode="direct")
        stack = stack_by_name("TCP")
        with pytest.raises(ValueError, match="split=True"):
            SplitTcpConnection(direct, stack,
                               on_client_data=lambda d, m: None,
                               on_server_data=lambda d, m: None)
        with pytest.raises(ValueError, match="split=True"):
            SplitQuicConnection(
                direct, stack_by_name("QUIC"),
                on_client_stream_data=lambda s, d, m, f: None,
                on_server_stream_data=lambda s, d, m, f: None)

    def test_aggregate_rtt_and_bdp(self):
        """Satellite fix: segmented paths report summed propagation and
        bottleneck-rate BDP, not a single pair's."""
        loop = EventLoop()
        path = SegmentedNetworkPath(loop, SAT_LAN, seed=0)
        assert path.min_rtt == pytest.approx(0.561)
        assert path.bdp_bytes() == int(20e6 / 8 * 0.561)


class TestSingleSegmentEquivalence:
    def test_one_segment_wrapper_is_byte_identical(self):
        """A 1-segment SegmentedProfile is the plain path, bit for bit:
        same RNG subtree (root, not ("seg", 0)) and same aggregates."""
        base = network_by_name("MSS")
        wrapped = segmented_profile((base,), name=base.name)
        site = build_site("gov.uk", seed=0)
        stack = stack_by_name("TCP")
        plain = load_page(site, base, stack, seed=0)
        seg = load_page(site, wrapped, stack, seed=0)
        assert _result_blob(plain) == _result_blob(seg)


class TestSplitProxyLoads:
    @pytest.mark.parametrize("stack", ["TCP", "QUIC"])
    def test_split_load_completes(self, stack):
        site = build_site("gov.uk", seed=0)
        result = load_page(site, SAT_LAN, stack_by_name(stack), seed=1,
                           path_mode="split")
        assert result.completed
        assert result.objects_loaded == site.object_count

    def test_split_differs_from_direct(self):
        assert _split_blob("TCP", path_mode="split") != \
            _split_blob("TCP", path_mode="direct")

    @pytest.mark.parametrize("stack", ["TCP", "QUIC"])
    def test_split_handshake_chain_is_deterministic(self, stack):
        """Same contract as tests/test_determinism.py: a split load's
        bytes do not depend on what ran earlier in the process (the
        per-segment flow ids come from the shared per-load allocator,
        not a global counter)."""
        first = _split_blob(stack)
        _split_blob(stack, seed=5)
        _split_blob("QUIC" if stack == "TCP" else "TCP", seed=6,
                    path_mode="direct")
        assert _split_blob(stack) == first

    def test_split_facade_counts_every_segment(self):
        """Transport totals sum the per-segment connections: a 2-segment
        split load sends roughly twice the packets of a direct one."""
        site = build_site("gov.uk", seed=0)
        stack = stack_by_name("TCP")
        direct = load_page(site, SAT_LAN, stack, seed=1)
        split = load_page(site, SAT_LAN, stack, seed=1,
                          path_mode="split")
        assert split.transport.packets_or_segments_sent > \
            1.5 * direct.transport.packets_or_segments_sent


class TestCampaignPathAxis:
    def test_fingerprints_and_labels_differ_per_path(self):
        from repro.testbed.campaign import CampaignSpec

        spec = CampaignSpec(sites=["gov.uk"], networks=[SAT_LAN],
                            stacks=["TCP"], seeds=[0], runs=1,
                            paths=["direct", "split"], name="axis")
        conds = spec.conditions()
        assert [c.path for c in conds] == ["direct", "split"]
        assert conds[0].fingerprint() != conds[1].fingerprint()
        assert conds[0].label == "gov.uk_SATpLAN_TCP_s0"
        assert conds[1].label == "gov.uk_SATpLAN_TCP_split_s0"
        assert conds[0].key.path == "direct"
        assert conds[1].key.path == "split"

    def test_spec_rejects_unknown_path_mode(self):
        from repro.testbed.campaign import CampaignSpec

        with pytest.raises(ValueError, match="unknown path mode"):
            CampaignSpec(paths=["direct", "bent"])
        with pytest.raises(ValueError, match="at least one path"):
            CampaignSpec(paths=[])

    def test_split_applies_only_to_multi_segment_networks(self):
        """Mixed grids prune split x single-segment combos (a proxy
        needs a boundary), and a split sweep with no splittable network
        at all is a loud spec error, not an empty axis."""
        from repro.netem.profiles import network_by_name
        from repro.testbed.campaign import CampaignSpec

        spec = CampaignSpec(sites=["gov.uk"], stacks=["TCP"], seeds=[0],
                            networks=[network_by_name("DSL"), SAT_LAN],
                            paths=["direct", "split"], runs=1)
        combos = [(c.profile.name, c.path) for c in spec.conditions()]
        assert combos == [("DSL", "direct"),
                          ("SAT+LAN", "direct"), ("SAT+LAN", "split")]

        with pytest.raises(ValueError, match="multi-segment network"):
            CampaignSpec(sites=["gov.uk"], stacks=["TCP"],
                         networks=["DSL"], paths=["split"])

    def test_spec_json_round_trips_segmented_networks(self):
        from repro.testbed.campaign import CampaignSpec, spec_from_json

        cellular = trace_profile("CELLTRACE", (10, 20, 30, 40, 50))
        spec = CampaignSpec(
            sites=["gov.uk"], stacks=["TCP"], seeds=[0], runs=1,
            networks=[SAT_LAN, segmented_profile((GEO_SAT, cellular))],
            paths=["direct", "split"], name="roundtrip")
        rebuilt = spec_from_json(json.loads(json.dumps(spec.describe())))
        assert rebuilt.networks == spec.networks
        assert isinstance(rebuilt.networks[0], SegmentedProfile)
        assert isinstance(rebuilt.networks[1].segments[1],
                          type(cellular))
        assert rebuilt.paths == ["direct", "split"]
        assert [c.fingerprint() for c in rebuilt.conditions()] == \
            [c.fingerprint() for c in spec.conditions()]

    def test_direct_vs_split_campaign_smoke(self, tmp_path):
        """2-segment campaign over both path modes: distinct conditions
        settle, the manifest carries the axis, and a post-hoc report
        pivots on it."""
        from repro.analysis.streaming import GridReport
        from repro.testbed.campaign import Campaign, CampaignSpec
        from repro.testbed.store import SummaryStore

        spec = CampaignSpec(sites=["gov.uk"], networks=[SAT_LAN],
                            stacks=["TCP"], seeds=[1], runs=1,
                            paths=["direct", "split"], name="smoke")
        campaign = Campaign(spec, cache_dir=tmp_path)
        result = campaign.run(processes=1)
        assert result.ok and result.counts == {"simulated": 2}

        store = SummaryStore.open(campaign.campaign_dir,
                                  cache_dir=tmp_path)
        assert sorted(key.path for key in store.keys()) == \
            ["direct", "split"]
        report = GridReport(rows=("network",), cols="path", metric="PLT")
        report.consume(store)
        assert report.columns() == ["direct", "split"]
        for col in report.columns():
            cell = report.cell(("SAT+LAN",), col)
            assert cell is not None and cell.ci.mean > 0

    @pytest.mark.slow
    def test_split_grid_heavy(self, tmp_path):
        """Full both-stacks grid over both path modes, pooled workers."""
        from repro.testbed.campaign import Campaign, CampaignSpec

        spec = CampaignSpec(
            sites=["gov.uk", "wikipedia.org"], networks=[SAT_LAN],
            stacks=["TCP", "QUIC"], seeds=[0, 1], runs=2,
            paths=["direct", "split"], name="heavy")
        result = Campaign(spec, cache_dir=tmp_path).run(processes=2)
        assert result.ok
        assert len(result.results) == 16
