"""Trace-driven link emulation (Mahimahi mm-link traces)."""

import numpy as np
import pytest

from repro.netem.engine import EventLoop
from repro.netem.packet import Packet
from repro.netem.trace import (
    OPPORTUNITY_BYTES,
    TraceLink,
    cellular_like_trace,
    constant_rate_trace,
    parse_trace,
)


class TestParse:
    def test_basic(self):
        assert parse_trace("1\n2\n5\n") == [1, 2, 5]

    def test_comments_and_blanks(self):
        assert parse_trace("# header\n1\n\n2  # inline\n") == [1, 2]

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            parse_trace("5\n3\n")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_trace("abc\n")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_trace("# nothing\n")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            parse_trace("-1\n")


class TestSynthesis:
    def test_constant_rate_mean(self):
        trace = constant_rate_trace(12.0, duration_ms=1000)
        rate = len(trace) * OPPORTUNITY_BYTES / 1.0
        assert rate == pytest.approx(12e6 / 8, rel=0.02)

    def test_cellular_trace_varies(self):
        trace = cellular_like_trace(10.0, duration_ms=2000, seed=1)
        gaps = [b - a for a, b in zip(trace, trace[1:])]
        assert len(set(gaps)) > 3  # not constant

    def test_cellular_deterministic(self):
        assert cellular_like_trace(5.0, seed=2) == \
            cellular_like_trace(5.0, seed=2)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            constant_rate_trace(0.0)
        with pytest.raises(ValueError):
            cellular_like_trace(5.0, burstiness=1.5)


class TestTraceLink:
    def _run(self, trace, packets, queue_bytes=240_000, until=10.0):
        loop = EventLoop()
        delivered = []
        link = TraceLink(loop, trace, lambda p: delivered.append(
            (loop.now, p)), queue_bytes=queue_bytes)
        for packet in packets:
            link.send(packet)
        loop.run(until=until)
        return loop, link, delivered

    def test_delivery_follows_trace(self):
        trace = [10, 20, 30]  # one packet every 10 ms
        packets = [Packet(size=1500, payload=i) for i in range(3)]
        _, _, delivered = self._run(trace, packets)
        times = [t for t, _ in delivered]
        assert times == pytest.approx([0.010, 0.020, 0.030])

    def test_trace_loops(self):
        trace = [10]  # 1500 B every 10 ms, forever
        packets = [Packet(size=1500, payload=i) for i in range(5)]
        _, _, delivered = self._run(trace, packets)
        times = [t for t, _ in delivered]
        assert times == pytest.approx([0.01, 0.02, 0.03, 0.04, 0.05])

    def test_small_packets_share_opportunity(self):
        trace = [10]
        packets = [Packet(size=500, payload=i) for i in range(3)]
        _, _, delivered = self._run(trace, packets)
        times = [t for t, _ in delivered]
        # All three fit in the first 1500-byte opportunity.
        assert times == pytest.approx([0.01, 0.01, 0.01])

    def test_droptail(self):
        trace = [1000]  # very slow link
        packets = [Packet(size=1500, payload=i) for i in range(10)]
        loop, link, delivered = self._run(trace, packets,
                                          queue_bytes=4500, until=0.5)
        assert link.dropped_packets == 7

    def test_mean_rate(self):
        trace = constant_rate_trace(8.0, duration_ms=1000)
        loop = EventLoop()
        link = TraceLink(loop, trace, lambda p: None)
        assert link.mean_rate_bytes_per_s() == pytest.approx(1e6, rel=0.02)

    def test_idle_then_burst_skips_missed_opportunities(self):
        trace = [10, 20, 30, 40]
        loop = EventLoop()
        delivered = []
        link = TraceLink(loop, trace, lambda p: delivered.append(loop.now))
        # Nothing queued until t = 0.035.
        loop.call_at(0.035, lambda: link.send(
            Packet(size=1500, payload="late")))
        loop.run(until=1.0)
        assert delivered == pytest.approx([0.040])

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            TraceLink(loop, [], lambda p: None)
        with pytest.raises(ValueError):
            TraceLink(loop, [10], lambda p: None, queue_bytes=0)
        with pytest.raises(ValueError):
            TraceLink(loop, [10], lambda p: None, loss_rate=1.0)

    def test_lossy_trace_link_requires_rng(self):
        """Same contract as EmulatedLink: no silent local seeding."""
        loop = EventLoop()
        with pytest.raises(ValueError, match="loss_rate=0.1 but no rng"):
            TraceLink(loop, [10], lambda p: None, loss_rate=0.1)
        # An explicit generator from the RNG tree is accepted.
        link = TraceLink(loop, [10], lambda p: None, loss_rate=0.1,
                         rng=np.random.default_rng(7))
        assert link is not None
