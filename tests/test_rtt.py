"""RTT estimation / RTO per RFC 6298."""

import pytest

from repro.transport.rtt import RttEstimator


class TestRttEstimator:
    def test_initial_state(self):
        est = RttEstimator()
        assert not est.has_sample
        assert est.rto() == RttEstimator.INITIAL_RTO
        assert est.smoothed() == RttEstimator.INITIAL_RTO

    def test_first_sample_initialises(self):
        est = RttEstimator()
        est.on_sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)
        assert est.min_rtt == pytest.approx(0.1)

    def test_ewma_update(self):
        est = RttEstimator()
        est.on_sample(0.1)
        est.on_sample(0.2)
        assert est.srtt == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)

    def test_min_rtt_tracks_minimum(self):
        est = RttEstimator()
        for sample in (0.3, 0.1, 0.2):
            est.on_sample(sample)
        assert est.min_rtt == pytest.approx(0.1)

    def test_rto_floor(self):
        est = RttEstimator()
        for _ in range(20):
            est.on_sample(0.001)
        assert est.rto() == RttEstimator.MIN_RTO

    def test_rto_grows_with_variance(self):
        stable = RttEstimator()
        jittery = RttEstimator()
        for i in range(20):
            stable.on_sample(0.1)
            jittery.on_sample(0.05 if i % 2 else 0.3)
        assert jittery.rto() > stable.rto()

    def test_rto_ceiling(self):
        est = RttEstimator()
        est.on_sample(100.0)
        assert est.rto() == RttEstimator.MAX_RTO

    def test_invalid_sample(self):
        est = RttEstimator()
        with pytest.raises(ValueError):
            est.on_sample(0.0)

    def test_smoothed_default(self):
        est = RttEstimator()
        assert est.smoothed(default=0.42) == 0.42
        est.on_sample(0.1)
        assert est.smoothed(default=0.42) == pytest.approx(0.1)

    def test_latest_rtt(self):
        est = RttEstimator()
        est.on_sample(0.1)
        est.on_sample(0.25)
        assert est.latest_rtt == pytest.approx(0.25)
