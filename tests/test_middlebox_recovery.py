"""Adversarial transport-recovery suite: TCP and QUIC under middleboxes.

Property-style invariants, checked for every shipped middlebox and for
stacked chains:

* **exactly-once, in-order** — the application sees a monotonically
  non-decreasing delivered-byte count that ends at exactly the number
  of bytes written (duplicates and reordering below the transport must
  never surface), and write metadata arrives once, in write order;
* **no permanent stall** — the transfer completes within a generous
  wall-clock cap even under ACK decimation or fragment loss;
* **bounded work** — the event loop processes at most
  ``EVENT_BUDGET`` events, so recovery cannot degenerate into a
  retransmission storm;
* **deterministic replay** — the same seed reproduces the identical
  delivery trace, packet for packet, for the randomised boxes
  (reorder, duplicate, ACK decimation — the ISSUE-pinned trio) and
  for the stacked adversarial chain.

Tier-1 keeps one smoke per middlebox on DSL; the full
preset × profile × stack matrix runs under ``REPRO_RUN_SLOW=1``
(``pytest -m slow``).
"""

import pytest

from repro.netem.engine import EventLoop
from repro.netem.middlebox import (
    MIDDLEBOX_PRESETS,
    DuplicateSpec,
    JitterSpec,
    MiddleboxChainSpec,
    MtuClampSpec,
    ReorderSpec,
    resolve_middleboxes,
)
from repro.netem.path import NetworkPath
from repro.netem.profiles import DSL, LTE, MSS
from repro.transport.config import QUIC, TCP
from repro.transport.quic import QuicConnection
from repro.transport.tcp import TcpConnection

IMPAIRED_PRESETS = [chain.name for chain in MIDDLEBOX_PRESETS if chain.boxes]

#: A harsher stack than the "adversarial" preset: fragmentation under
#: reordering and duplication, with jitter on top.
GAUNTLET = MiddleboxChainSpec("gauntlet", (
    MtuClampSpec(mtu_bytes=700, fragment_gap_ms=0.1),
    ReorderSpec(probability=0.08, delay_ms=30.0),
    DuplicateSpec(probability=0.08, delay_ms=1.5),
    JitterSpec(jitter_ms=8.0),
))

PAYLOAD = 60_000
TIME_CAP = 120.0
#: Loose ceiling on event-loop work for one PAYLOAD transfer. A clean
#: DSL run needs ~2k events; the worst impaired case (TCP under ACK
#: decimation) stays under 60k. A retransmission storm blows through
#: this immediately.
EVENT_BUDGET = 400_000


def run_tcp(middleboxes, *, profile=DSL, seed=0, payload=PAYLOAD,
            time_cap=TIME_CAP):
    """One server→client bulk transfer; returns the delivery trace."""
    loop = EventLoop()
    path = NetworkPath(loop, profile, seed=seed,
                       middleboxes=resolve_middleboxes(middleboxes))
    trace = []
    metas = []

    def on_client(delivered, new_metas):
        trace.append((loop.now, delivered))
        metas.extend(new_metas)

    conn = TcpConnection(path, TCP, on_client_data=on_client,
                         on_server_data=lambda d, m: None)

    def go():
        # Three writes with ordered metadata so meta order, not just
        # the byte count, witnesses in-order delivery.
        third = payload // 3
        conn.server_write(third, meta="first")
        conn.server_write(third, meta="second")
        conn.server_write(payload - 2 * third, meta="third")

    conn.connect(go)
    loop.run(until=time_cap)
    return loop, trace, metas


def run_quic(middleboxes, *, profile=DSL, seed=0, payload=PAYLOAD,
             time_cap=TIME_CAP):
    """Two concurrent server→client streams; returns per-stream traces."""
    loop = EventLoop()
    path = NetworkPath(loop, profile, seed=seed,
                       middleboxes=resolve_middleboxes(middleboxes))
    traces = {}
    fins = set()
    metas = []

    def on_client(stream_id, delivered, new_metas, fin):
        traces.setdefault(stream_id, []).append((loop.now, delivered))
        metas.extend(new_metas)
        if fin:
            fins.add(stream_id)

    conn = QuicConnection(path, QUIC, on_client,
                          lambda sid, d, m, fin: None)

    def go():
        for i in range(2):
            sid = conn.open_stream()
            conn.client_stream_write(sid, 300, fin=True)
            conn.server_stream_write(sid, payload // 2,
                                     meta=f"stream-{i}", fin=True)

    conn.connect(go)
    loop.run(until=time_cap)
    return loop, traces, fins, metas


def assert_tcp_recovered(loop, trace, metas, payload=PAYLOAD):
    assert trace, "no bytes ever reached the application"
    counts = [delivered for _, delivered in trace]
    # Exactly-once: cumulative count never regresses and never
    # overshoots the written total — a duplicate surfacing at the
    # application would do one or the other.
    assert all(b > a for a, b in zip(counts, counts[1:])), \
        "delivered-byte count regressed"
    assert counts[-1] == payload, \
        f"stalled at {counts[-1]}/{payload} bytes"
    assert max(counts) == payload
    # In-order: write metadata fires once each, in write order.
    assert metas == ["first", "second", "third"]
    assert loop.events_processed < EVENT_BUDGET


def assert_quic_recovered(loop, traces, fins, metas, payload=PAYLOAD):
    assert len(traces) == 2, "a stream never delivered anything"
    for stream_id, trace in traces.items():
        counts = [delivered for _, delivered in trace]
        assert all(b > a for a, b in zip(counts, counts[1:])), \
            f"stream {stream_id} delivered-byte count regressed"
        assert counts[-1] == payload // 2, \
            f"stream {stream_id} stalled at {counts[-1]}"
    assert fins == set(traces), "a stream never saw its FIN"
    assert sorted(metas) == ["stream-0", "stream-1"]
    assert loop.events_processed < EVENT_BUDGET


# -- tier-1 smokes: one per middlebox, DSL only ------------------------------


class TestTcpRecoverySmoke:
    @pytest.mark.parametrize("preset", IMPAIRED_PRESETS)
    def test_recovers_under(self, preset):
        loop, trace, metas = run_tcp(preset, seed=1)
        assert_tcp_recovered(loop, trace, metas)


class TestQuicRecoverySmoke:
    @pytest.mark.parametrize("preset", IMPAIRED_PRESETS)
    def test_recovers_under(self, preset):
        loop, traces, fins, metas = run_quic(preset, seed=1)
        assert_quic_recovered(loop, traces, fins, metas)


class TestStackedChains:
    def test_tcp_survives_gauntlet(self):
        loop, trace, metas = run_tcp(GAUNTLET, seed=2)
        assert_tcp_recovered(loop, trace, metas)

    def test_quic_survives_gauntlet(self):
        loop, traces, fins, metas = run_quic(GAUNTLET, seed=2)
        assert_quic_recovered(loop, traces, fins, metas)


# -- deterministic replay (ISSUE pin: reorder / duplicate / decimation) -------


REPLAY_PRESETS = ["reorder", "duplicate", "ack-decimate"]


class TestDeterministicReplay:
    @pytest.mark.parametrize("preset", REPLAY_PRESETS)
    def test_tcp_trace_replays(self, preset):
        a = run_tcp(preset, seed=7)
        b = run_tcp(preset, seed=7)
        assert a[1] == b[1]  # identical (time, delivered) trace
        assert a[0].events_processed == b[0].events_processed

    @pytest.mark.parametrize("preset", REPLAY_PRESETS)
    def test_quic_trace_replays(self, preset):
        a = run_quic(preset, seed=7)
        b = run_quic(preset, seed=7)
        assert a[1] == b[1]
        assert a[0].events_processed == b[0].events_processed

    def test_gauntlet_replays_and_seed_matters(self):
        a = run_tcp(GAUNTLET, seed=9)
        b = run_tcp(GAUNTLET, seed=9)
        c = run_tcp(GAUNTLET, seed=10)
        assert a[1] == b[1]
        assert a[1] != c[1]


# -- full adversarial matrix (slow tier) --------------------------------------


MATRIX_PROFILES = [DSL, LTE, MSS]


@pytest.mark.slow
class TestAdversarialMatrix:
    @pytest.mark.parametrize(
        "profile", MATRIX_PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("preset", IMPAIRED_PRESETS + ["gauntlet"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tcp_matrix(self, profile, preset, seed):
        chain = GAUNTLET if preset == "gauntlet" else preset
        loop, trace, metas = run_tcp(chain, profile=profile, seed=seed)
        assert_tcp_recovered(loop, trace, metas)

    @pytest.mark.parametrize(
        "profile", MATRIX_PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("preset", IMPAIRED_PRESETS + ["gauntlet"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_quic_matrix(self, profile, preset, seed):
        chain = GAUNTLET if preset == "gauntlet" else preset
        loop, traces, fins, metas = run_quic(chain, profile=profile,
                                             seed=seed)
        assert_quic_recovered(loop, traces, fins, metas)
