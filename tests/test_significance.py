"""Multiple-comparison corrections for the Section 4.4 scan."""

import pytest

from repro.analysis.rating import WebsiteDifference
from repro.analysis.significance import (
    benjamini_hochberg,
    bonferroni,
    expected_false_positives,
)


def diff(p, website="w.org"):
    return WebsiteDifference(website=website, network="DSL",
                             faster_stack="QUIC", slower_stack="TCP",
                             mean_difference=5.0, p_value=p)


class TestBonferroni:
    def test_scaling(self):
        out = bonferroni([diff(0.001)], total_tests=100)
        assert out[0].adjusted_p == pytest.approx(0.1)

    def test_survival(self):
        out = bonferroni([diff(0.0001), diff(0.01)], total_tests=100,
                         alpha=0.10)
        assert out[0].survives
        assert not out[1].survives

    def test_adjusted_capped_at_one(self):
        out = bonferroni([diff(0.5)], total_tests=100)
        assert out[0].adjusted_p == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bonferroni([], total_tests=0)


class TestBenjaminiHochberg:
    def test_ordered_thresholds(self):
        diffs = [diff(0.001), diff(0.002), diff(0.09)]
        out = benjamini_hochberg(diffs, total_tests=10, alpha=0.10)
        assert out[0].survives and out[1].survives
        assert not out[2].survives

    def test_less_conservative_than_bonferroni(self):
        diffs = [diff(p) for p in (0.005, 0.008, 0.011, 0.02)]
        bh = benjamini_hochberg(diffs, total_tests=40, alpha=0.10)
        bf = bonferroni(diffs, total_tests=40, alpha=0.10)
        assert sum(c.survives for c in bh) >= sum(c.survives for c in bf)

    def test_validation(self):
        with pytest.raises(ValueError):
            benjamini_hochberg([diff(0.1)], total_tests=0)


class TestExpectedFalsePositives:
    def test_scan_size_of_the_paper(self):
        """36 sites x 4 networks x 4 pairs at alpha=0.1: ~58 expected
        false positives if all nulls were true — context for the paper's
        'only a handful of sites differ'."""
        assert expected_false_positives(36 * 4 * 4, alpha=0.10) == \
            pytest.approx(57.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_false_positives(-1)
