"""Emulated link: serialisation, queueing, loss, droptail."""

import numpy as np
import pytest

from repro.netem.engine import EventLoop
from repro.netem.link import EmulatedLink, LinkConfig
from repro.netem.packet import Packet


def make_link(loop, delivered, rate=1e6, delay=0.01, queue_ms=100,
              loss=0.0, queue_bytes=None, seed=0):
    config = LinkConfig(rate_bytes_per_s=rate, propagation_delay_s=delay,
                        queue_ms=queue_ms, loss_rate=loss,
                        queue_bytes=queue_bytes)
    return EmulatedLink(loop, config, delivered.append,
                        rng=np.random.default_rng(seed))


class TestTiming:
    def test_single_packet_latency(self):
        loop = EventLoop()
        delivered = []
        link = make_link(loop, delivered, rate=1e6, delay=0.01)
        link.send(Packet(size=1000, payload="x"))
        loop.run()
        # 1000 bytes at 1 MB/s = 1 ms serialisation + 10 ms propagation.
        assert loop.now == pytest.approx(0.011)
        assert len(delivered) == 1

    def test_back_to_back_serialisation(self):
        loop = EventLoop()
        delivered = []
        link = make_link(loop, delivered, rate=1e6, delay=0.0)
        times = []
        original_deliver = link._deliver

        def capture(packet):
            times.append(loop.now)
            original_deliver(packet)

        link._deliver = capture
        for _ in range(3):
            link.send(Packet(size=1000, payload="x"))
        loop.run()
        assert times == pytest.approx([0.001, 0.002, 0.003])

    def test_queue_drains_over_time(self):
        loop = EventLoop()
        delivered = []
        link = make_link(loop, delivered, rate=1e6, delay=0.0, queue_ms=100)
        for _ in range(5):
            link.send(Packet(size=1000, payload="x"))
        assert link.queued_bytes == 5000
        loop.run()
        assert link.queued_bytes == 0
        assert len(delivered) == 5


class TestDroptail:
    def test_overflow_dropped(self):
        loop = EventLoop()
        delivered = []
        # 10 ms at 1 MB/s = 10 kB of queue.
        link = make_link(loop, delivered, rate=1e6, delay=0.0, queue_ms=10)
        accepted = [link.send(Packet(size=1500, payload=i))
                    for i in range(10)]
        loop.run()
        assert not all(accepted)
        assert link.stats.packets_queue_dropped > 0
        assert len(delivered) == 10 - link.stats.packets_queue_dropped

    def test_explicit_queue_bytes_override(self):
        loop = EventLoop()
        delivered = []
        link = make_link(loop, delivered, rate=1e6, delay=0.0, queue_ms=10,
                         queue_bytes=50_000)
        for i in range(10):
            assert link.send(Packet(size=1500, payload=i))
        loop.run()
        assert link.stats.packets_queue_dropped == 0

    def test_max_queue_stat(self):
        loop = EventLoop()
        delivered = []
        link = make_link(loop, delivered, rate=1e6, delay=0.0, queue_ms=100)
        for _ in range(4):
            link.send(Packet(size=1000, payload="x"))
        loop.run()
        assert link.stats.max_queue_bytes == 4000


class TestLoss:
    def test_zero_loss_delivers_all(self):
        loop = EventLoop()
        delivered = []
        link = make_link(loop, delivered, loss=0.0)
        for i in range(50):
            link.send(Packet(size=100, payload=i))
        loop.run()
        assert len(delivered) == 50

    def test_loss_rate_statistics(self):
        loop = EventLoop()
        delivered = []
        link = make_link(loop, delivered, loss=0.2, queue_ms=10_000, seed=1)
        n = 3000
        for i in range(n):
            link.send(Packet(size=100, payload=i))
        loop.run()
        observed = link.stats.packets_random_lost / n
        assert 0.15 < observed < 0.25
        assert len(delivered) == n - link.stats.packets_random_lost

    def test_loss_deterministic_per_seed(self):
        outcomes = []
        for _ in range(2):
            loop = EventLoop()
            delivered = []
            link = make_link(loop, delivered, loss=0.3, seed=42)
            for i in range(100):
                link.send(Packet(size=100, payload=i))
            loop.run()
            outcomes.append([p.payload for p in delivered])
        assert outcomes[0] == outcomes[1]


class TestValidation:
    def test_bad_rate(self):
        with pytest.raises(ValueError):
            LinkConfig(rate_bytes_per_s=0, propagation_delay_s=0, queue_ms=10)

    def test_bad_loss(self):
        with pytest.raises(ValueError):
            LinkConfig(rate_bytes_per_s=1, propagation_delay_s=0,
                       queue_ms=10, loss_rate=1.0)

    def test_lossy_link_requires_rng(self):
        """Loss draws must come from the condition's RNG tree; the old
        silent ``default_rng(0)`` fallback hid a second seeding root."""
        loop = EventLoop()
        config = LinkConfig(rate_bytes_per_s=1e6, propagation_delay_s=0,
                            queue_ms=10, loss_rate=0.1)
        with pytest.raises(ValueError, match="loss_rate=0.1 but no rng"):
            EmulatedLink(loop, config, lambda p: None)

    def test_loss_free_link_needs_no_rng(self):
        loop = EventLoop()
        config = LinkConfig(rate_bytes_per_s=1e6, propagation_delay_s=0,
                            queue_ms=10)
        link = EmulatedLink(loop, config, lambda p: None)
        assert link.send(Packet(size=1500, payload="x"))

    def test_bad_queue_bytes(self):
        with pytest.raises(ValueError):
            LinkConfig(rate_bytes_per_s=1, propagation_delay_s=0,
                       queue_ms=10, queue_bytes=0)

    def test_sub_mtu_queue_bytes_rejected(self):
        """An explicit buffer too small for one packet is a config error,
        not something to silently enlarge."""
        with pytest.raises(ValueError):
            LinkConfig(rate_bytes_per_s=1e6, propagation_delay_s=0,
                       queue_ms=10, queue_bytes=1499)

    def test_explicit_tiny_queue_respected(self):
        """Regression: pinned queue_bytes used to be clamped up to 1600,
        making tiny-buffer scenarios impossible."""
        config = LinkConfig(rate_bytes_per_s=1e6, propagation_delay_s=0,
                            queue_ms=10, queue_bytes=1500)
        assert config.queue_capacity_bytes == 1500

    def test_tiny_queue_drops_second_packet(self):
        loop = EventLoop()
        delivered = []
        link = make_link(loop, delivered, rate=1e6, delay=0.0,
                         queue_ms=100, queue_bytes=1500)
        assert link.send(Packet(size=1500, payload=0))
        assert not link.send(Packet(size=1500, payload=1))
        loop.run()
        assert len(delivered) == 1
        assert link.stats.packets_queue_dropped == 1

    def test_bad_packet_size(self):
        with pytest.raises(ValueError):
            Packet(size=0, payload="x")

    def test_stats_properties(self):
        loop = EventLoop()
        delivered = []
        link = make_link(loop, delivered)
        assert link.stats.loss_fraction == 0.0
        assert link.stats.mean_queue_delay == 0.0
