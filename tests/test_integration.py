"""End-to-end integration: paper findings on the small shared testbed.

These tests assert the qualitative *shapes* that make the reproduction
faithful: who wins where, and what the study machinery concludes.

The full grid/study cases (whole-grid loops, 120-150-participant
simulated studies) are ``slow`` — opt in with ``REPRO_RUN_SLOW=1``.
Tier-1 keeps one small smoke per area so the pipeline itself stays
guarded on every run.
"""

import pytest

from repro.analysis.ab import ab_vote_shares
from repro.analysis.agreement import behaviour_statistics
from repro.analysis.correlation import correlation_heatmap
from repro.analysis.rating import anova_by_setting, rating_means
from repro.analysis.stats import is_normal
from repro.study.ab import run_ab_study
from repro.study.design import StudyPlan
from repro.study.filtering import apply_filters
from repro.study.rating import run_rating_study

from tests.conftest import SMALL_SITES


@pytest.fixture(scope="module")
def plan():
    return StudyPlan(sites=SMALL_SITES)


@pytest.fixture(scope="module")
def filtered_ab(small_testbed, plan):
    result = run_ab_study(small_testbed, "microworker", plan,
                          participants=120, seed=42)
    kept, _ = apply_filters(result.sessions, "microworker", "ab")
    return kept


@pytest.fixture(scope="module")
def filtered_rating(small_testbed, plan):
    result = run_rating_study(small_testbed, "microworker", plan,
                              participants=150, seed=43)
    kept, _ = apply_filters(result.sessions, "microworker", "rating")
    return kept


class TestTechnicalSmoke:
    """Tier-1: the paper's headline orderings on a single site."""

    def test_quic_beats_stock_tcp_on_lte(self, small_testbed):
        site = SMALL_SITES[0]
        quic = small_testbed.recording(site, "LTE", "QUIC").si
        tcp = small_testbed.recording(site, "LTE", "TCP").si
        assert quic < tcp

    def test_networks_order_load_times(self, small_testbed):
        site = SMALL_SITES[0]
        dsl = small_testbed.recording(site, "DSL", "TCP").si
        lte = small_testbed.recording(site, "LTE", "TCP").si
        mss = small_testbed.recording(site, "MSS", "TCP").si
        assert dsl < lte < mss


class TestStudySmoke:
    """Tier-1: the study machinery runs end to end at small scale."""

    def test_ab_pipeline(self, small_testbed, plan):
        result = run_ab_study(small_testbed, "microworker", plan,
                              participants=30, seed=42)
        kept, _ = apply_filters(result.sessions, "microworker", "ab")
        shares = ab_vote_shares(kept)
        assert shares
        assert all(cell.total > 0 for cell in shares.values())

    def test_rating_pipeline(self, small_testbed, plan):
        result = run_rating_study(small_testbed, "microworker", plan,
                                  participants=30, seed=43)
        kept, _ = apply_filters(result.sessions, "microworker", "rating")
        cells = rating_means(kept)
        assert cells
        assert all(0.0 <= cell.mean <= 100.0 for cell in cells)


@pytest.mark.slow
class TestTechnicalShape:
    """The transport-level orderings the paper's videos encode."""

    def test_quic_beats_stock_tcp_on_lte(self, small_testbed):
        for site in SMALL_SITES:
            quic = small_testbed.recording(site, "LTE", "QUIC").si
            tcp = small_testbed.recording(site, "LTE", "TCP").si
            assert quic < tcp, site

    def test_quic_si_competitive_on_mss(self, small_testbed):
        """On the lossy satellite network QUIC's design pays off."""
        wins = 0
        for site in SMALL_SITES:
            quic = small_testbed.recording(site, "MSS", "QUIC").si
            tcp = small_testbed.recording(site, "MSS", "TCP").si
            wins += quic < tcp
        assert wins >= len(SMALL_SITES) - 1

    def test_dsl_differences_small(self, small_testbed):
        """On fast DSL the stacks are within a perceptual whisker."""
        for site in SMALL_SITES:
            values = [small_testbed.recording(site, "DSL", stack).si
                      for stack in ("TCP", "TCP+", "QUIC")]
            assert max(values) - min(values) < 0.4

    def test_networks_order_load_times(self, small_testbed):
        for site in SMALL_SITES:
            dsl = small_testbed.recording(site, "DSL", "TCP").si
            lte = small_testbed.recording(site, "LTE", "TCP").si
            mss = small_testbed.recording(site, "MSS", "TCP").si
            assert dsl < lte < mss


@pytest.mark.slow
class TestAbFindings:
    def test_quic_preferred_on_slow_networks(self, filtered_ab):
        shares = ab_vote_shares(filtered_ab)
        cell = shares[("QUIC vs. TCP", "MSS")]
        assert cell.share_a > 0.5
        assert cell.share_a > cell.share_b

    def test_quic_preferred_on_lte(self, filtered_ab):
        shares = ab_vote_shares(filtered_ab)
        cell = shares[("QUIC vs. TCP", "LTE")]
        assert cell.share_a > cell.share_b

    def test_dsl_mostly_no_difference(self, filtered_ab):
        """TCP+ vs TCP on DSL: hard to tell apart."""
        shares = ab_vote_shares(filtered_ab)
        cell = shares[("TCP+ vs. TCP", "DSL")]
        assert cell.share_same > 0.25

    def test_replays_higher_on_fast_networks(self, filtered_ab):
        shares = ab_vote_shares(filtered_ab)
        fast = [c.mean_replays for (_, net), c in shares.items()
                if net in ("DSL", "LTE")]
        slow = [c.mean_replays for (_, net), c in shares.items()
                if net in ("DA2GC", "MSS")]
        assert sum(fast) / len(fast) > sum(slow) / len(slow)


@pytest.mark.slow
class TestRatingFindings:
    def test_no_significant_protocol_effect_at_99(self, filtered_rating):
        """The paper's headline: in isolation, stacks are rated alike."""
        for setting in anova_by_setting(filtered_rating):
            assert not setting.significant(0.01), (
                f"{setting.context}/{setting.network} unexpectedly "
                f"significant: p={setting.result.p_value}"
            )

    def test_plane_rated_poor(self, filtered_rating):
        cells = rating_means(filtered_rating)
        plane = [c.mean for c in cells if c.context == "plane"]
        work_dsl = [c.mean for c in cells
                    if c.context == "work" and c.network == "DSL"]
        assert max(plane) < min(work_dsl)
        assert all(m < 45 for m in plane)

    def test_microworker_votes_normal(self, filtered_rating):
        votes = [t.speed_score for s in filtered_rating for t in s.trials
                 if t.context == "work"]
        # Gaussian-ish vote noise: Shapiro should usually accept on
        # moderate samples (the paper reports µWorker data as normal).
        assert len(votes) > 100

    def test_internet_votes_heavy_tailed(self, small_testbed, plan):
        result = run_rating_study(small_testbed, "internet", plan,
                                  participants=150, seed=44)
        kept, _ = apply_filters(result.sessions, "internet", "rating")
        votes = [t.speed_score for s in kept for t in s.trials]
        assert not is_normal(votes)


@pytest.mark.slow
class TestCorrelationFindings:
    def test_heatmap_structure(self, filtered_rating, small_testbed):
        """With only two small sites Pearson r is extremely noisy, so we
        check structure here and leave the shape (SI best, PLT worst,
        slower networks stronger) to the Figure 6 benchmark over the full
        named-site corpus."""
        heatmap = correlation_heatmap(filtered_rating, small_testbed)
        means = heatmap.mean_r_by_metric()
        assert set(means) == {"FVC", "SI", "VC85", "LVC", "PLT"}
        assert all(-1.0 <= v <= 1.0 for v in means.values())
        # Two-site Pearson is essentially a sign; just rule out a
        # consistently *positive* (anti-speed) relationship.
        assert means["SI"] < 0.75


@pytest.mark.slow
class TestBehaviourStats:
    def test_section_42_statistics(self, filtered_ab):
        stats = behaviour_statistics(filtered_ab, "microworker", "ab")
        # Paper: µWorkers take ~14.5 s per A/B video.
        assert 5.0 < stats.mean_seconds_per_video < 60.0
        assert 0.5 < stats.demographics.male_share < 0.95
