"""Discrete-event loop."""

import pytest

from repro.netem.engine import EventLoop


class TestScheduling:
    def test_runs_in_time_order(self, loop):
        seen = []
        loop.call_at(2.0, lambda: seen.append("b"))
        loop.call_at(1.0, lambda: seen.append("a"))
        loop.call_at(3.0, lambda: seen.append("c"))
        loop.run()
        assert seen == ["a", "b", "c"]

    def test_fifo_for_equal_times(self, loop):
        seen = []
        for tag in range(5):
            loop.call_at(1.0, lambda t=tag: seen.append(t))
        loop.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_clock_advances(self, loop):
        times = []
        loop.call_at(0.5, lambda: times.append(loop.now))
        loop.call_at(1.5, lambda: times.append(loop.now))
        loop.run()
        assert times == [0.5, 1.5]

    def test_call_later_relative(self, loop):
        seen = []
        loop.call_at(1.0, lambda: loop.call_later(0.5, lambda: seen.append(loop.now)))
        loop.run()
        assert seen == [1.5]

    def test_scheduling_in_past_raises(self, loop):
        loop.call_at(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.call_at(0.5, lambda: None)

    def test_negative_delay_raises(self, loop):
        with pytest.raises(ValueError):
            loop.call_later(-0.1, lambda: None)

    def test_events_processed_counter(self, loop):
        for _ in range(4):
            loop.call_later(0.1, lambda: None)
        loop.run()
        assert loop.events_processed == 4


class TestCancellation:
    def test_cancelled_event_skipped(self, loop):
        seen = []
        handle = loop.call_at(1.0, lambda: seen.append("x"))
        handle.cancel()
        loop.run()
        assert seen == []

    def test_cancel_idempotent(self, loop):
        handle = loop.call_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        loop.run()

    def test_peek_skips_cancelled(self, loop):
        first = loop.call_at(1.0, lambda: None)
        loop.call_at(2.0, lambda: None)
        first.cancel()
        assert loop.peek_time() == 2.0


class TestHeapCompaction:
    def test_cancelled_entries_compacted(self, loop):
        """A churn of cancel+re-arm (the transport RTO pattern) must not
        leave a graveyard of dead entries in the heap."""
        loop.call_at(500.0, lambda: None)  # one live anchor event
        for i in range(1000):
            handle = loop.call_at(1000.0 + i, lambda: None)
            handle.cancel()
        assert len(loop._heap) < 300  # compaction kicked in
        assert loop.pending_events == 1

    def test_ordering_preserved_across_compaction(self, loop):
        seen = []
        for tag in range(10):
            loop.call_at(1.0 + tag * 0.125, lambda t=tag: seen.append(t))
        cancelled = [loop.call_at(2.0 + i, lambda: seen.append("dead"))
                     for i in range(500)]
        for handle in cancelled:
            handle.cancel()
        # FIFO among equal timestamps must also survive compaction.
        for tag in range(5):
            loop.call_at(1.0, lambda t=tag: seen.append(("tie", t)))
        loop.run()
        expected = [0] + [("tie", t) for t in range(5)] + list(range(1, 10))
        assert seen == expected

    def test_cancel_after_compaction_is_safe(self, loop):
        handles = [loop.call_at(10.0 + i, lambda: None) for i in range(200)]
        for handle in handles:
            handle.cancel()
        for handle in handles:  # idempotent, even once evicted
            handle.cancel()
        loop.run()
        assert loop.events_processed == 0

    def test_processed_counter_ignores_cancelled(self, loop):
        live = [loop.call_at(1.0, lambda: None) for _ in range(3)]
        dead = [loop.call_at(2.0, lambda: None) for _ in range(3)]
        for handle in dead:
            handle.cancel()
        loop.run()
        assert loop.events_processed == len(live)


class TestRunModes:
    def test_run_until_stops_before_later_events(self, loop):
        seen = []
        loop.call_at(1.0, lambda: seen.append(1))
        loop.call_at(5.0, lambda: seen.append(5))
        loop.run(until=2.0)
        assert seen == [1]
        assert loop.now == 2.0

    def test_run_until_idle_or_predicate(self, loop):
        state = {"count": 0}

        def tick():
            state["count"] += 1
            loop.call_later(0.1, tick)

        loop.call_later(0.1, tick)
        done = loop.run_until_idle_or(lambda: state["count"] >= 3, until=10.0)
        assert done
        assert state["count"] == 3

    def test_run_until_idle_or_drains(self, loop):
        loop.call_at(1.0, lambda: None)
        done = loop.run_until_idle_or(lambda: False, until=10.0)
        assert not done

    def test_livelock_guard(self, loop):
        def forever():
            loop.call_later(0.0001, forever)

        loop.call_later(0.0001, forever)
        with pytest.raises(RuntimeError):
            loop.run(max_events=1000)

    def test_step_returns_false_when_empty(self, loop):
        assert loop.step() is False
