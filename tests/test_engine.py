"""Discrete-event loop."""

import pytest

from repro.netem.engine import EventLoop


class TestScheduling:
    def test_runs_in_time_order(self, loop):
        seen = []
        loop.call_at(2.0, lambda: seen.append("b"))
        loop.call_at(1.0, lambda: seen.append("a"))
        loop.call_at(3.0, lambda: seen.append("c"))
        loop.run()
        assert seen == ["a", "b", "c"]

    def test_fifo_for_equal_times(self, loop):
        seen = []
        for tag in range(5):
            loop.call_at(1.0, lambda t=tag: seen.append(t))
        loop.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_clock_advances(self, loop):
        times = []
        loop.call_at(0.5, lambda: times.append(loop.now))
        loop.call_at(1.5, lambda: times.append(loop.now))
        loop.run()
        assert times == [0.5, 1.5]

    def test_call_later_relative(self, loop):
        seen = []
        loop.call_at(1.0, lambda: loop.call_later(0.5, lambda: seen.append(loop.now)))
        loop.run()
        assert seen == [1.5]

    def test_scheduling_in_past_raises(self, loop):
        loop.call_at(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.call_at(0.5, lambda: None)

    def test_negative_delay_raises(self, loop):
        with pytest.raises(ValueError):
            loop.call_later(-0.1, lambda: None)

    def test_events_processed_counter(self, loop):
        for _ in range(4):
            loop.call_later(0.1, lambda: None)
        loop.run()
        assert loop.events_processed == 4


class TestCancellation:
    def test_cancelled_event_skipped(self, loop):
        seen = []
        handle = loop.call_at(1.0, lambda: seen.append("x"))
        handle.cancel()
        loop.run()
        assert seen == []

    def test_cancel_idempotent(self, loop):
        handle = loop.call_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        loop.run()

    def test_peek_skips_cancelled(self, loop):
        first = loop.call_at(1.0, lambda: None)
        loop.call_at(2.0, lambda: None)
        first.cancel()
        assert loop.peek_time() == 2.0


class TestRunModes:
    def test_run_until_stops_before_later_events(self, loop):
        seen = []
        loop.call_at(1.0, lambda: seen.append(1))
        loop.call_at(5.0, lambda: seen.append(5))
        loop.run(until=2.0)
        assert seen == [1]
        assert loop.now == 2.0

    def test_run_until_idle_or_predicate(self, loop):
        state = {"count": 0}

        def tick():
            state["count"] += 1
            loop.call_later(0.1, tick)

        loop.call_later(0.1, tick)
        done = loop.run_until_idle_or(lambda: state["count"] >= 3, until=10.0)
        assert done
        assert state["count"] == 3

    def test_run_until_idle_or_drains(self, loop):
        loop.call_at(1.0, lambda: None)
        done = loop.run_until_idle_or(lambda: False, until=10.0)
        assert not done

    def test_livelock_guard(self, loop):
        def forever():
            loop.call_later(0.0001, forever)

        loop.call_later(0.0001, forever)
        with pytest.raises(RuntimeError):
            loop.run(max_events=1000)

    def test_step_returns_false_when_empty(self, loop):
        assert loop.step() is False
